#include "ecr/transform.h"

#include <set>

namespace ecrint::ecr {

namespace {

// Copies `source` into `target`, skipping the named structures and, for
// `strip_object`, the `strip_attribute`. Categories/participants are
// re-resolved by name, so skipped structures must not be referenced.
Status CopyInto(const Schema& source, Schema& target,
                const std::set<std::string>& skip_structures,
                const std::string& strip_object = "",
                const std::string& strip_attribute = "") {
  for (ObjectId i = 0; i < source.num_objects(); ++i) {
    const ObjectClass& object = source.object(i);
    if (skip_structures.count(object.name)) continue;
    Result<ObjectId> id = kNoObject;
    if (object.kind == ObjectKind::kEntitySet) {
      id = target.AddEntitySet(object.name);
    } else {
      std::vector<ObjectId> parents;
      for (ObjectId parent : object.parents) {
        ECRINT_ASSIGN_OR_RETURN(
            ObjectId pid, target.GetObject(source.object(parent).name));
        parents.push_back(pid);
      }
      id = target.AddCategory(object.name, parents);
    }
    if (!id.ok()) return id.status();
    for (const Attribute& a : object.attributes) {
      if (object.name == strip_object && a.name == strip_attribute) continue;
      ECRINT_RETURN_IF_ERROR(target.AddObjectAttribute(*id, a));
    }
  }
  for (RelationshipId i = 0; i < source.num_relationships(); ++i) {
    const RelationshipSet& rel = source.relationship(i);
    if (skip_structures.count(rel.name)) continue;
    std::vector<Participation> participants;
    for (const Participation& p : rel.participants) {
      ECRINT_ASSIGN_OR_RETURN(
          ObjectId oid, target.GetObject(source.object(p.object).name));
      participants.push_back(
          Participation{oid, p.min_card, p.max_card, p.role});
    }
    ECRINT_ASSIGN_OR_RETURN(RelationshipId id,
                            target.AddRelationship(rel.name, participants));
    for (const Attribute& a : rel.attributes) {
      ECRINT_RETURN_IF_ERROR(target.AddRelationshipAttribute(id, a));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Schema> PromoteAttributeToEntity(const Schema& schema,
                                        const std::string& object_class,
                                        const std::string& attribute,
                                        const std::string& entity_name,
                                        const std::string& relationship_name) {
  ECRINT_ASSIGN_OR_RETURN(ObjectId source_id, schema.GetObject(object_class));
  const Attribute* promoted = nullptr;
  for (const Attribute& a : schema.object(source_id).attributes) {
    if (a.name == attribute) promoted = &a;
  }
  if (promoted == nullptr) {
    return NotFoundError("'" + object_class + "' has no own attribute '" +
                         attribute + "'");
  }
  if (promoted->is_key) {
    return FailedPreconditionError(
        "refusing to promote the key attribute '" + attribute + "' of '" +
        object_class + "'");
  }

  Schema out(schema.name());
  ECRINT_RETURN_IF_ERROR(
      CopyInto(schema, out, {}, object_class, attribute));
  ECRINT_ASSIGN_OR_RETURN(ObjectId entity, out.AddEntitySet(entity_name));
  ECRINT_RETURN_IF_ERROR(out.AddObjectAttribute(
      entity, Attribute{promoted->name, promoted->domain, true}));
  ECRINT_ASSIGN_OR_RETURN(ObjectId owner, out.GetObject(object_class));
  ECRINT_RETURN_IF_ERROR(
      out.AddRelationship(relationship_name,
                          {Participation{owner, 0, 1, ""},
                           Participation{entity, 0, kUnboundedCardinality,
                                         ""}})
          .status());
  return out;
}

Result<Schema> RelationshipToEntity(const Schema& schema,
                                    const std::string& relationship) {
  ECRINT_ASSIGN_OR_RETURN(RelationshipId rid,
                          schema.GetRelationship(relationship));
  const RelationshipSet& rel = schema.relationship(rid);

  Schema out(schema.name());
  ECRINT_RETURN_IF_ERROR(CopyInto(schema, out, {relationship}));

  ECRINT_ASSIGN_OR_RETURN(ObjectId entity, out.AddEntitySet(relationship));
  bool has_key = false;
  for (const Attribute& a : rel.attributes) has_key |= a.is_key;
  for (size_t i = 0; i < rel.attributes.size(); ++i) {
    Attribute a = rel.attributes[i];
    if (!has_key && i == 0) a.is_key = true;  // first attribute identifies
    ECRINT_RETURN_IF_ERROR(out.AddObjectAttribute(entity, a));
  }
  if (rel.attributes.empty()) {
    ECRINT_RETURN_IF_ERROR(out.AddObjectAttribute(
        entity, Attribute{"Id", Domain::Int(), true}));
  }

  std::set<std::string> used;
  for (const Participation& p : rel.participants) {
    const std::string& other = schema.object(p.object).name;
    std::string link = relationship + "_" + (p.role.empty() ? other : p.role);
    while (out.FindObject(link) != kNoObject ||
           out.FindRelationship(link) >= 0 || !used.insert(link).second) {
      link += "_x";
    }
    ECRINT_ASSIGN_OR_RETURN(ObjectId oid, out.GetObject(other));
    // Each instance of the new entity stands for one original relationship
    // instance, so it links to exactly one participant on each leg; the
    // participant keeps its original cardinality.
    ECRINT_RETURN_IF_ERROR(
        out.AddRelationship(link,
                            {Participation{entity, 1, 1, ""},
                             Participation{oid, p.min_card, p.max_card,
                                           p.role}})
            .status());
  }
  return out;
}

Result<Schema> EntityToRelationship(const Schema& schema,
                                    const std::string& entity) {
  ECRINT_ASSIGN_OR_RETURN(ObjectId eid, schema.GetObject(entity));
  if (schema.object(eid).kind != ObjectKind::kEntitySet) {
    return FailedPreconditionError("'" + entity + "' is not an entity set");
  }
  if (!schema.ChildrenOf(eid).empty()) {
    return FailedPreconditionError("'" + entity +
                                   "' has categories; convert them first");
  }
  std::vector<RelationshipId> links = schema.RelationshipsOf(eid);
  if (links.size() != 2) {
    return FailedPreconditionError(
        "'" + entity + "' must participate in exactly two linking "
        "relationships, found " + std::to_string(links.size()));
  }

  std::vector<Participation> participants;
  std::set<std::string> skip = {entity};
  for (RelationshipId link : links) {
    const RelationshipSet& rel = schema.relationship(link);
    if (rel.participants.size() != 2) {
      return FailedPreconditionError("linking relationship '" + rel.name +
                                     "' is not binary");
    }
    skip.insert(rel.name);
    for (const Participation& p : rel.participants) {
      if (p.object == eid) continue;
      participants.push_back(p);
    }
  }
  if (participants.size() != 2) {
    return FailedPreconditionError(
        "could not identify two distinct partner classes for '" + entity +
        "'");
  }

  Schema out(schema.name());
  ECRINT_RETURN_IF_ERROR(CopyInto(schema, out, skip));
  std::vector<Participation> resolved;
  for (const Participation& p : participants) {
    ECRINT_ASSIGN_OR_RETURN(
        ObjectId oid, out.GetObject(schema.object(p.object).name));
    resolved.push_back(Participation{oid, p.min_card, p.max_card, p.role});
  }
  ECRINT_ASSIGN_OR_RETURN(RelationshipId rid,
                          out.AddRelationship(entity, resolved));
  for (Attribute a : schema.object(eid).attributes) {
    a.is_key = false;  // a relationship is identified by its participants
    ECRINT_RETURN_IF_ERROR(out.AddRelationshipAttribute(rid, a));
  }
  return out;
}

}  // namespace ecrint::ecr
