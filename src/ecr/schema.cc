#include "ecr/schema.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace ecrint::ecr {

const char* ObjectKindName(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kEntitySet: return "entity";
    case ObjectKind::kCategory: return "category";
  }
  return "?";
}

char ObjectKindCode(ObjectKind kind) {
  return kind == ObjectKind::kEntitySet ? 'e' : 'c';
}

std::string CardinalityToString(int min_card, int max_card) {
  std::string out = "[" + std::to_string(min_card) + ",";
  out += max_card == kUnboundedCardinality ? "n" : std::to_string(max_card);
  out += "]";
  return out;
}

Status Schema::CheckNameFree(const std::string& name) const {
  if (!IsIdentifier(name)) {
    return InvalidArgumentError("'" + name + "' is not a valid identifier");
  }
  if (object_index_.count(name) || relationship_index_.count(name)) {
    return AlreadyExistsError("structure '" + name + "' already defined in " +
                              "schema '" + name_ + "'");
  }
  return Status::Ok();
}

Result<ObjectId> Schema::AddEntitySet(const std::string& name) {
  ECRINT_RETURN_IF_ERROR(CheckNameFree(name));
  ObjectId id = num_objects();
  objects_.push_back(ObjectClass{name, ObjectKind::kEntitySet,
                                 ObjectOrigin::kComponent, {}, {}});
  object_index_[name] = id;
  return id;
}

Result<ObjectId> Schema::AddCategory(const std::string& name,
                                     const std::vector<ObjectId>& parents) {
  ECRINT_RETURN_IF_ERROR(CheckNameFree(name));
  if (parents.empty()) {
    return InvalidArgumentError("category '" + name +
                                "' needs at least one parent");
  }
  for (ObjectId parent : parents) {
    if (parent < 0 || parent >= num_objects()) {
      return NotFoundError("parent id " + std::to_string(parent) +
                           " of category '" + name + "' does not exist");
    }
  }
  ObjectId id = num_objects();
  objects_.push_back(ObjectClass{name, ObjectKind::kCategory,
                                 ObjectOrigin::kComponent, {}, parents});
  object_index_[name] = id;
  return id;
}

Result<RelationshipId> Schema::AddRelationship(
    const std::string& name, const std::vector<Participation>& participants) {
  ECRINT_RETURN_IF_ERROR(CheckNameFree(name));
  if (participants.size() < 2) {
    return InvalidArgumentError("relationship '" + name +
                                "' needs at least two participants");
  }
  for (const Participation& p : participants) {
    if (p.object < 0 || p.object >= num_objects()) {
      return NotFoundError("participant id " + std::to_string(p.object) +
                           " of relationship '" + name + "' does not exist");
    }
    if (p.min_card < 0 ||
        (p.max_card != kUnboundedCardinality &&
         (p.max_card <= 0 || p.min_card > p.max_card))) {
      return InvalidArgumentError(
          "invalid cardinality " + CardinalityToString(p.min_card, p.max_card) +
          " on relationship '" + name + "'");
    }
  }
  RelationshipId id = num_relationships();
  relationships_.push_back(
      RelationshipSet{name, ObjectOrigin::kComponent, {}, participants, {}});
  relationship_index_[name] = id;
  return id;
}

namespace {

Status CheckAttributeFree(const std::vector<Attribute>& existing,
                          const Attribute& attribute,
                          const std::string& owner) {
  for (const Attribute& a : existing) {
    if (a.name == attribute.name) {
      return AlreadyExistsError("attribute '" + attribute.name +
                                "' already defined on '" + owner + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

Status Schema::AddObjectAttribute(ObjectId id, const Attribute& attribute) {
  if (id < 0 || id >= num_objects()) {
    return NotFoundError("object id " + std::to_string(id));
  }
  if (!IsIdentifier(attribute.name)) {
    return InvalidArgumentError("'" + attribute.name +
                                "' is not a valid attribute name");
  }
  ECRINT_RETURN_IF_ERROR(CheckAttributeFree(InheritedAttributes(id), attribute,
                                            objects_[id].name));
  objects_[id].attributes.push_back(attribute);
  return Status::Ok();
}

Status Schema::AddRelationshipAttribute(RelationshipId id,
                                        const Attribute& attribute) {
  if (id < 0 || id >= num_relationships()) {
    return NotFoundError("relationship id " + std::to_string(id));
  }
  if (!IsIdentifier(attribute.name)) {
    return InvalidArgumentError("'" + attribute.name +
                                "' is not a valid attribute name");
  }
  ECRINT_RETURN_IF_ERROR(CheckAttributeFree(relationships_[id].attributes,
                                            attribute,
                                            relationships_[id].name));
  relationships_[id].attributes.push_back(attribute);
  return Status::Ok();
}

Status Schema::AddParent(ObjectId category, ObjectId parent) {
  if (category < 0 || category >= num_objects()) {
    return NotFoundError("object id " + std::to_string(category));
  }
  if (parent < 0 || parent >= num_objects()) {
    return NotFoundError("object id " + std::to_string(parent));
  }
  if (category == parent || HasAncestor(parent, category)) {
    return InvalidArgumentError("adding parent '" + objects_[parent].name +
                                "' to '" + objects_[category].name +
                                "' would create an IS-A cycle");
  }
  ObjectClass& node = objects_[category];
  if (std::find(node.parents.begin(), node.parents.end(), parent) !=
      node.parents.end()) {
    return Status::Ok();  // idempotent
  }
  node.parents.push_back(parent);
  return Status::Ok();
}

ObjectId Schema::FindObject(const std::string& name) const {
  auto it = object_index_.find(name);
  return it == object_index_.end() ? kNoObject : it->second;
}

RelationshipId Schema::FindRelationship(const std::string& name) const {
  auto it = relationship_index_.find(name);
  return it == relationship_index_.end() ? -1 : it->second;
}

Result<ObjectId> Schema::GetObject(const std::string& name) const {
  ObjectId id = FindObject(name);
  if (id == kNoObject) {
    return NotFoundError("no object class '" + name + "' in schema '" +
                         name_ + "'");
  }
  return id;
}

Result<RelationshipId> Schema::GetRelationship(const std::string& name) const {
  RelationshipId id = FindRelationship(name);
  if (id < 0) {
    return NotFoundError("no relationship set '" + name + "' in schema '" +
                         name_ + "'");
  }
  return id;
}

std::vector<Attribute> Schema::InheritedAttributes(ObjectId id) const {
  std::vector<Attribute> out;
  std::set<std::string> seen;
  std::set<ObjectId> visited;
  // Depth-first over parents so ancestors' attributes come first; a child's
  // own attribute shadows an inherited one of the same name.
  auto visit = [&](auto&& self, ObjectId node) -> void {
    if (!visited.insert(node).second) return;
    for (ObjectId parent : objects_[node].parents) self(self, parent);
    for (const Attribute& a : objects_[node].attributes) {
      if (seen.insert(a.name).second) out.push_back(a);
    }
  };
  visit(visit, id);
  return out;
}

std::vector<ObjectId> Schema::ChildrenOf(ObjectId id) const {
  std::vector<ObjectId> out;
  for (ObjectId i = 0; i < num_objects(); ++i) {
    const ObjectClass& node = objects_[i];
    if (std::find(node.parents.begin(), node.parents.end(), id) !=
        node.parents.end()) {
      out.push_back(i);
    }
  }
  return out;
}

bool Schema::HasAncestor(ObjectId id, ObjectId ancestor) const {
  for (ObjectId parent : objects_[id].parents) {
    if (parent == ancestor || HasAncestor(parent, ancestor)) return true;
  }
  return false;
}

std::vector<RelationshipId> Schema::RelationshipsOf(ObjectId id) const {
  std::vector<RelationshipId> out;
  for (RelationshipId i = 0; i < num_relationships(); ++i) {
    for (const Participation& p : relationships_[i].participants) {
      if (p.object == id) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

std::vector<ObjectId> Schema::ObjectsOfKind(ObjectKind kind) const {
  std::vector<ObjectId> out;
  for (ObjectId i = 0; i < num_objects(); ++i) {
    if (objects_[i].kind == kind) out.push_back(i);
  }
  return out;
}

}  // namespace ecrint::ecr
