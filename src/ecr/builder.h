#ifndef ECRINT_ECR_BUILDER_H_
#define ECRINT_ECR_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ecr/schema.h"

namespace ecrint::ecr {

// Fluent, name-based construction of a Schema. Errors are latched: after the
// first failure all further calls are no-ops and Build() reports it. This
// keeps example and test code linear without per-call Status plumbing.
//
//   SchemaBuilder b("sc1");
//   b.Entity("Student").Attr("Name", Domain::Char(), /*key=*/true)
//                      .Attr("GPA", Domain::Real());
//   b.Entity("Department").Attr("Dname", Domain::Char(), true);
//   b.Relationship("Majors", {{"Student", 1, 1}, {"Department", 0, kN}});
//   ECRINT_ASSIGN_OR_RETURN(Schema sc1, b.Build());
class SchemaBuilder {
 public:
  // Shorthand for an unbounded max cardinality in Relationship() specs.
  static constexpr int kN = kUnboundedCardinality;

  // Cardinality-annotated participant named by object class.
  struct ParticipantSpec {
    std::string object;
    int min_card = 0;
    int max_card = kUnboundedCardinality;
    std::string role;
  };

  explicit SchemaBuilder(std::string name) : schema_(std::move(name)) {}

  // Starts a new entity set; subsequent Attr() calls attach to it.
  SchemaBuilder& Entity(const std::string& name);

  // Starts a new category over the named parents.
  SchemaBuilder& Category(const std::string& name,
                          const std::vector<std::string>& parents);

  // Starts a new relationship set over the named participants.
  SchemaBuilder& Relationship(const std::string& name,
                              const std::vector<ParticipantSpec>& specs);

  // Adds an attribute to the most recently started structure.
  SchemaBuilder& Attr(const std::string& name, const Domain& domain,
                      bool key = false);

  // Returns the built schema or the first recorded error.
  Result<Schema> Build();

  // The first error hit so far (OK if none). Handy for asserting in tests.
  const Status& status() const { return status_; }

 private:
  void Fail(Status status);

  Schema schema_;
  Status status_;
  // Where Attr() calls currently go.
  enum class Target { kNone, kObject, kRelationship } target_ = Target::kNone;
  ObjectId current_object_ = kNoObject;
  RelationshipId current_relationship_ = -1;
};

}  // namespace ecrint::ecr

#endif  // ECRINT_ECR_BUILDER_H_
