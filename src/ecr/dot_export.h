#ifndef ECRINT_ECR_DOT_EXPORT_H_
#define ECRINT_ECR_DOT_EXPORT_H_

#include <string>

#include "ecr/schema.h"

namespace ecrint::ecr {

// Graphviz rendering of a schema in the classic ER visual vocabulary:
// boxes for entity sets, double-bordered boxes for categories, diamonds for
// relationship sets, ovals for attributes (keys underlined), and labeled
// edges for IS-A and participation (cardinality on the edge). The paper's
// future-work section asks for a graphical schema browser; `dot -Tpng` on
// this output provides one.
std::string ToDot(const Schema& schema);

}  // namespace ecrint::ecr

#endif  // ECRINT_ECR_DOT_EXPORT_H_
