#include "ecr/validate.h"

#include <map>

namespace ecrint::ecr {

std::string ValidationIssue::ToString() const {
  std::string out =
      severity == IssueSeverity::kError ? "error: " : "warning: ";
  if (!structure.empty()) out += structure + ": ";
  out += message;
  return out;
}

namespace {

void CheckIsaAcyclic(const Schema& schema,
                     std::vector<ValidationIssue>& issues) {
  // Colors: 0 unvisited, 1 on stack, 2 done.
  std::vector<int> color(schema.num_objects(), 0);
  bool cycle = false;
  auto visit = [&](auto&& self, ObjectId node) -> void {
    color[node] = 1;
    for (ObjectId parent : schema.object(node).parents) {
      if (parent < 0 || parent >= schema.num_objects()) continue;
      if (color[parent] == 1) {
        cycle = true;
        return;
      }
      if (color[parent] == 0) self(self, parent);
    }
    color[node] = 2;
  };
  for (ObjectId i = 0; i < schema.num_objects() && !cycle; ++i) {
    if (color[i] == 0) visit(visit, i);
  }
  if (cycle) {
    issues.push_back({IssueSeverity::kError, "",
                      "IS-A (category) graph contains a cycle"});
  }
}

}  // namespace

std::vector<ValidationIssue> ValidateSchema(const Schema& schema) {
  std::vector<ValidationIssue> issues;

  for (ObjectId i = 0; i < schema.num_objects(); ++i) {
    const ObjectClass& object = schema.object(i);
    if (object.kind == ObjectKind::kCategory && object.parents.empty()) {
      issues.push_back({IssueSeverity::kError, object.name,
                        "category has no parent object class"});
    }
    if (object.kind == ObjectKind::kEntitySet && !object.parents.empty()) {
      issues.push_back({IssueSeverity::kError, object.name,
                        "entity set must not have parents"});
    }
    for (ObjectId parent : object.parents) {
      if (parent < 0 || parent >= schema.num_objects()) {
        issues.push_back({IssueSeverity::kError, object.name,
                          "parent id " + std::to_string(parent) +
                              " out of range"});
      }
    }
    if (object.kind == ObjectKind::kEntitySet) {
      bool has_key = false;
      for (const Attribute& a : object.attributes) has_key |= a.is_key;
      if (!has_key) {
        issues.push_back({IssueSeverity::kWarning, object.name,
                          "entity set has no key attribute"});
      }
    }
  }

  CheckIsaAcyclic(schema, issues);

  for (RelationshipId i = 0; i < schema.num_relationships(); ++i) {
    const RelationshipSet& rel = schema.relationship(i);
    if (rel.participants.size() < 2) {
      issues.push_back({IssueSeverity::kError, rel.name,
                        "relationship set needs at least two participants"});
    }
    for (const Participation& p : rel.participants) {
      if (p.object < 0 || p.object >= schema.num_objects()) {
        issues.push_back({IssueSeverity::kError, rel.name,
                          "participant id " + std::to_string(p.object) +
                              " out of range"});
        continue;
      }
      if (p.min_card < 0) {
        issues.push_back({IssueSeverity::kError, rel.name,
                          "negative min cardinality on participant '" +
                              schema.object(p.object).name + "'"});
      }
      if (p.max_card != kUnboundedCardinality &&
          (p.max_card <= 0 || p.min_card > p.max_card)) {
        issues.push_back(
            {IssueSeverity::kError, rel.name,
             "invalid cardinality " +
                 CardinalityToString(p.min_card, p.max_card) +
                 " on participant '" + schema.object(p.object).name + "'"});
      }
    }
  }

  // Schema-analysis warning: same attribute name used with incomparable
  // domains anywhere in the schema suggests a units/scale inconsistency the
  // DDA should resolve before integration (paper, phase 2).
  std::map<std::string, const Attribute*> first_use;
  auto scan = [&](const std::vector<Attribute>& attributes,
                  const std::string& owner) {
    for (const Attribute& a : attributes) {
      auto [it, inserted] = first_use.emplace(a.name, &a);
      if (!inserted && !it->second->domain.Comparable(a.domain)) {
        issues.push_back(
            {IssueSeverity::kWarning, owner,
             "attribute '" + a.name + "' redeclared with incomparable " +
                 "domain (" + it->second->domain.ToString() + " vs " +
                 a.domain.ToString() + ")"});
      }
    }
  };
  for (ObjectId i = 0; i < schema.num_objects(); ++i) {
    scan(schema.object(i).attributes, schema.object(i).name);
  }
  for (RelationshipId i = 0; i < schema.num_relationships(); ++i) {
    scan(schema.relationship(i).attributes, schema.relationship(i).name);
  }

  return issues;
}

Status CheckSchemaValid(const Schema& schema) {
  std::vector<ValidationIssue> issues = ValidateSchema(schema);
  std::string errors;
  for (const ValidationIssue& issue : issues) {
    if (issue.severity != IssueSeverity::kError) continue;
    if (!errors.empty()) errors += "; ";
    errors += issue.ToString();
  }
  if (errors.empty()) return Status::Ok();
  return InvalidArgumentError("schema '" + schema.name() + "': " + errors);
}

}  // namespace ecrint::ecr
