#ifndef ECRINT_ECR_DOMAIN_H_
#define ECRINT_ECR_DOMAIN_H_

#include <optional>
#include <string>

#include "common/result.h"

namespace ecrint::ecr {

// Base type of an attribute domain.
enum class DomainType {
  kChar,   // character string, optionally length-bounded
  kInt,    // integer, optionally range-bounded
  kReal,   // floating point, optionally range-bounded
  kBool,
  kDate,
};

const char* DomainTypeName(DomainType type);

// How the value sets of two domains relate. Used by the Larson et al. 87
// attribute-equivalence extension: the paper's tool collapses this to a
// binary equivalent/nonequivalent decision, which `Domain::Comparable`
// provides.
enum class DomainRelation {
  kEqual,
  kContains,     // left domain strictly contains right
  kContainedIn,  // left domain strictly contained in right
  kOverlap,      // neither contains the other but they intersect
  kDisjoint,     // incompatible base types or provably disjoint ranges
};

const char* DomainRelationName(DomainRelation relation);

// An attribute domain: base type plus optional constraints. Scale/units are
// carried so schema analysis can flag unit mismatches (Section "Phase 2" of
// the paper lists scales/units among the incompatibilities to resolve).
class Domain {
 public:
  Domain() : type_(DomainType::kChar) {}
  explicit Domain(DomainType type) : type_(type) {}

  static Domain Char() { return Domain(DomainType::kChar); }
  static Domain CharN(int max_length);
  static Domain Int() { return Domain(DomainType::kInt); }
  static Domain IntRange(long long lo, long long hi);
  static Domain Real() { return Domain(DomainType::kReal); }
  static Domain RealRange(double lo, double hi);
  static Domain Bool() { return Domain(DomainType::kBool); }
  static Domain Date() { return Domain(DomainType::kDate); }

  DomainType type() const { return type_; }
  std::optional<int> max_length() const { return max_length_; }
  std::optional<double> lower_bound() const { return lower_bound_; }
  std::optional<double> upper_bound() const { return upper_bound_; }
  const std::string& unit() const { return unit_; }

  Domain& set_unit(std::string unit) {
    unit_ = std::move(unit);
    return *this;
  }

  // Relation between this domain's value set and `other`'s.
  DomainRelation Compare(const Domain& other) const;

  // The binary simplification the paper's tool uses: true if the two domains
  // could describe the same real-world values (same base type; a unit
  // mismatch makes them non-comparable until schema analysis resolves it).
  bool Comparable(const Domain& other) const;

  // DDL rendering, e.g. "char", "char(20)", "int[0..120]", "real unit km".
  std::string ToString() const;

  friend bool operator==(const Domain& a, const Domain& b) {
    return a.type_ == b.type_ && a.max_length_ == b.max_length_ &&
           a.lower_bound_ == b.lower_bound_ &&
           a.upper_bound_ == b.upper_bound_ && a.unit_ == b.unit_;
  }

 private:
  DomainType type_;
  std::optional<int> max_length_;      // kChar only
  std::optional<double> lower_bound_;  // kInt / kReal only
  std::optional<double> upper_bound_;  // kInt / kReal only
  std::string unit_;                   // empty = unspecified
};

// Parses the DDL rendering produced by Domain::ToString.
Result<Domain> ParseDomain(const std::string& text);

}  // namespace ecrint::ecr

#endif  // ECRINT_ECR_DOMAIN_H_
