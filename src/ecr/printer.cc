#include "ecr/printer.h"

#include <string>

namespace ecrint::ecr {

namespace {

std::string ParticipantToString(const Schema& schema,
                                const Participation& p) {
  std::string out = schema.object(p.object).name;
  if (!p.role.empty()) out += " as " + p.role;
  out += " " + CardinalityToString(p.min_card, p.max_card);
  return out;
}

template <typename Attrs>
void AppendAttributeBlock(const Attrs& attributes, std::string& out) {
  if (attributes.empty()) {
    out += ";\n";
    return;
  }
  out += " {\n";
  for (const Attribute& a : attributes) {
    out += "    " + AttributeToString(a) + ";\n";
  }
  out += "  }\n";
}

}  // namespace

std::string ToDdl(const Schema& schema) {
  std::string out = "schema " + schema.name() + " {\n";
  for (ObjectId i = 0; i < schema.num_objects(); ++i) {
    const ObjectClass& object = schema.object(i);
    if (object.kind == ObjectKind::kEntitySet) {
      out += "  entity " + object.name;
    } else {
      out += "  category " + object.name + " of ";
      for (size_t j = 0; j < object.parents.size(); ++j) {
        if (j > 0) out += ", ";
        out += schema.object(object.parents[j]).name;
      }
    }
    AppendAttributeBlock(object.attributes, out);
  }
  for (RelationshipId i = 0; i < schema.num_relationships(); ++i) {
    const RelationshipSet& rel = schema.relationship(i);
    out += "  relationship " + rel.name + " (";
    for (size_t j = 0; j < rel.participants.size(); ++j) {
      if (j > 0) out += ", ";
      out += ParticipantToString(schema, rel.participants[j]);
    }
    out += ")";
    AppendAttributeBlock(rel.attributes, out);
  }
  out += "}\n";
  return out;
}

std::string ToOutline(const Schema& schema) {
  std::string out = "schema " + schema.name() + "\n";
  for (ObjectId i = 0; i < schema.num_objects(); ++i) {
    const ObjectClass& object = schema.object(i);
    out += "  " + std::string(ObjectKindName(object.kind)) + " " +
           object.name;
    if (object.origin == ObjectOrigin::kEquivalent) out += "  (equivalent)";
    if (object.origin == ObjectOrigin::kDerived) out += "  (derived)";
    out += "\n";
    if (!object.parents.empty()) {
      out += "    is-a:";
      for (ObjectId parent : object.parents) {
        out += " " + schema.object(parent).name;
      }
      out += "\n";
    }
    for (const Attribute& a : object.attributes) {
      out += "    " + AttributeToString(a) + "\n";
    }
    // Show what a member actually carries, if inheritance adds anything.
    std::vector<Attribute> all = schema.InheritedAttributes(i);
    if (all.size() > object.attributes.size()) {
      out += "    inherited:";
      for (const Attribute& a : all) {
        bool own = false;
        for (const Attribute& mine : object.attributes) {
          own |= mine.name == a.name;
        }
        if (!own) out += " " + a.name;
      }
      out += "\n";
    }
  }
  for (RelationshipId i = 0; i < schema.num_relationships(); ++i) {
    const RelationshipSet& rel = schema.relationship(i);
    out += "  relationship " + rel.name;
    if (rel.origin == ObjectOrigin::kEquivalent) out += "  (equivalent)";
    if (rel.origin == ObjectOrigin::kDerived) out += "  (derived)";
    out += " (";
    for (size_t j = 0; j < rel.participants.size(); ++j) {
      if (j > 0) out += ", ";
      out += ParticipantToString(schema, rel.participants[j]);
    }
    out += ")\n";
    for (const Attribute& a : rel.attributes) {
      out += "    " + AttributeToString(a) + "\n";
    }
  }
  return out;
}

std::string Summarize(const Schema& schema) {
  int entities = 0;
  int categories = 0;
  for (ObjectId i = 0; i < schema.num_objects(); ++i) {
    if (schema.object(i).kind == ObjectKind::kEntitySet) {
      ++entities;
    } else {
      ++categories;
    }
  }
  return schema.name() + ": " + std::to_string(entities) + " entities, " +
         std::to_string(categories) + " categories, " +
         std::to_string(schema.num_relationships()) + " relationships";
}

}  // namespace ecrint::ecr
