#include "ecr/catalog.h"

#include <algorithm>

#include "common/strings.h"

namespace ecrint::ecr {

Result<Schema*> Catalog::CreateSchema(const std::string& name) {
  if (!IsIdentifier(name)) {
    return InvalidArgumentError("'" + name + "' is not a valid schema name");
  }
  if (schemas_.count(name)) {
    return AlreadyExistsError("schema '" + name + "' already defined");
  }
  auto [it, inserted] = schemas_.emplace(name, Schema(name));
  (void)inserted;
  index_[name] = next_order_++;
  return &it->second;
}

Status Catalog::AddSchema(Schema schema) {
  if (!IsIdentifier(schema.name())) {
    return InvalidArgumentError("'" + schema.name() +
                                "' is not a valid schema name");
  }
  if (schemas_.count(schema.name())) {
    return AlreadyExistsError("schema '" + schema.name() +
                              "' already defined");
  }
  index_[schema.name()] = next_order_++;
  schemas_.emplace(schema.name(), std::move(schema));
  return Status::Ok();
}

Status Catalog::DropSchema(const std::string& name) {
  if (schemas_.erase(name) == 0) {
    return NotFoundError("no schema '" + name + "'");
  }
  index_.erase(name);
  return Status::Ok();
}

Result<const Schema*> Catalog::GetSchema(const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) return NotFoundError("no schema '" + name + "'");
  return &it->second;
}

Result<Schema*> Catalog::GetMutableSchema(const std::string& name) {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) return NotFoundError("no schema '" + name + "'");
  return &it->second;
}

std::vector<std::string> Catalog::SchemaNames() const {
  std::vector<std::pair<int, std::string>> ordered;
  ordered.reserve(index_.size());
  for (const auto& [name, order] : index_) ordered.emplace_back(order, name);
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (auto& [order, name] : ordered) out.push_back(std::move(name));
  return out;
}

}  // namespace ecrint::ecr
