#include "ecr/catalog.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace ecrint::ecr {

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  names_ = other.names_;
  order_ = other.order_;
  next_order_ = other.next_order_;
  size_ = other.size_;
  schemas_.clear();
  schemas_.reserve(other.schemas_.size());
  for (const std::unique_ptr<Schema>& schema : other.schemas_) {
    schemas_.push_back(schema ? std::make_unique<Schema>(*schema) : nullptr);
  }
  return *this;
}

Result<int> Catalog::ClaimSlot(const std::string& name) {
  if (!IsIdentifier(name)) {
    return InvalidArgumentError("'" + name + "' is not a valid schema name");
  }
  int id = names_.Intern(name);
  if (static_cast<size_t>(id) >= schemas_.size()) {
    schemas_.resize(static_cast<size_t>(id) + 1);
    order_.resize(static_cast<size_t>(id) + 1, 0);
  }
  if (schemas_[static_cast<size_t>(id)]) {
    return AlreadyExistsError("schema '" + name + "' already defined");
  }
  order_[static_cast<size_t>(id)] = next_order_++;
  ++size_;
  return id;
}

Result<Schema*> Catalog::CreateSchema(const std::string& name) {
  ECRINT_ASSIGN_OR_RETURN(int id, ClaimSlot(name));
  schemas_[static_cast<size_t>(id)] = std::make_unique<Schema>(name);
  return schemas_[static_cast<size_t>(id)].get();
}

Status Catalog::AddSchema(Schema schema) {
  ECRINT_ASSIGN_OR_RETURN(int id, ClaimSlot(schema.name()));
  schemas_[static_cast<size_t>(id)] =
      std::make_unique<Schema>(std::move(schema));
  return Status::Ok();
}

Status Catalog::DropSchema(const std::string& name) {
  int id = IndexOf(name);
  if (id < 0) return NotFoundError("no schema '" + name + "'");
  schemas_[static_cast<size_t>(id)].reset();
  --size_;
  return Status::Ok();
}

Result<const Schema*> Catalog::GetSchema(const std::string& name) const {
  int id = IndexOf(name);
  if (id < 0) return NotFoundError("no schema '" + name + "'");
  return schemas_[static_cast<size_t>(id)].get();
}

Result<Schema*> Catalog::GetMutableSchema(const std::string& name) {
  int id = IndexOf(name);
  if (id < 0) return NotFoundError("no schema '" + name + "'");
  return schemas_[static_cast<size_t>(id)].get();
}

std::vector<std::string> Catalog::SchemaNames() const {
  std::vector<std::pair<int, int>> ordered;  // (definition order, slot id)
  ordered.reserve(static_cast<size_t>(size_));
  for (size_t id = 0; id < schemas_.size(); ++id) {
    if (schemas_[id]) ordered.emplace_back(order_[id], static_cast<int>(id));
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (const auto& [order, id] : ordered) out.push_back(names_.KeyOf(id));
  return out;
}

}  // namespace ecrint::ecr
