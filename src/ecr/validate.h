#ifndef ECRINT_ECR_VALIDATE_H_
#define ECRINT_ECR_VALIDATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ecr/schema.h"

namespace ecrint::ecr {

// Severity of a validation finding. Errors make a schema unusable for
// integration; warnings flag the "schema analysis" incompatibilities the
// paper's phase 2 asks the DDA to review (naming, units, key-less objects).
enum class IssueSeverity { kError, kWarning };

struct ValidationIssue {
  IssueSeverity severity;
  std::string structure;  // object class / relationship set name, may be ""
  std::string message;

  std::string ToString() const;
};

// Structural checks over one schema:
//   errors:   IS-A cycles, empty-parent categories, dangling participants,
//             malformed cardinalities, relationship over < 2 participants
//   warnings: entity set without any key attribute, attribute shadowing an
//             inherited attribute with a different domain, unit mismatches
//             among same-named attributes
std::vector<ValidationIssue> ValidateSchema(const Schema& schema);

// Convenience: OK iff ValidateSchema reports no kError issues; the message
// aggregates the errors otherwise.
Status CheckSchemaValid(const Schema& schema);

}  // namespace ecrint::ecr

#endif  // ECRINT_ECR_VALIDATE_H_
