// The paper's running example end-to-end: schemas sc1 (Figure 3) and sc2
// (Figure 4) are loaded from DDL, attribute equivalences and the Screen 8
// assertions are applied, and the integrated schema of Figure 5 is printed
// together with its derived-attribute provenance and a Graphviz rendering.
// The whole pipeline runs through an engine::Engine, whose phase trace is
// printed at the end with --trace.
//
//   ./build/examples/university

#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "core/resemblance.h"
#include "ecr/dot_export.h"
#include "ecr/printer.h"
#include "engine/engine.h"

using namespace ecrint;        // NOLINT: example brevity
using namespace ecrint::core;  // NOLINT: example brevity

namespace {

constexpr char kUniversityDdl[] = R"(
# Figure 3: input schema sc1
schema sc1 {
  entity Student {
    Name: char key;
    GPA: real;
  }
  entity Department {
    Dname: char key;
  }
  relationship Majors (Student [1,1], Department [0,n]);
}

# Figure 4: input schema sc2
schema sc2 {
  entity Grad_student {
    Name: char key;
    GPA: real;
    Support_type: char;
  }
  entity Faculty {
    Name: char key;
    Rank: char;
  }
  entity Department {
    Dname: char key;
  }
  relationship Study (Grad_student [1,1], Department [0,n]);
  relationship Works (Faculty [1,1], Department [1,n]);
}
)";

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return *std::move(result);
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_dot = argc > 1 && std::string(argv[1]) == "--dot";
  bool emit_trace = argc > 1 && std::string(argv[1]) == "--trace";

  engine::Engine engine;
  Check(engine.DefineSchema(kUniversityDdl).status());

  std::cout << "Component schemas\n-----------------\n";
  std::cout << ecr::ToOutline(**engine.catalog().GetSchema("sc1")) << "\n";
  std::cout << ecr::ToOutline(**engine.catalog().GetSchema("sc2")) << "\n";

  // Phase 2: the DDA's equivalence classes.
  Check(engine.AssertEquivalence({"sc1", "Student", "Name"},
                                 {"sc2", "Grad_student", "Name"}));
  Check(engine.AssertEquivalence({"sc1", "Student", "GPA"},
                                 {"sc2", "Grad_student", "GPA"}));
  Check(engine.AssertEquivalence({"sc1", "Department", "Dname"},
                                 {"sc2", "Department", "Dname"}));

  // The resemblance ranking the tool shows on Screen 8.
  std::cout << "Ranked object pairs (Screen 8)\n"
            << "------------------------------\n";
  for (const ObjectPair& pair : Check(engine.RankedPairs(
           "sc1", "sc2", StructureKind::kObjectClass,
           /*include_zero=*/true))) {
    std::cout << "  " << pair.first.ToString() << " / "
              << pair.second.ToString() << "  ratio "
              << FormatFixed(pair.attribute_ratio, 4) << "\n";
  }
  std::cout << "\n";

  // Phase 3: the paper's "likely set of assertions".
  Check(engine
            .AssertRelation({"sc1", "Department"}, {"sc2", "Department"},
                            AssertionType::kEquals)
            .status());
  Check(engine
            .AssertRelation({"sc1", "Student"}, {"sc2", "Grad_student"},
                            AssertionType::kContains)
            .status());
  Check(engine
            .AssertRelation({"sc1", "Student"}, {"sc2", "Faculty"},
                            AssertionType::kDisjointIntegrable)
            .status());
  Check(engine
            .AssertRelation({"sc1", "Majors"}, {"sc2", "Study"},
                            AssertionType::kEquals)
            .status());

  // Phase 4.
  const IntegrationResult& result =
      *Check(engine.Integrate({"sc1", "sc2"}));

  std::cout << "Integrated schema (Figure 5)\n"
            << "----------------------------\n"
            << ecr::ToOutline(result.schema) << "\n";

  std::cout << "Derived attributes (Screens 12a/12b)\n"
            << "------------------------------------\n";
  for (const DerivedAttributeInfo& info : result.derived_attributes) {
    std::cout << "  " << info.owner << "." << info.name << " <- ";
    for (size_t i = 0; i < info.components.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << info.components[i].ToString();
    }
    std::cout << "\n";
  }

  std::cout << "\nFederated extents\n-----------------\n";
  for (const char* name : {"D_Stud_Facu", "E_Department"}) {
    std::cout << "  " << name << " draws from:";
    for (const ObjectRef& source : result.ComponentExtent(name)) {
      std::cout << " " << source.ToString();
    }
    std::cout << "\n";
  }

  if (emit_dot) {
    std::cout << "\nGraphviz (pipe through `dot -Tpng`)\n"
              << "-----------------------------------\n"
              << ecr::ToDot(result.schema);
  }
  if (emit_trace) {
    std::cout << "\nPhase trace\n-----------\n" << engine.TraceJson() << "\n";
  }
  return 0;
}
