// Quickstart: integrate two tiny user views with the Engine API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "ecr/builder.h"
#include "ecr/printer.h"
#include "engine/engine.h"

using ecrint::core::AssertionType;
using ecrint::core::IntegrationResult;
using ecrint::ecr::Domain;
using ecrint::ecr::SchemaBuilder;
using ecrint::engine::Engine;

namespace {

// Dies with a message on error; examples keep error plumbing minimal.
template <typename T>
T Check(ecrint::Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return *std::move(result);
}

void Check(const ecrint::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Phase 1 — define two component views.
  Engine engine;
  SchemaBuilder hr("hr");
  hr.Entity("Employee")
      .Attr("Ssn", Domain::Int(), /*key=*/true)
      .Attr("Name", Domain::Char())
      .Attr("Salary", Domain::Real());
  Check(engine.AddSchema(Check(hr.Build())));

  SchemaBuilder payroll("payroll");
  payroll.Entity("Manager")
      .Attr("Ssn", Domain::Int(), /*key=*/true)
      .Attr("Bonus", Domain::Real());
  Check(engine.AddSchema(Check(payroll.Build())));

  // 2. Phase 2 — tell the tool which attributes mean the same thing.
  Check(engine.AssertEquivalence({"hr", "Employee", "Ssn"},
                                 {"payroll", "Manager", "Ssn"}));

  // 3. Phase 3 — assert how the domains relate: every manager is an
  //    employee.
  Check(engine
            .AssertRelation({"payroll", "Manager"}, {"hr", "Employee"},
                            AssertionType::kContainedIn)
            .status());

  // 4. Phase 4 — integrate and inspect.
  const IntegrationResult& result =
      *Check(engine.Integrate({"hr", "payroll"}));

  std::cout << "Integrated schema\n=================\n"
            << ecrint::ecr::ToOutline(result.schema) << "\n";

  std::cout << "Mappings\n========\n";
  for (const auto& mapping : result.mappings) {
    std::cout << mapping.source.ToString() << " -> " << mapping.target
              << "\n";
    for (const auto& attribute : mapping.attributes) {
      std::cout << "  ." << attribute.source_attribute << " -> "
                << attribute.target_owner << "." << attribute.target_attribute
                << "\n";
    }
  }
  return 0;
}
