// The interactive schema-integration tool itself: the menu/form interface
// of the paper, driven by stdin lines. Frames render to stdout.
//
//   ./build/examples/interactive_tool                  # interactive
//   ./build/examples/interactive_tool --script f       # replay a session
//   ./build/examples/interactive_tool --load p.ecrint  # resume a project
//   ./build/examples/interactive_tool --save p.ecrint  # save on exit
//
// Script files contain one input line per line; '#' comments are skipped.
// Flags combine freely.

#include <fstream>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/project_io.h"
#include "tui/session.h"

int main(int argc, char** argv) {
  ecrint::tui::Session session;
  std::istream* input = &std::cin;
  std::ifstream file;
  bool echo = false;
  std::string save_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--script" && i + 1 < argc) {
      file.open(argv[++i]);
      if (!file) {
        std::cerr << "cannot open script '" << argv[i] << "'\n";
        return 1;
      }
      input = &file;
      echo = true;
    } else if (flag == "--load" && i + 1 < argc) {
      auto project = ecrint::core::LoadProjectFile(argv[++i]);
      if (!project.ok()) {
        std::cerr << "load failed: " << project.status() << "\n";
        return 1;
      }
      ecrint::Status status = session.ImportProject(*std::move(project));
      if (!status.ok()) {
        std::cerr << "import failed: " << status << "\n";
        return 1;
      }
    } else if (flag == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--script <file>] [--load <file>] [--save <file>]\n";
      return 1;
    }
  }

  std::cout << session.CurrentFrame();
  std::string line;
  while (!session.done() && std::getline(*input, line)) {
    std::string_view stripped = ecrint::StripWhitespace(line);
    if (!stripped.empty() && stripped.front() == '#') continue;
    if (echo) std::cout << "=> " << line << "\n";
    std::cout << session.Step(line);
  }
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    out << session.ExportProject();
    std::cerr << "project saved to " << save_path << "\n";
  }
  return 0;
}
