// The paper's Section-4 "marriage" scenario end-to-end: one schema models a
// marriage as an ENTITY SET, the other as a RELATIONSHIP between Male and
// Female. Plain integration cannot relate constructs of different kinds, so
// the DDA must first modify one schema (phase 2). This example detects the
// correspondence with the semantic-processing heuristic, applies the
// RelationshipToEntity transformation, and then integrates normally.
//
//   ./build/examples/restructure

#include <cstdlib>
#include <iostream>

#include "core/assertion_store.h"
#include "core/equivalence.h"
#include "core/integrator.h"
#include "ecr/builder.h"
#include "ecr/printer.h"
#include "ecr/transform.h"
#include "heuristics/construct_match.h"

using namespace ecrint;        // NOLINT: example brevity
using namespace ecrint::core;  // NOLINT: example brevity

namespace {

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return *std::move(result);
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // The civil registry keeps marriages as entities...
  ecr::SchemaBuilder registry("registry");
  registry.Entity("Marriage")
      .Attr("Marriage_date", ecr::Domain::Date(), /*key=*/true)
      .Attr("Marriage_location", ecr::Domain::Char())
      .Attr("Number_of_children", ecr::Domain::Int());
  ecr::Schema registry_schema = Check(registry.Build());

  // ...while the census bureau models them as a relationship.
  ecr::SchemaBuilder census("census");
  census.Entity("Male").Attr("Ssn", ecr::Domain::Int(), true);
  census.Entity("Female").Attr("Ssn2", ecr::Domain::Int(), true);
  census.Relationship("Married_to", {{"Male", 0, 1, "husband"},
                                     {"Female", 0, 1, "wife"}})
      .Attr("Marriage_date", ecr::Domain::Date())
      .Attr("Marriage_location", ecr::Domain::Char())
      .Attr("Children", ecr::Domain::Int());
  ecr::Schema census_schema = Check(census.Build());

  ecr::Catalog catalog;
  Check(catalog.AddSchema(registry_schema));
  Check(catalog.AddSchema(census_schema));

  // Phase 2, schema analysis: the heuristic flags the construct mismatch.
  heuristics::SynonymDictionary synonyms;
  std::cout << "Construct mismatches detected\n"
            << "-----------------------------\n";
  std::vector<heuristics::ConstructCorrespondence> mismatches =
      Check(heuristics::FindConstructMismatches(catalog, "registry",
                                                "census", synonyms));
  for (const heuristics::ConstructCorrespondence& c : mismatches) {
    std::cout << "  " << c.ToString() << "\n";
  }
  if (mismatches.empty()) {
    std::cerr << "expected the marriage mismatch\n";
    return 1;
  }

  // Phase 2, schema modification: convert the census relationship into an
  // entity so both schemas use the same construct.
  ecr::Schema modified =
      Check(ecr::RelationshipToEntity(census_schema, "Married_to"));
  std::cout << "\nCensus schema after RelationshipToEntity\n"
            << "----------------------------------------\n"
            << ecr::ToOutline(modified) << "\n";

  ecr::Catalog working;
  Check(working.AddSchema(registry_schema));
  Check(working.AddSchema(modified));

  // Phases 2-4 as usual: equate the attributes, assert equality, integrate.
  EquivalenceMap equivalence =
      Check(EquivalenceMap::Create(working, {"registry", "census"}));
  Check(equivalence.DeclareEquivalent(
      {"registry", "Marriage", "Marriage_date"},
      {"census", "Married_to", "Marriage_date"}));
  Check(equivalence.DeclareEquivalent(
      {"registry", "Marriage", "Marriage_location"},
      {"census", "Married_to", "Marriage_location"}));
  Check(equivalence.DeclareEquivalent(
      {"registry", "Marriage", "Number_of_children"},
      {"census", "Married_to", "Children"}));

  AssertionStore assertions;
  Check(assertions
            .Assert({"registry", "Marriage"}, {"census", "Married_to"},
                    AssertionType::kEquals)
            .status());

  IntegrationResult result = Check(
      Integrate(working, {"registry", "census"}, equivalence, assertions));
  std::cout << "Integrated schema\n-----------------\n"
            << ecr::ToOutline(result.schema) << "\n";

  std::cout << "Derived attributes\n------------------\n";
  for (const DerivedAttributeInfo& info : result.derived_attributes) {
    std::cout << "  " << info.owner << "." << info.name << " <- ";
    for (size_t i = 0; i < info.components.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << info.components[i].ToString();
    }
    std::cout << "\n";
  }
  return 0;
}
