// Global schema design (the paper's second integration context): two
// pre-existing databases — one relational, one hierarchical — are first
// translated into the ECR model (the Navathe & Awong 87 step), a native ECR
// user view joins them, heuristics propose attribute equivalences, and the
// n-ary integrator produces a federated global schema whose mappings
// translate a request against the global schema into per-database requests.
// The pipeline state (catalog, equivalences, assertions, result) lives in
// one engine::Engine.
//
//   ./build/examples/federation

#include <cstdlib>
#include <iostream>

#include "common/strings.h"
#include "data/federation.h"
#include "data/instance_store.h"
#include "ecr/printer.h"
#include "engine/engine.h"
#include "heuristics/suggest.h"
#include "translate/hier_to_ecr.h"
#include "translate/rel_to_ecr.h"

using namespace ecrint;        // NOLINT: example brevity
using namespace ecrint::core;  // NOLINT: example brevity

namespace {

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return *std::move(result);
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

// The company's SQL payroll database.
translate::RelationalSchema PayrollDatabase() {
  using translate::Table;
  translate::RelationalSchema db("payroll");
  Check(db.AddTable(Table{"department",
                          {{"dno", ecr::Domain::Int(), false},
                           {"dname", ecr::Domain::Char(), false}},
                          {"dno"},
                          {}}));
  Check(db.AddTable(Table{"employee",
                          {{"ssn", ecr::Domain::Int(), false},
                           {"name", ecr::Domain::Char(), false},
                           {"salary", ecr::Domain::Real(), false},
                           {"dno", ecr::Domain::Int(), true}},
                          {"ssn"},
                          {{{"dno"}, "department", {"dno"}}}}));
  Check(db.AddTable(Table{"manager",
                          {{"ssn", ecr::Domain::Int(), false},
                           {"bonus", ecr::Domain::Real(), false}},
                          {"ssn"},
                          {{{"ssn"}, "employee", {"ssn"}}}}));
  return db;
}

// The legacy IMS personnel hierarchy.
translate::HierarchicalSchema PersonnelDatabase() {
  translate::HierarchicalSchema db("personnel");
  translate::Segment dependent{"Dependent",
                               {{"Dname", ecr::Domain::Char(), true},
                                {"Relation", ecr::Domain::Char(), false}},
                               {}};
  translate::Segment worker{"Worker",
                            {{"Ssn", ecr::Domain::Int(), true},
                             {"Label", ecr::Domain::Char(), false},
                             {"Pay", ecr::Domain::Real(), false}},
                            {dependent}};
  Check(db.AddRoot(worker));
  return db;
}

}  // namespace

int main() {
  engine::EngineOptions options;
  options.integration.result_name = "global";
  engine::Engine engine(options);

  // Phase 1: translate the two databases and add the native ECR view.
  Check(engine.AddSchema(Check(translate::RelationalToEcr(
      PayrollDatabase()))));
  Check(engine.AddSchema(Check(translate::HierarchicalToEcr(
      PersonnelDatabase()))));
  Check(engine.DefineSchema(R"(
    schema directory {
      entity Person {
        Ssn: int key;
        Name: char;
        Phone: char;
      }
    }
  )").status());

  std::cout << "Component schemas after translation\n"
            << "-----------------------------------\n";
  for (const std::string& name : engine.catalog().SchemaNames()) {
    std::cout << ecr::Summarize(**engine.catalog().GetSchema(name)) << "\n";
  }
  std::cout << "\n";

  // Phase 2: let the heuristics propose equivalences, then apply them.
  heuristics::SynonymDictionary synonyms =
      heuristics::SynonymDictionary::WithBuiltins();
  std::cout << "Suggested attribute equivalences\n"
            << "--------------------------------\n";
  std::vector<std::string> names = engine.catalog().SchemaNames();
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      for (const heuristics::EquivalenceSuggestion& suggestion :
           Check(engine.Suggest(names[i], names[j], synonyms, 0.95))) {
        std::cout << "  " << suggestion.first.ToString() << " == "
                  << suggestion.second.ToString() << "  ("
                  << suggestion.rationale << ")\n";
        Check(engine.AssertEquivalence(suggestion.first, suggestion.second));
      }
    }
  }
  std::cout << "\n";

  // Phase 3: the administrator reviews and asserts domain relations.
  Check(engine
            .AssertRelation({"payroll", "employee"}, {"directory", "Person"},
                            AssertionType::kContainedIn)
            .status());
  Check(engine
            .AssertRelation({"personnel", "Worker"}, {"payroll", "employee"},
                            AssertionType::kEquals)
            .status());

  // Phase 4: n-ary integration over all three components at once.
  const IntegrationResult& result = *Check(engine.Integrate(names));

  std::cout << "Global schema\n-------------\n"
            << ecr::ToOutline(result.schema) << "\n";

  // Request translation: a query against the global Person class fans out
  // to the component databases that hold person-like data. The name
  // attribute merged into a derived attribute during integration; find it
  // on the integrated Person class and query it.
  std::cout << "Query translation demo\n----------------------\n";
  ecr::ObjectId person = result.schema.FindObject("Person");
  std::string name_attribute;
  for (const ecr::Attribute& a : result.schema.object(person).attributes) {
    if (a.name.rfind("D_N", 0) == 0 || a.name == "Name") {
      name_attribute = a.name;
    }
  }
  Request query{{result.schema.name(), "Person"}, {name_attribute}};
  FanoutPlan plan = Check(engine.TranslateRequestToComponents(query));
  std::cout << plan.ToString();

  // Execute the plan over actual component data.
  const ecr::Schema& payroll_ecr = **engine.catalog().GetSchema("payroll");
  const ecr::Schema& personnel_ecr = **engine.catalog().GetSchema("personnel");
  const ecr::Schema& directory_ecr = **engine.catalog().GetSchema("directory");
  data::InstanceStore payroll_db(&payroll_ecr);
  data::InstanceStore personnel_db(&personnel_ecr);
  data::InstanceStore directory_db(&directory_ecr);
  Check(payroll_db
            .Insert("employee", {{"ssn", data::Value::Int(1)},
                                 {"name", data::Value::Str("Ann")},
                                 {"salary", data::Value::Real(90000)}})
            .status());
  Check(personnel_db
            .Insert("Worker", {{"Ssn", data::Value::Int(2)},
                               {"Label", data::Value::Str("Bob")},
                               {"Pay", data::Value::Real(80000)}})
            .status());
  Check(directory_db
            .Insert("Person", {{"Ssn", data::Value::Int(3)},
                               {"Name", data::Value::Str("Cyd")},
                               {"Phone", data::Value::Str("555-1234")}})
            .status());
  data::ResultSet rows = Check(data::ExecuteFanout(
      plan, {{"payroll", &payroll_db},
             {"personnel", &personnel_db},
             {"directory", &directory_db}}));
  std::cout << "\nmaterialized rows (outer union)\n" << rows.ToString();

  // And the other direction (the logical-design context): a request against
  // the payroll view rewrites onto the global schema.
  Request view_query{{"payroll", "employee"}, {"ssn", "name"}};
  Request rewritten = Check(engine.TranslateRequest(view_query));
  std::cout << "\nview query:    " << view_query.ToString() << "\n"
            << "rewritten to:  " << rewritten.ToString() << "\n";
  return 0;
}
