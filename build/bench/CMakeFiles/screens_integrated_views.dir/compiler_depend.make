# Empty compiler generated dependencies file for screens_integrated_views.
# This may be replaced when dependencies are built.
