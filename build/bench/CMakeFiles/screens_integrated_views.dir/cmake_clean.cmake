file(REMOVE_RECURSE
  "CMakeFiles/screens_integrated_views.dir/screens_integrated_views.cc.o"
  "CMakeFiles/screens_integrated_views.dir/screens_integrated_views.cc.o.d"
  "screens_integrated_views"
  "screens_integrated_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screens_integrated_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
