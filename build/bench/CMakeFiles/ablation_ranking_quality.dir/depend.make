# Empty dependencies file for ablation_ranking_quality.
# This may be replaced when dependencies are built.
