file(REMOVE_RECURSE
  "CMakeFiles/ablation_ranking_quality.dir/ablation_ranking_quality.cc.o"
  "CMakeFiles/ablation_ranking_quality.dir/ablation_ranking_quality.cc.o.d"
  "ablation_ranking_quality"
  "ablation_ranking_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranking_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
