file(REMOVE_RECURSE
  "CMakeFiles/perf_resemblance.dir/perf_resemblance.cc.o"
  "CMakeFiles/perf_resemblance.dir/perf_resemblance.cc.o.d"
  "perf_resemblance"
  "perf_resemblance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_resemblance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
