# Empty dependencies file for perf_resemblance.
# This may be replaced when dependencies are built.
