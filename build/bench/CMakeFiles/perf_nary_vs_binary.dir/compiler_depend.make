# Empty compiler generated dependencies file for perf_nary_vs_binary.
# This may be replaced when dependencies are built.
