
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_nary_vs_binary.cc" "bench/CMakeFiles/perf_nary_vs_binary.dir/perf_nary_vs_binary.cc.o" "gcc" "bench/CMakeFiles/perf_nary_vs_binary.dir/perf_nary_vs_binary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ecrint_paper_fixtures.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecrint_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
