file(REMOVE_RECURSE
  "CMakeFiles/perf_nary_vs_binary.dir/perf_nary_vs_binary.cc.o"
  "CMakeFiles/perf_nary_vs_binary.dir/perf_nary_vs_binary.cc.o.d"
  "perf_nary_vs_binary"
  "perf_nary_vs_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_nary_vs_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
