# Empty compiler generated dependencies file for perf_parse_translate.
# This may be replaced when dependencies are built.
