file(REMOVE_RECURSE
  "CMakeFiles/perf_parse_translate.dir/perf_parse_translate.cc.o"
  "CMakeFiles/perf_parse_translate.dir/perf_parse_translate.cc.o.d"
  "perf_parse_translate"
  "perf_parse_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_parse_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
