# Empty dependencies file for screen7_equivalence_classes.
# This may be replaced when dependencies are built.
