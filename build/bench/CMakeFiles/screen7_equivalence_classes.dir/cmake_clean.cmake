file(REMOVE_RECURSE
  "CMakeFiles/screen7_equivalence_classes.dir/screen7_equivalence_classes.cc.o"
  "CMakeFiles/screen7_equivalence_classes.dir/screen7_equivalence_classes.cc.o.d"
  "screen7_equivalence_classes"
  "screen7_equivalence_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screen7_equivalence_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
