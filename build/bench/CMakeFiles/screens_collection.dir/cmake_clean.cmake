file(REMOVE_RECURSE
  "CMakeFiles/screens_collection.dir/screens_collection.cc.o"
  "CMakeFiles/screens_collection.dir/screens_collection.cc.o.d"
  "screens_collection"
  "screens_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screens_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
