# Empty dependencies file for screens_collection.
# This may be replaced when dependencies are built.
