# Empty compiler generated dependencies file for perf_integration.
# This may be replaced when dependencies are built.
