file(REMOVE_RECURSE
  "CMakeFiles/perf_integration.dir/perf_integration.cc.o"
  "CMakeFiles/perf_integration.dir/perf_integration.cc.o.d"
  "perf_integration"
  "perf_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
