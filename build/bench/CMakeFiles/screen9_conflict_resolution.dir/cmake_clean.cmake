file(REMOVE_RECURSE
  "CMakeFiles/screen9_conflict_resolution.dir/screen9_conflict_resolution.cc.o"
  "CMakeFiles/screen9_conflict_resolution.dir/screen9_conflict_resolution.cc.o.d"
  "screen9_conflict_resolution"
  "screen9_conflict_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screen9_conflict_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
