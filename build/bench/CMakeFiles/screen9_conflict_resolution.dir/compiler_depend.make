# Empty compiler generated dependencies file for screen9_conflict_resolution.
# This may be replaced when dependencies are built.
