# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for screen9_conflict_resolution.
