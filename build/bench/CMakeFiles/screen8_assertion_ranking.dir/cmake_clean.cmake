file(REMOVE_RECURSE
  "CMakeFiles/screen8_assertion_ranking.dir/screen8_assertion_ranking.cc.o"
  "CMakeFiles/screen8_assertion_ranking.dir/screen8_assertion_ranking.cc.o.d"
  "screen8_assertion_ranking"
  "screen8_assertion_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screen8_assertion_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
