# Empty dependencies file for screen8_assertion_ranking.
# This may be replaced when dependencies are built.
