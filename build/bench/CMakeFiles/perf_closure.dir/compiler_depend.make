# Empty compiler generated dependencies file for perf_closure.
# This may be replaced when dependencies are built.
