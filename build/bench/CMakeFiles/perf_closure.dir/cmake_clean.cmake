file(REMOVE_RECURSE
  "CMakeFiles/perf_closure.dir/perf_closure.cc.o"
  "CMakeFiles/perf_closure.dir/perf_closure.cc.o.d"
  "perf_closure"
  "perf_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
