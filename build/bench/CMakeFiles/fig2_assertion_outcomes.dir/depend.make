# Empty dependencies file for fig2_assertion_outcomes.
# This may be replaced when dependencies are built.
