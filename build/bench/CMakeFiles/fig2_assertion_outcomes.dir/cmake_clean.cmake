file(REMOVE_RECURSE
  "CMakeFiles/fig2_assertion_outcomes.dir/fig2_assertion_outcomes.cc.o"
  "CMakeFiles/fig2_assertion_outcomes.dir/fig2_assertion_outcomes.cc.o.d"
  "fig2_assertion_outcomes"
  "fig2_assertion_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_assertion_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
