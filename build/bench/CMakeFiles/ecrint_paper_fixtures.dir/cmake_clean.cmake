file(REMOVE_RECURSE
  "CMakeFiles/ecrint_paper_fixtures.dir/paper_fixtures.cc.o"
  "CMakeFiles/ecrint_paper_fixtures.dir/paper_fixtures.cc.o.d"
  "libecrint_paper_fixtures.a"
  "libecrint_paper_fixtures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_paper_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
