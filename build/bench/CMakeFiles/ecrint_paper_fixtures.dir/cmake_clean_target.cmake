file(REMOVE_RECURSE
  "libecrint_paper_fixtures.a"
)
