# Empty compiler generated dependencies file for ecrint_paper_fixtures.
# This may be replaced when dependencies are built.
