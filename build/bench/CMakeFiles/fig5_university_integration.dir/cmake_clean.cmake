file(REMOVE_RECURSE
  "CMakeFiles/fig5_university_integration.dir/fig5_university_integration.cc.o"
  "CMakeFiles/fig5_university_integration.dir/fig5_university_integration.cc.o.d"
  "fig5_university_integration"
  "fig5_university_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_university_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
