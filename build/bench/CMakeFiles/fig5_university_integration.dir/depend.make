# Empty dependencies file for fig5_university_integration.
# This may be replaced when dependencies are built.
