file(REMOVE_RECURSE
  "CMakeFiles/perf_data_plane.dir/perf_data_plane.cc.o"
  "CMakeFiles/perf_data_plane.dir/perf_data_plane.cc.o.d"
  "perf_data_plane"
  "perf_data_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_data_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
