# Empty compiler generated dependencies file for perf_data_plane.
# This may be replaced when dependencies are built.
