# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_json_smoke "/root/repo/bench/run_benches.sh" "--build-dir" "/root/repo/build" "--out" "/root/repo/build/BENCH_resemblance.smoke.json" "--smoke")
set_tests_properties(bench_json_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
