file(REMOVE_RECURSE
  "CMakeFiles/tui_test.dir/tui/screen_test.cc.o"
  "CMakeFiles/tui_test.dir/tui/screen_test.cc.o.d"
  "CMakeFiles/tui_test.dir/tui/session_test.cc.o"
  "CMakeFiles/tui_test.dir/tui/session_test.cc.o.d"
  "tui_test"
  "tui_test.pdb"
  "tui_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tui_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
