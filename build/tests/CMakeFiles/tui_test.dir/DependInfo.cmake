
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tui/screen_test.cc" "tests/CMakeFiles/tui_test.dir/tui/screen_test.cc.o" "gcc" "tests/CMakeFiles/tui_test.dir/tui/screen_test.cc.o.d"
  "/root/repo/tests/tui/session_test.cc" "tests/CMakeFiles/tui_test.dir/tui/session_test.cc.o" "gcc" "tests/CMakeFiles/tui_test.dir/tui/session_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/tui/CMakeFiles/ecrint_tui.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
