# Empty dependencies file for tui_test.
# This may be replaced when dependencies are built.
