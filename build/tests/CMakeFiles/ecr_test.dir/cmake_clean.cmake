file(REMOVE_RECURSE
  "CMakeFiles/ecr_test.dir/ecr/builder_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/builder_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/catalog_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/catalog_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/ddl_parser_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/ddl_parser_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/domain_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/domain_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/dot_export_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/dot_export_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/printer_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/printer_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/schema_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/schema_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/transform_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/transform_test.cc.o.d"
  "CMakeFiles/ecr_test.dir/ecr/validate_test.cc.o"
  "CMakeFiles/ecr_test.dir/ecr/validate_test.cc.o.d"
  "ecr_test"
  "ecr_test.pdb"
  "ecr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
