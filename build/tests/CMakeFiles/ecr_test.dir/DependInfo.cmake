
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecr/builder_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/builder_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/builder_test.cc.o.d"
  "/root/repo/tests/ecr/catalog_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/catalog_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/catalog_test.cc.o.d"
  "/root/repo/tests/ecr/ddl_parser_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/ddl_parser_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/ddl_parser_test.cc.o.d"
  "/root/repo/tests/ecr/domain_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/domain_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/domain_test.cc.o.d"
  "/root/repo/tests/ecr/dot_export_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/dot_export_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/dot_export_test.cc.o.d"
  "/root/repo/tests/ecr/printer_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/printer_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/printer_test.cc.o.d"
  "/root/repo/tests/ecr/schema_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/schema_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/schema_test.cc.o.d"
  "/root/repo/tests/ecr/transform_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/transform_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/transform_test.cc.o.d"
  "/root/repo/tests/ecr/validate_test.cc" "tests/CMakeFiles/ecr_test.dir/ecr/validate_test.cc.o" "gcc" "tests/CMakeFiles/ecr_test.dir/ecr/validate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
