# Empty dependencies file for ecr_test.
# This may be replaced when dependencies are built.
