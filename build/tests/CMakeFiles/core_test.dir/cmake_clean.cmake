file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/assertion_store_test.cc.o"
  "CMakeFiles/core_test.dir/core/assertion_store_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/assertion_test.cc.o"
  "CMakeFiles/core_test.dir/core/assertion_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/attribute_equivalence_test.cc.o"
  "CMakeFiles/core_test.dir/core/attribute_equivalence_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/cluster_test.cc.o"
  "CMakeFiles/core_test.dir/core/cluster_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/equivalence_perf_semantics_test.cc.o"
  "CMakeFiles/core_test.dir/core/equivalence_perf_semantics_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/equivalence_test.cc.o"
  "CMakeFiles/core_test.dir/core/equivalence_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/integrator_test.cc.o"
  "CMakeFiles/core_test.dir/core/integrator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/nary_test.cc.o"
  "CMakeFiles/core_test.dir/core/nary_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/project_io_test.cc.o"
  "CMakeFiles/core_test.dir/core/project_io_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/relationship_integration_test.cc.o"
  "CMakeFiles/core_test.dir/core/relationship_integration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/request_translation_test.cc.o"
  "CMakeFiles/core_test.dir/core/request_translation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/resemblance_test.cc.o"
  "CMakeFiles/core_test.dir/core/resemblance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/seeding_test.cc.o"
  "CMakeFiles/core_test.dir/core/seeding_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/set_relation_test.cc.o"
  "CMakeFiles/core_test.dir/core/set_relation_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
