
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/assertion_store_test.cc" "tests/CMakeFiles/core_test.dir/core/assertion_store_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/assertion_store_test.cc.o.d"
  "/root/repo/tests/core/assertion_test.cc" "tests/CMakeFiles/core_test.dir/core/assertion_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/assertion_test.cc.o.d"
  "/root/repo/tests/core/attribute_equivalence_test.cc" "tests/CMakeFiles/core_test.dir/core/attribute_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/attribute_equivalence_test.cc.o.d"
  "/root/repo/tests/core/cluster_test.cc" "tests/CMakeFiles/core_test.dir/core/cluster_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cluster_test.cc.o.d"
  "/root/repo/tests/core/equivalence_perf_semantics_test.cc" "tests/CMakeFiles/core_test.dir/core/equivalence_perf_semantics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/equivalence_perf_semantics_test.cc.o.d"
  "/root/repo/tests/core/equivalence_test.cc" "tests/CMakeFiles/core_test.dir/core/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/equivalence_test.cc.o.d"
  "/root/repo/tests/core/integrator_test.cc" "tests/CMakeFiles/core_test.dir/core/integrator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/integrator_test.cc.o.d"
  "/root/repo/tests/core/nary_test.cc" "tests/CMakeFiles/core_test.dir/core/nary_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/nary_test.cc.o.d"
  "/root/repo/tests/core/project_io_test.cc" "tests/CMakeFiles/core_test.dir/core/project_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/project_io_test.cc.o.d"
  "/root/repo/tests/core/relationship_integration_test.cc" "tests/CMakeFiles/core_test.dir/core/relationship_integration_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/relationship_integration_test.cc.o.d"
  "/root/repo/tests/core/request_translation_test.cc" "tests/CMakeFiles/core_test.dir/core/request_translation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/request_translation_test.cc.o.d"
  "/root/repo/tests/core/resemblance_test.cc" "tests/CMakeFiles/core_test.dir/core/resemblance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/resemblance_test.cc.o.d"
  "/root/repo/tests/core/seeding_test.cc" "tests/CMakeFiles/core_test.dir/core/seeding_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/seeding_test.cc.o.d"
  "/root/repo/tests/core/set_relation_test.cc" "tests/CMakeFiles/core_test.dir/core/set_relation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/set_relation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecrint_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
