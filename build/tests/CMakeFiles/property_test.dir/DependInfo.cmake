
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/closure_property_test.cc" "tests/CMakeFiles/property_test.dir/property/closure_property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property/closure_property_test.cc.o.d"
  "/root/repo/tests/property/data_roundtrip_property_test.cc" "tests/CMakeFiles/property_test.dir/property/data_roundtrip_property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property/data_roundtrip_property_test.cc.o.d"
  "/root/repo/tests/property/integrator_property_test.cc" "tests/CMakeFiles/property_test.dir/property/integrator_property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property/integrator_property_test.cc.o.d"
  "/root/repo/tests/property/roundtrip_property_test.cc" "tests/CMakeFiles/property_test.dir/property/roundtrip_property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property/roundtrip_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ecrint_data.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ecrint_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
