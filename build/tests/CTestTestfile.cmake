# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/ecr_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/tui_test[1]_include.cmake")
