# Empty compiler generated dependencies file for ecrint_tui.
# This may be replaced when dependencies are built.
