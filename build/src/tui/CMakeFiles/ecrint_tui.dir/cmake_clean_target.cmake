file(REMOVE_RECURSE
  "libecrint_tui.a"
)
