file(REMOVE_RECURSE
  "CMakeFiles/ecrint_tui.dir/screen.cc.o"
  "CMakeFiles/ecrint_tui.dir/screen.cc.o.d"
  "CMakeFiles/ecrint_tui.dir/session.cc.o"
  "CMakeFiles/ecrint_tui.dir/session.cc.o.d"
  "libecrint_tui.a"
  "libecrint_tui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_tui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
