file(REMOVE_RECURSE
  "CMakeFiles/ecrint_core.dir/assertion.cc.o"
  "CMakeFiles/ecrint_core.dir/assertion.cc.o.d"
  "CMakeFiles/ecrint_core.dir/assertion_store.cc.o"
  "CMakeFiles/ecrint_core.dir/assertion_store.cc.o.d"
  "CMakeFiles/ecrint_core.dir/attribute_equivalence.cc.o"
  "CMakeFiles/ecrint_core.dir/attribute_equivalence.cc.o.d"
  "CMakeFiles/ecrint_core.dir/cluster.cc.o"
  "CMakeFiles/ecrint_core.dir/cluster.cc.o.d"
  "CMakeFiles/ecrint_core.dir/equivalence.cc.o"
  "CMakeFiles/ecrint_core.dir/equivalence.cc.o.d"
  "CMakeFiles/ecrint_core.dir/integration_result.cc.o"
  "CMakeFiles/ecrint_core.dir/integration_result.cc.o.d"
  "CMakeFiles/ecrint_core.dir/integrator.cc.o"
  "CMakeFiles/ecrint_core.dir/integrator.cc.o.d"
  "CMakeFiles/ecrint_core.dir/nary.cc.o"
  "CMakeFiles/ecrint_core.dir/nary.cc.o.d"
  "CMakeFiles/ecrint_core.dir/project_io.cc.o"
  "CMakeFiles/ecrint_core.dir/project_io.cc.o.d"
  "CMakeFiles/ecrint_core.dir/request_translation.cc.o"
  "CMakeFiles/ecrint_core.dir/request_translation.cc.o.d"
  "CMakeFiles/ecrint_core.dir/resemblance.cc.o"
  "CMakeFiles/ecrint_core.dir/resemblance.cc.o.d"
  "CMakeFiles/ecrint_core.dir/seeding.cc.o"
  "CMakeFiles/ecrint_core.dir/seeding.cc.o.d"
  "CMakeFiles/ecrint_core.dir/set_relation.cc.o"
  "CMakeFiles/ecrint_core.dir/set_relation.cc.o.d"
  "libecrint_core.a"
  "libecrint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
