# Empty dependencies file for ecrint_core.
# This may be replaced when dependencies are built.
