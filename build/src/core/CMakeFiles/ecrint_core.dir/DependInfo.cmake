
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assertion.cc" "src/core/CMakeFiles/ecrint_core.dir/assertion.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/assertion.cc.o.d"
  "/root/repo/src/core/assertion_store.cc" "src/core/CMakeFiles/ecrint_core.dir/assertion_store.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/assertion_store.cc.o.d"
  "/root/repo/src/core/attribute_equivalence.cc" "src/core/CMakeFiles/ecrint_core.dir/attribute_equivalence.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/attribute_equivalence.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/ecrint_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/equivalence.cc" "src/core/CMakeFiles/ecrint_core.dir/equivalence.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/equivalence.cc.o.d"
  "/root/repo/src/core/integration_result.cc" "src/core/CMakeFiles/ecrint_core.dir/integration_result.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/integration_result.cc.o.d"
  "/root/repo/src/core/integrator.cc" "src/core/CMakeFiles/ecrint_core.dir/integrator.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/integrator.cc.o.d"
  "/root/repo/src/core/nary.cc" "src/core/CMakeFiles/ecrint_core.dir/nary.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/nary.cc.o.d"
  "/root/repo/src/core/project_io.cc" "src/core/CMakeFiles/ecrint_core.dir/project_io.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/project_io.cc.o.d"
  "/root/repo/src/core/request_translation.cc" "src/core/CMakeFiles/ecrint_core.dir/request_translation.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/request_translation.cc.o.d"
  "/root/repo/src/core/resemblance.cc" "src/core/CMakeFiles/ecrint_core.dir/resemblance.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/resemblance.cc.o.d"
  "/root/repo/src/core/seeding.cc" "src/core/CMakeFiles/ecrint_core.dir/seeding.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/seeding.cc.o.d"
  "/root/repo/src/core/set_relation.cc" "src/core/CMakeFiles/ecrint_core.dir/set_relation.cc.o" "gcc" "src/core/CMakeFiles/ecrint_core.dir/set_relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
