file(REMOVE_RECURSE
  "libecrint_core.a"
)
