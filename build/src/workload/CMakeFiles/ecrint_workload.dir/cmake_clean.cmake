file(REMOVE_RECURSE
  "CMakeFiles/ecrint_workload.dir/generator.cc.o"
  "CMakeFiles/ecrint_workload.dir/generator.cc.o.d"
  "CMakeFiles/ecrint_workload.dir/metrics.cc.o"
  "CMakeFiles/ecrint_workload.dir/metrics.cc.o.d"
  "libecrint_workload.a"
  "libecrint_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
