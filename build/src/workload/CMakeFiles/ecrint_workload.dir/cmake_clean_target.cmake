file(REMOVE_RECURSE
  "libecrint_workload.a"
)
