# Empty compiler generated dependencies file for ecrint_workload.
# This may be replaced when dependencies are built.
