file(REMOVE_RECURSE
  "CMakeFiles/ecrint_data.dir/federation.cc.o"
  "CMakeFiles/ecrint_data.dir/federation.cc.o.d"
  "CMakeFiles/ecrint_data.dir/instance_store.cc.o"
  "CMakeFiles/ecrint_data.dir/instance_store.cc.o.d"
  "CMakeFiles/ecrint_data.dir/materialize.cc.o"
  "CMakeFiles/ecrint_data.dir/materialize.cc.o.d"
  "CMakeFiles/ecrint_data.dir/value.cc.o"
  "CMakeFiles/ecrint_data.dir/value.cc.o.d"
  "libecrint_data.a"
  "libecrint_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
