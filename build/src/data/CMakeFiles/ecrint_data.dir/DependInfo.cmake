
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/federation.cc" "src/data/CMakeFiles/ecrint_data.dir/federation.cc.o" "gcc" "src/data/CMakeFiles/ecrint_data.dir/federation.cc.o.d"
  "/root/repo/src/data/instance_store.cc" "src/data/CMakeFiles/ecrint_data.dir/instance_store.cc.o" "gcc" "src/data/CMakeFiles/ecrint_data.dir/instance_store.cc.o.d"
  "/root/repo/src/data/materialize.cc" "src/data/CMakeFiles/ecrint_data.dir/materialize.cc.o" "gcc" "src/data/CMakeFiles/ecrint_data.dir/materialize.cc.o.d"
  "/root/repo/src/data/value.cc" "src/data/CMakeFiles/ecrint_data.dir/value.cc.o" "gcc" "src/data/CMakeFiles/ecrint_data.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
