file(REMOVE_RECURSE
  "libecrint_data.a"
)
