# Empty dependencies file for ecrint_data.
# This may be replaced when dependencies are built.
