file(REMOVE_RECURSE
  "CMakeFiles/ecrint_common.dir/status.cc.o"
  "CMakeFiles/ecrint_common.dir/status.cc.o.d"
  "CMakeFiles/ecrint_common.dir/strings.cc.o"
  "CMakeFiles/ecrint_common.dir/strings.cc.o.d"
  "CMakeFiles/ecrint_common.dir/thread_pool.cc.o"
  "CMakeFiles/ecrint_common.dir/thread_pool.cc.o.d"
  "libecrint_common.a"
  "libecrint_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
