# Empty compiler generated dependencies file for ecrint_common.
# This may be replaced when dependencies are built.
