file(REMOVE_RECURSE
  "libecrint_common.a"
)
