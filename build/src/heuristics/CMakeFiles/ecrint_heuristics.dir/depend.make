# Empty dependencies file for ecrint_heuristics.
# This may be replaced when dependencies are built.
