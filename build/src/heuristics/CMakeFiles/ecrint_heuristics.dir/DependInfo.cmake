
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/construct_match.cc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/construct_match.cc.o" "gcc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/construct_match.cc.o.d"
  "/root/repo/src/heuristics/schema_resemblance.cc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/schema_resemblance.cc.o" "gcc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/schema_resemblance.cc.o.d"
  "/root/repo/src/heuristics/string_sim.cc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/string_sim.cc.o" "gcc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/string_sim.cc.o.d"
  "/root/repo/src/heuristics/suggest.cc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/suggest.cc.o" "gcc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/suggest.cc.o.d"
  "/root/repo/src/heuristics/synonyms.cc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/synonyms.cc.o" "gcc" "src/heuristics/CMakeFiles/ecrint_heuristics.dir/synonyms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecrint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
