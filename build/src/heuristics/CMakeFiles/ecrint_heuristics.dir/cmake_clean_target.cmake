file(REMOVE_RECURSE
  "libecrint_heuristics.a"
)
