file(REMOVE_RECURSE
  "CMakeFiles/ecrint_heuristics.dir/construct_match.cc.o"
  "CMakeFiles/ecrint_heuristics.dir/construct_match.cc.o.d"
  "CMakeFiles/ecrint_heuristics.dir/schema_resemblance.cc.o"
  "CMakeFiles/ecrint_heuristics.dir/schema_resemblance.cc.o.d"
  "CMakeFiles/ecrint_heuristics.dir/string_sim.cc.o"
  "CMakeFiles/ecrint_heuristics.dir/string_sim.cc.o.d"
  "CMakeFiles/ecrint_heuristics.dir/suggest.cc.o"
  "CMakeFiles/ecrint_heuristics.dir/suggest.cc.o.d"
  "CMakeFiles/ecrint_heuristics.dir/synonyms.cc.o"
  "CMakeFiles/ecrint_heuristics.dir/synonyms.cc.o.d"
  "libecrint_heuristics.a"
  "libecrint_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
