# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("ecr")
subdirs("core")
subdirs("data")
subdirs("translate")
subdirs("heuristics")
subdirs("tui")
subdirs("workload")
