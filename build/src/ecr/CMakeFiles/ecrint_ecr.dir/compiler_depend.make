# Empty compiler generated dependencies file for ecrint_ecr.
# This may be replaced when dependencies are built.
