file(REMOVE_RECURSE
  "CMakeFiles/ecrint_ecr.dir/attribute.cc.o"
  "CMakeFiles/ecrint_ecr.dir/attribute.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/builder.cc.o"
  "CMakeFiles/ecrint_ecr.dir/builder.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/catalog.cc.o"
  "CMakeFiles/ecrint_ecr.dir/catalog.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/ddl_parser.cc.o"
  "CMakeFiles/ecrint_ecr.dir/ddl_parser.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/domain.cc.o"
  "CMakeFiles/ecrint_ecr.dir/domain.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/dot_export.cc.o"
  "CMakeFiles/ecrint_ecr.dir/dot_export.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/printer.cc.o"
  "CMakeFiles/ecrint_ecr.dir/printer.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/schema.cc.o"
  "CMakeFiles/ecrint_ecr.dir/schema.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/transform.cc.o"
  "CMakeFiles/ecrint_ecr.dir/transform.cc.o.d"
  "CMakeFiles/ecrint_ecr.dir/validate.cc.o"
  "CMakeFiles/ecrint_ecr.dir/validate.cc.o.d"
  "libecrint_ecr.a"
  "libecrint_ecr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_ecr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
