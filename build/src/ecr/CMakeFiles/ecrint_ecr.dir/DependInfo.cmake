
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecr/attribute.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/attribute.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/attribute.cc.o.d"
  "/root/repo/src/ecr/builder.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/builder.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/builder.cc.o.d"
  "/root/repo/src/ecr/catalog.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/catalog.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/catalog.cc.o.d"
  "/root/repo/src/ecr/ddl_parser.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/ddl_parser.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/ddl_parser.cc.o.d"
  "/root/repo/src/ecr/domain.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/domain.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/domain.cc.o.d"
  "/root/repo/src/ecr/dot_export.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/dot_export.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/dot_export.cc.o.d"
  "/root/repo/src/ecr/printer.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/printer.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/printer.cc.o.d"
  "/root/repo/src/ecr/schema.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/schema.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/schema.cc.o.d"
  "/root/repo/src/ecr/transform.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/transform.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/transform.cc.o.d"
  "/root/repo/src/ecr/validate.cc" "src/ecr/CMakeFiles/ecrint_ecr.dir/validate.cc.o" "gcc" "src/ecr/CMakeFiles/ecrint_ecr.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
