file(REMOVE_RECURSE
  "libecrint_ecr.a"
)
