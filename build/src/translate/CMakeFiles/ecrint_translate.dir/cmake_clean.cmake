file(REMOVE_RECURSE
  "CMakeFiles/ecrint_translate.dir/hier_to_ecr.cc.o"
  "CMakeFiles/ecrint_translate.dir/hier_to_ecr.cc.o.d"
  "CMakeFiles/ecrint_translate.dir/hierarchical.cc.o"
  "CMakeFiles/ecrint_translate.dir/hierarchical.cc.o.d"
  "CMakeFiles/ecrint_translate.dir/rel_to_ecr.cc.o"
  "CMakeFiles/ecrint_translate.dir/rel_to_ecr.cc.o.d"
  "CMakeFiles/ecrint_translate.dir/relational.cc.o"
  "CMakeFiles/ecrint_translate.dir/relational.cc.o.d"
  "libecrint_translate.a"
  "libecrint_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
