# Empty compiler generated dependencies file for ecrint_translate.
# This may be replaced when dependencies are built.
