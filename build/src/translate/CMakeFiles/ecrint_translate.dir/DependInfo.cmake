
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/hier_to_ecr.cc" "src/translate/CMakeFiles/ecrint_translate.dir/hier_to_ecr.cc.o" "gcc" "src/translate/CMakeFiles/ecrint_translate.dir/hier_to_ecr.cc.o.d"
  "/root/repo/src/translate/hierarchical.cc" "src/translate/CMakeFiles/ecrint_translate.dir/hierarchical.cc.o" "gcc" "src/translate/CMakeFiles/ecrint_translate.dir/hierarchical.cc.o.d"
  "/root/repo/src/translate/rel_to_ecr.cc" "src/translate/CMakeFiles/ecrint_translate.dir/rel_to_ecr.cc.o" "gcc" "src/translate/CMakeFiles/ecrint_translate.dir/rel_to_ecr.cc.o.d"
  "/root/repo/src/translate/relational.cc" "src/translate/CMakeFiles/ecrint_translate.dir/relational.cc.o" "gcc" "src/translate/CMakeFiles/ecrint_translate.dir/relational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ecr/CMakeFiles/ecrint_ecr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ecrint_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
