file(REMOVE_RECURSE
  "libecrint_translate.a"
)
