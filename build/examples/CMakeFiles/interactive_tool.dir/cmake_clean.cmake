file(REMOVE_RECURSE
  "CMakeFiles/interactive_tool.dir/interactive_tool.cpp.o"
  "CMakeFiles/interactive_tool.dir/interactive_tool.cpp.o.d"
  "interactive_tool"
  "interactive_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
