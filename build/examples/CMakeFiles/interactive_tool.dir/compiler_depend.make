# Empty compiler generated dependencies file for interactive_tool.
# This may be replaced when dependencies are built.
