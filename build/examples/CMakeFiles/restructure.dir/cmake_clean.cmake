file(REMOVE_RECURSE
  "CMakeFiles/restructure.dir/restructure.cpp.o"
  "CMakeFiles/restructure.dir/restructure.cpp.o.d"
  "restructure"
  "restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
