file(REMOVE_RECURSE
  "CMakeFiles/ecrint_cli.dir/ecrint_cli.cpp.o"
  "CMakeFiles/ecrint_cli.dir/ecrint_cli.cpp.o.d"
  "ecrint"
  "ecrint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecrint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
