# Empty compiler generated dependencies file for ecrint_cli.
# This may be replaced when dependencies are built.
