#!/usr/bin/env bash
# Runs the resemblance/closure perf sweeps with google-benchmark's JSON
# reporter and merges them into BENCH_resemblance.json at the repo root.
#
# Usage:
#   bench/run_benches.sh [--build-dir DIR] [--out FILE] [--smoke]
#
# --smoke caps every benchmark at --benchmark_min_time=0.01 so the script
# doubles as a ctest-safe liveness check (the JSON is still written, just
# with noisy numbers). Without it, benchmark's default min time applies and
# the merged JSON is suitable for recording in the repo. --out redirects the
# merged JSON away from the repo-root BENCH_resemblance.json — the ctest
# smoke uses it so a quick run never clobbers recorded numbers.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_file="${repo_root}/BENCH_resemblance.json"
min_time=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      build_dir="$2"
      shift 2
      ;;
    --out)
      out_file="$2"
      shift 2
      ;;
    --smoke)
      min_time="--benchmark_min_time=0.01"
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

binaries=(perf_resemblance perf_closure)
out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT

for bin in "${binaries[@]}"; do
  path="${build_dir}/bench/${bin}"
  if [[ ! -x "${path}" ]]; then
    echo "missing ${path}; build first: cmake --build ${build_dir} -j" >&2
    exit 1
  fi
  echo "== ${bin}" >&2
  # shellcheck disable=SC2086  # min_time is intentionally word-split
  "${path}" --benchmark_format=json ${min_time} \
    > "${out_dir}/${bin}.json"
done

# Merge: keep one context block (they describe the same host), concatenate
# the benchmark arrays in binary order, and attach the recorded seed
# baseline so the speedup base travels with the numbers.
python3 - "${out_file}" "${repo_root}/bench/baseline_seed.json" \
  "${out_dir}"/*.json <<'PY'
import json
import os
import sys

out_path, baseline_path = sys.argv[1], sys.argv[2]
merged = {"context": None, "seed_baseline": None, "benchmarks": []}
if os.path.exists(baseline_path):
    with open(baseline_path) as f:
        merged["seed_baseline"] = json.load(f)
for path in sys.argv[3:]:
    with open(path) as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    merged["benchmarks"].extend(report.get("benchmarks", []))

baseline = {
    b["name"]: b["real_time"]
    for b in (merged["seed_baseline"] or {}).get("benchmarks", [])
}
speedups = {}
for b in merged["benchmarks"]:
    base = baseline.get(b["name"])
    if base and b.get("real_time"):
        speedups[b["name"]] = round(base / b["real_time"], 2)
if speedups:
    merged["speedup_vs_seed"] = speedups
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x vs seed")
PY
