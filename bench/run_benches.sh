#!/usr/bin/env bash
# Runs the perf sweeps with google-benchmark's JSON reporter and merges them
# into the recorded JSON files at the repo root:
#   BENCH_resemblance.json  <- perf_resemblance + perf_closure
#   BENCH_engine.json       <- perf_engine, plus the engine_trace phase
#                              breakdown and the incremental-vs-full speedup
#
#   BENCH_service.json      <- perf_service closed-loop loadgen (concurrent
#                              throughput + the service MetricsRegistry dump)
#
# Usage:
#   bench/run_benches.sh [--build-dir DIR] [--out FILE] [--engine-out FILE]
#                        [--service] [--service-out FILE] [--smoke]
#                        [--allow-debug]
#
# --service additionally runs the service-plane loadgen (skipped by default:
# it is a multi-threaded soak, not a google-benchmark sweep).
#
# Recorded numbers must come from an optimized build: unless --smoke or
# --allow-debug is given, the script refuses a build dir whose
# CMAKE_BUILD_TYPE is not Release. The detected build type is stamped into
# the merged JSON context either way, so a debug provenance can never pass
# silently again.
#
# --smoke caps every benchmark at --benchmark_min_time=0.01 so the script
# doubles as a ctest-safe liveness check (the JSON is still written, just
# with noisy numbers). Without it, benchmark's default min time applies and
# the merged JSON is suitable for recording in the repo. --out/--engine-out
# redirect the merged JSON away from the repo-root files — the ctest smoke
# uses them so a quick run never clobbers recorded numbers.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_file="${repo_root}/BENCH_resemblance.json"
engine_out_file="${repo_root}/BENCH_engine.json"
service_out_file="${repo_root}/BENCH_service.json"
run_service=0
min_time=""
service_args=()
allow_debug=0
smoke=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      build_dir="$2"
      shift 2
      ;;
    --out)
      out_file="$2"
      shift 2
      ;;
    --engine-out)
      engine_out_file="$2"
      shift 2
      ;;
    --service)
      run_service=1
      shift
      ;;
    --service-out)
      service_out_file="$2"
      shift 2
      ;;
    --smoke)
      min_time="--benchmark_min_time=0.01"
      service_args=(--smoke)
      smoke=1
      shift
      ;;
    --allow-debug)
      allow_debug=1
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

# Provenance gate: numbers destined for the repo root must come from an
# optimized build. The ctest smoke runs against whatever build tree hosts
# it (often Debug/ASan), so --smoke bypasses the refusal but the stamp in
# the JSON still records what was measured.
build_type="unknown"
if [[ -f "${build_dir}/CMakeCache.txt" ]]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "${build_dir}/CMakeCache.txt")"
  build_type="${build_type:-unspecified}"
fi
if [[ "${build_type}" != "Release" && "${smoke}" -eq 0 \
      && "${allow_debug}" -eq 0 ]]; then
  echo "refusing to record benchmarks from a '${build_type}' build" >&2
  echo "(${build_dir}); configure with -DCMAKE_BUILD_TYPE=Release or pass" >&2
  echo "--allow-debug / --smoke for throwaway numbers" >&2
  exit 3
fi

binaries=(perf_resemblance perf_closure)
engine_binaries=(perf_engine)
out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT

run_bench() {
  local bin="$1" dest="$2"
  local path="${build_dir}/bench/${bin}"
  if [[ ! -x "${path}" ]]; then
    echo "missing ${path}; build first: cmake --build ${build_dir} -j" >&2
    exit 1
  fi
  echo "== ${bin}" >&2
  # shellcheck disable=SC2086  # min_time is intentionally word-split
  "${path}" --benchmark_format=json ${min_time} > "${dest}"
}

for bin in "${binaries[@]}"; do
  run_bench "${bin}" "${out_dir}/${bin}.json"
done
mkdir -p "${out_dir}/engine"
for bin in "${engine_binaries[@]}"; do
  run_bench "${bin}" "${out_dir}/engine/${bin}.json"
done

# The Engine's phase breakdown travels with the perf numbers.
trace_bin="${build_dir}/bench/engine_trace"
mkdir -p "${out_dir}/trace"
if [[ -x "${trace_bin}" ]]; then
  echo "== engine_trace" >&2
  "${trace_bin}" > "${out_dir}/trace/engine_trace.json"
else
  echo "missing ${trace_bin}; build first: cmake --build ${build_dir} -j" >&2
  exit 1
fi

# Merge: keep one context block (they describe the same host), concatenate
# the benchmark arrays in binary order, and attach the recorded seed
# baseline so the speedup base travels with the numbers.
merge() {
  python3 - "$@" <<'PY'
import json
import os
import sys

out_path, baseline_path, trace_path = sys.argv[1], sys.argv[2], sys.argv[3]
merged = {"context": None, "benchmarks": []}
build_type = os.environ.get("ECRINT_BUILD_TYPE", "unknown")
if baseline_path and os.path.exists(baseline_path):
    with open(baseline_path) as f:
        merged["seed_baseline"] = json.load(f)
if trace_path and os.path.exists(trace_path):
    with open(trace_path) as f:
        merged["phase_trace"] = json.load(f)
for path in sys.argv[4:]:
    with open(path) as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    merged["benchmarks"].extend(report.get("benchmarks", []))
if merged["context"] is None:
    merged["context"] = {}
# Provenance stamp: the CMake build type of the tree that produced these
# numbers (checked against "Release" by the gate above and by tools/ci.sh).
merged["context"]["ecrint_build_type"] = build_type
merged["context"]["ecrint_release_build"] = build_type == "Release"

# Asymptotic fits from ->Complexity() sweeps (e.g. the closure worklist
# kernel): surfaced top-level so regressions back toward N^3 are visible in
# a diff without re-deriving the fit from raw timings.
complexity_fits = {}
for b in merged["benchmarks"]:
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") == "BigO":
        family = b["name"].split("_BigO")[0].split("/")[0]
        complexity_fits[family] = b.get("big_o", "").strip()
if complexity_fits:
    merged["complexity_fits"] = complexity_fits

baseline = {
    b["name"]: b["real_time"]
    for b in merged.get("seed_baseline", {}).get("benchmarks", [])
}
speedups = {}
for b in merged["benchmarks"]:
    base = baseline.get(b["name"])
    if base and b.get("real_time"):
        speedups[b["name"]] = round(base / b["real_time"], 2)
if speedups:
    merged["speedup_vs_seed"] = speedups

# Incremental-edit vs full-rebuild at matching workload sizes: the headline
# number of the Engine's dirty tracking.
times = {b["name"]: b["real_time"] for b in merged["benchmarks"]
         if b.get("real_time")}
incremental = {}
for name, full_time in times.items():
    prefix = "BM_EngineFullRebuild/"
    if not name.startswith(prefix):
        continue
    arg = name[len(prefix):]
    inc_time = times.get(f"BM_EngineIncrementalEdit/{arg}")
    if inc_time:
        incremental[arg] = round(full_time / inc_time, 2)
if incremental:
    merged["incremental_speedup"] = incremental

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x vs seed")
for arg, s in sorted(incremental.items(), key=lambda kv: int(kv[0])):
    print(f"  incremental edit @{arg} classes: {s}x vs full rebuild")
PY
}

export ECRINT_BUILD_TYPE="${build_type}"
merge "${out_file}" "${repo_root}/bench/baseline_seed.json" "" \
  "${out_dir}"/*.json
merge "${engine_out_file}" "" "${out_dir}/trace/engine_trace.json" \
  "${out_dir}/engine"/*.json

# The service loadgen emits its own JSON (per-phase throughput, error
# tallies, the MetricsRegistry dump with per-verb p50/p95/p99); it exits
# nonzero on any CONFLICT or TIMEOUT, so the stage doubles as a soak check.
if [[ "${run_service}" -eq 1 ]]; then
  service_bin="${build_dir}/bench/perf_service"
  if [[ ! -x "${service_bin}" ]]; then
    echo "missing ${service_bin}; build first: cmake --build ${build_dir} -j" >&2
    exit 1
  fi
  echo "== perf_service" >&2
  "${service_bin}" "${service_args[@]}" > "${service_out_file}"
  echo "wrote ${service_out_file}"
fi
