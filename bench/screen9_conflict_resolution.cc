// Regenerates Screen 9 (Assertion Conflict Resolution Screen): the sc3/sc4
// scenario where sc3.Instructor ⊆ sc4.Grad_student and sc4.Grad_student ⊆
// sc4.Student derive sc3.Instructor ⊆ sc4.Student, and a new "disjoint"
// assertion for that pair is rejected with the derivation displayed.

#include <iostream>
#include <string>

#include "core/assertion_store.h"

using namespace ecrint;        // NOLINT: harness brevity
using namespace ecrint::core;  // NOLINT: harness brevity

int main() {
  std::cout << "Screen 9: assertion conflict resolution\n"
            << "=======================================\n\n";

  const ObjectRef instructor{"sc3", "Instructor"};
  const ObjectRef grad{"sc4", "Grad_student"};
  const ObjectRef student{"sc4", "Student"};

  AssertionStore store;
  (void)store.Assert(instructor, grad, AssertionType::kContainedIn).status();
  (void)store.Assert(grad, student, AssertionType::kContainedIn).status();

  std::cout << "asserted (lines 3-4 of the screen):\n";
  for (const Assertion& a : store.user_assertions()) {
    std::cout << "  " << a.ToString() << "\n";
  }

  std::cout << "\nderived (line 1 of the screen):\n";
  std::vector<AssertionStore::DerivedFact> facts = store.DerivedFacts();
  for (const AssertionStore::DerivedFact& fact : facts) {
    std::cout << "  " << fact.first.ToString() << " "
              << SetRelationName(fact.relation) << " "
              << fact.second.ToString() << "   <derived>\n";
  }

  std::cout << "\nnew assertion (line 2): sc3.Instructor and sc4.Student "
               "are disjoint & non-integratable\n\n";
  Result<ConflictReport> result = store.Assert(
      instructor, student, AssertionType::kDisjointNonintegrable);

  int failures = 0;
  auto expect = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "OK       " : "MISMATCH ") << what << "\n";
    if (!ok) ++failures;
  };

  expect(facts.size() == 1 && facts[0].first == instructor &&
             facts[0].second == student &&
             facts[0].relation == SetRelation::kSubset,
         "the tool derived Instructor 'contained in' Student");
  expect(!result.ok(), "the conflicting assertion is rejected");
  if (!result.ok()) {
    std::cout << "\nconflict report shown to the DDA:\n"
              << result.status().message() << "\n\n";
    expect(result.status().code() == StatusCode::kConflict,
           "rejection carries the CONFLICT code");
    expect(result.status().message().find("derived") != std::string::npos,
           "the report flags the constraint as derived");
    expect(result.status().message().find(
               "sc3.Instructor contained in sc4.Grad_student") !=
               std::string::npos,
           "supporting assertion line 3 listed");
    expect(result.status().message().find(
               "sc4.Grad_student contained in sc4.Student") !=
               std::string::npos,
           "supporting assertion line 4 listed");
  }
  // The DDA repairs line 3 ("possibly to a '0' or '5'") and retries. With
  // the full set-relation algebra only '0' truly resolves it: with '5'
  // (overlap) Instructor still shares members with Grad_student ⊆ Student,
  // so disjointness from Student stays impossible — a contradiction the
  // paper's weaker rule-list closure would have let through.
  AssertionStore repaired;
  (void)repaired
      .Assert(instructor, grad, AssertionType::kDisjointNonintegrable)
      .status();
  (void)repaired.Assert(grad, student, AssertionType::kContainedIn).status();
  expect(repaired
             .Assert(instructor, student,
                     AssertionType::kDisjointNonintegrable)
             .ok(),
         "after the repair the DDA's disjointness is accepted");

  std::cout << (failures == 0 ? "\nALL CHECKS MATCH SCREEN 9\n"
                              : "\nMISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
