// Scalability of phase 4: full integration (lattice construction, attribute
// placement, relationship merging, mapping generation) as the component
// schemas grow.

#include <benchmark/benchmark.h>

#include "core/integrator.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

struct Prepared {
  workload::Workload workload;
  core::EquivalenceMap equivalence;
  core::AssertionStore assertions;
};

Prepared Prepare(int concepts, int schemas) {
  workload::GeneratorConfig config;
  config.num_concepts = concepts;
  config.num_schemas = schemas;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  core::EquivalenceMap equivalence = bench::TruthEquivalences(*w);
  core::AssertionStore assertions = bench::TruthAssertions(*w);
  return {*std::move(w), std::move(equivalence), std::move(assertions)};
}

void BM_IntegrateTwoSchemas(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    Result<core::IntegrationResult> result = core::Integrate(
        p.workload.catalog, p.workload.schema_names, p.equivalence,
        p.assertions);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntegrateTwoSchemas)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Complexity();

void BM_IntegratePaperExample(benchmark::State& state) {
  ecr::Catalog catalog = bench::UniversityCatalog();
  core::EquivalenceMap equivalence =
      bench::UniversityEquivalences(catalog, false);
  core::AssertionStore assertions = bench::UniversityAssertions();
  for (auto _ : state) {
    Result<core::IntegrationResult> result = core::Integrate(
        catalog, {"sc1", "sc2"}, equivalence, assertions);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IntegratePaperExample);

// Ablation: seeding within-schema structure into the closure costs extra
// asserts; how much?
void BM_IntegrateNoSeeding(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)), 2);
  core::IntegrationOptions options;
  options.seed_entity_disjointness = false;
  options.seed_category_containment = false;
  for (auto _ : state) {
    Result<core::IntegrationResult> result = core::Integrate(
        p.workload.catalog, p.workload.schema_names, p.equivalence,
        p.assertions, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IntegrateNoSeeding)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
