// Regenerates Screen 8 (Assertion Collection For Object Pairs): the ranked
// object pairs and the exact attribute ratios the paper prints (0.5000,
// 0.5000, 0.3333) given the DDA's equivalence classes.

#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/resemblance.h"
#include "paper_fixtures.h"

using namespace ecrint;        // NOLINT: harness brevity
using namespace ecrint::core;  // NOLINT: harness brevity

int main() {
  std::cout << "Screen 8: assertion collection for object pairs\n"
            << "===============================================\n\n";

  ecr::Catalog catalog = bench::UniversityCatalog();
  // Screen 8's ratios imply Faculty.Name is in the Name class.
  EquivalenceMap equivalence =
      bench::UniversityEquivalences(catalog, /*include_faculty_name=*/true);

  Result<std::vector<ObjectPair>> ranked = RankObjectPairs(
      catalog, equivalence, "sc1", "sc2", StructureKind::kObjectClass);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }

  std::cout << "Schema_Name1.Obj_Class1   Schema_Name2.Obj_Class2   "
               "ATTRIBUTE RATIO\n";
  std::cout << "----------------------------------------------------"
               "---------------\n";
  for (const ObjectPair& pair : *ranked) {
    std::string c1 = pair.first.ToString();
    std::string c2 = pair.second.ToString();
    c1.resize(26, ' ');
    c2.resize(26, ' ');
    std::cout << c1 << c2 << FormatFixed(pair.attribute_ratio, 4) << "\n";
  }

  std::cout << "\nPAPER rows:\n"
            << "  sc1.Department  sc2.Department    0.5000  =>1\n"
            << "  sc1.Student     sc2.Grad_student  0.5000  =>3\n"
            << "  sc1.Student     sc2.Faculty       0.3333  =>4\n\n";

  int failures = 0;
  auto expect = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "OK       " : "MISMATCH ") << what << "\n";
    if (!ok) ++failures;
  };
  expect(ranked->size() == 3, "exactly the paper's three candidate pairs");
  if (ranked->size() == 3) {
    expect((*ranked)[0].first.ToString() == "sc1.Department" &&
               (*ranked)[0].second.ToString() == "sc2.Department" &&
               FormatFixed((*ranked)[0].attribute_ratio, 4) == "0.5000",
           "row 1: Department/Department at 0.5000");
    expect((*ranked)[1].first.ToString() == "sc1.Student" &&
               (*ranked)[1].second.ToString() == "sc2.Grad_student" &&
               FormatFixed((*ranked)[1].attribute_ratio, 4) == "0.5000",
           "row 2: Student/Grad_student at 0.5000");
    expect((*ranked)[2].first.ToString() == "sc1.Student" &&
               (*ranked)[2].second.ToString() == "sc2.Faculty" &&
               FormatFixed((*ranked)[2].attribute_ratio, 4) == "0.3333",
           "row 3: Student/Faculty at 0.3333");
  }
  std::cout << (failures == 0 ? "\nALL ROWS MATCH SCREEN 8\n"
                              : "\nMISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
