// perf_service — closed-loop load generator for the integration service
// plane. Unlike the google-benchmark sweeps, this harness measures the
// service's *concurrent* behaviour: N client threads drive an in-process
// RequestRouter (same dispatch path as the TCP front end, minus the socket)
// against one shared project, and the emitted JSON records
//
//   * read throughput at 1 thread vs N threads (snapshot reads are
//     lock-free, so the scaling factor is the headline number),
//   * a mixed read/write phase whose writes serialize on the project lock
//     while readers keep running on the previous snapshot,
//   * client-observed error tallies per code (the acceptance bar: zero
//     CONFLICT and zero TIMEOUT at the default queue depth),
//   * journal write latency (p50/p95 per mutation) without a journal vs
//     --fsync batch vs --fsync always, on the real filesystem,
//   * replica read scaling: a replication leader is seeded with the same
//     workload, 1/2/4 follower services bootstrap from its checkpoint +
//     WAL stream (pumped through an in-memory sink), and the aggregate
//     snapshot-read throughput across the replicas is recorded, and
//   * the service's own MetricsRegistry dump — per-verb latency histograms
//     with p50/p95/p99, snapshot publish counts, queue-depth high-water,
//   * connection scaling over real sockets: a forked child serves the
//     epoll network plane, the parent parks 10k pinged-once idle
//     connections and shows that active mixed traffic (and the child's
//     RSS) doesn't pay for them — against a thread-per-connection RSS
//     baseline (see "connection scaling" below).
//
//   perf_service [--threads N] [--ops N] [--queue-depth N]
//                [--idle-conns N] [--smoke]
//
// All writes are idempotent replays of the workload's ground truth
// (re-declaring an equivalence or re-asserting a true relation is a no-op
// for the closure), so any interleaving stays conflict-free — making
// "errors.CONFLICT == 0" a real invariant rather than luck. Exit status is
// nonzero when a CONFLICT or TIMEOUT is observed. bench/run_benches.sh
// --service captures stdout into BENCH_service.json.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "core/assertion.h"
#include "ecr/printer.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/router.h"
#include "service/service.h"
#include "workload/generator.h"

namespace {

using namespace ecrint;  // NOLINT: harness brevity

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One client: its own RouterSession (and service session) bound to the
// shared project, issuing one request at a time like a blocking connection.
struct Client {
  service::RouterSession session;
  service::RequestRouter* router = nullptr;
  std::map<std::string, int64_t> errors_by_code;
  int64_t ops = 0;
  // Requests queued for the next batch frame (binary batch mode).
  std::vector<service::BinaryRequest> pending;

  // Sends one line, parses the framed response, tallies errors. Returns
  // true when the response was ok.
  bool Send(const std::string& line) {
    std::string wire = router->HandleLine(line, &session);
    Result<service::ServiceResponse> response =
        service::ParseResponse(wire);
    ++ops;
    if (!response.ok()) {
      ++errors_by_code["UNPARSEABLE"];
      return false;
    }
    if (response->error.has_value()) {
      ++errors_by_code[service::ServiceErrorCodeName(
          response->error->code)];
      return false;
    }
    return true;
  }

  // Sends one complete binary frame through the router (the in-process
  // equivalent of writing it to the socket), decodes the response frame,
  // tallies one op and any error per response item.
  bool SendEncodedFrame(const std::string& frame, int64_t items) {
    std::string_view body;
    size_t consumed = 0;
    std::string frame_error;
    if (service::ExtractFrame(frame, &body, &consumed, &frame_error) !=
        service::FrameStatus::kComplete) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    std::string reply = router->HandleFrame(body, &session);
    if (service::ExtractFrame(reply, &body, &consumed, &frame_error) !=
        service::FrameStatus::kComplete) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    Result<service::DecodedResponse> decoded =
        service::DecodeBinaryResponse(body);
    if (!decoded.ok()) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    bool all_ok = true;
    for (const service::ServiceResponse& response : decoded->items) {
      ++ops;
      if (response.error.has_value()) {
        ++errors_by_code[service::ServiceErrorCodeName(
            response.error->code)];
        all_ok = false;
      }
    }
    return all_ok;
  }

  bool SendBinary(const service::BinaryRequest& request) {
    return SendEncodedFrame(service::EncodeBinaryRequest(request), 1);
  }

  // Flushes the queued requests as one batch frame.
  bool Flush() {
    if (pending.empty()) return true;
    std::string frame = service::EncodeBinaryBatch(pending);
    int64_t items = static_cast<int64_t>(pending.size());
    pending.clear();
    return SendEncodedFrame(frame, items);
  }
};

struct Phase {
  std::string name;
  int threads = 0;
  int64_t ops = 0;
  double elapsed_ms = 0;
  double ops_per_sec = 0;
  std::map<std::string, int64_t> errors_by_code;
};

// Drives `threads` clients through `ops_per_thread` calls of `op(rng, i)`.
// `protocol` 2 negotiates the binary framing before the clock starts.
Phase RunPhase(const std::string& name, service::RequestRouter* router,
               const std::string& project, int threads,
               int64_t ops_per_thread,
               const std::function<void(Client&, std::mt19937&, int64_t)>&
                   op,
               int protocol = service::kProtocolTextVersion) {
  std::vector<Client> clients(threads);
  for (int t = 0; t < threads; ++t) {
    clients[t].router = router;
    clients[t].Send("open " + project);
    if (protocol == service::kProtocolBinaryVersion) {
      clients[t].Send("proto 2");
    }
  }
  std::vector<std::thread> workers;
  int64_t start = NowNs();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(1000 + static_cast<uint32_t>(t));
      for (int64_t i = 0; i < ops_per_thread; ++i) op(clients[t], rng, i);
    });
  }
  for (std::thread& worker : workers) worker.join();
  int64_t elapsed = NowNs() - start;
  for (int t = 0; t < threads; ++t) clients[t].Send("close");

  Phase phase;
  phase.name = name;
  phase.threads = threads;
  phase.ops = threads * ops_per_thread;
  phase.elapsed_ms = static_cast<double>(elapsed) / 1e6;
  phase.ops_per_sec =
      elapsed > 0 ? static_cast<double>(phase.ops) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0;
  for (const Client& client : clients) {
    // Setup sends (open/close) count toward errors but not the timed ops.
    for (const auto& [code, count] : client.errors_by_code) {
      phase.errors_by_code[code] += count;
    }
  }
  return phase;
}

std::string JsonErrors(const std::map<std::string, int64_t>& errors) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [code, count] : errors) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << code << "\": " << count;
  }
  out << "}";
  return out.str();
}

std::string JsonPhase(const Phase& phase) {
  std::ostringstream out;
  out << "{\"threads\": " << phase.threads << ", \"ops\": " << phase.ops
      << ", \"elapsed_ms\": " << phase.elapsed_ms
      << ", \"ops_per_sec\": " << phase.ops_per_sec
      << ", \"errors\": " << JsonErrors(phase.errors_by_code) << "}";
  return out.str();
}

// --- shared workload ops ---------------------------------------------------
// The seed and the mixed-traffic generator are shared between the
// in-process phases and the socket-level connection-scaling phase, which
// runs them in a forked server child and drives it over TCP.

bool SeedProject(service::RequestRouter* target,
                 const workload::Workload& workload) {
  Client setup;
  setup.router = target;
  bool seeded = setup.Send("open bench");
  for (const std::string& name : workload.schema_names) {
    const ecr::Schema& schema = **workload.catalog.GetSchema(name);
    seeded &=
        setup.Send("define " + service::EscapeField(ecr::ToDdl(schema)));
  }
  for (const workload::TrueAttributeMatch& match :
       workload.attribute_matches) {
    seeded &= setup.Send("equiv " + match.first.ToString() + " " +
                         match.second.ToString());
  }
  for (const workload::TrueObjectRelation& relation :
       workload.object_relations) {
    seeded &= setup.Send(
        "assert " + relation.first.ToString() + " " +
        std::to_string(core::AssertionTypeCode(relation.assertion)) + " " +
        relation.second.ToString());
  }
  seeded &= setup.Send("integrate");
  if (!seeded) {
    std::cerr << "project seeding failed: "
              << JsonErrors(setup.errors_by_code) << "\n";
  }
  return seeded;
}

service::BinaryRequest MakeReadRequest(const workload::Workload& workload,
                                       std::mt19937& rng) {
  const std::vector<std::string>& names = workload.schema_names;
  size_t a = rng() % names.size();
  size_t b = (a + 1 + rng() % (names.size() - 1)) % names.size();
  service::BinaryRequest request;
  switch (rng() % 4) {
    case 0:
    case 1:
      request.verb = service::WireVerb::kRank;
      request.args = {names[a], names[b], "zero"};
      break;
    case 2:
      request.verb = service::WireVerb::kSuggest;
      request.args = {names[a], names[b]};
      break;
    default:
      request.verb = service::WireVerb::kOutline;
      break;
  }
  return request;
}

service::BinaryRequest MakeMixedRequest(const workload::Workload& workload,
                                        std::mt19937& rng) {
  // ~80/20 read/write; writes replay ground truth, so they commute.
  if (rng() % 5 != 0) return MakeReadRequest(workload, rng);
  service::BinaryRequest request;
  switch (rng() % 3) {
    case 0: {
      const workload::TrueAttributeMatch& match =
          workload
              .attribute_matches[rng() % workload.attribute_matches.size()];
      request.verb = service::WireVerb::kEquiv;
      request.args = {match.first.ToString(), match.second.ToString()};
      break;
    }
    case 1: {
      const workload::TrueObjectRelation& relation =
          workload
              .object_relations[rng() % workload.object_relations.size()];
      request.verb = service::WireVerb::kAssert;
      request.args = {
          relation.first.ToString(),
          std::to_string(core::AssertionTypeCode(relation.assertion)),
          relation.second.ToString()};
      break;
    }
    default:
      request.verb = service::WireVerb::kIntegrate;
      break;
  }
  return request;
}

// --- connection scaling ----------------------------------------------------
// The 10k-connection claim, measured over real sockets. A forked child
// runs the NetServer (the exact epoll plane ecrint_serve uses) over a
// seeded service; the parent
//   * runs an N-connection binary mixed workload over TCP (the active
//     baseline, with client-observed p99),
//   * opens `idle_target` more connections, pings each once (so every
//     connection has served traffic — the realistic "burst then park"
//     shape) and leaves them parked,
//   * measures the child's VmRSS growth per parked connection,
//   * re-runs the same active workload with the herd parked (active_ratio
//     is the "active connections don't pay for idle ones" number), and
//   * compares the per-connection memory against a thread-per-connection
//     baseline: parked threads blocked in read(2) with the old server's
//     64 KiB stack buffer touched, the shape this plane replaced.
// The child is forked FIRST in main, before anything can spawn a thread
// (common::ThreadPool::Shared() is lazy, so a fork before the first
// engine rebuild is a fork of a single-threaded process).

volatile int g_bench_server_shutdown_fd = -1;

void BenchServerSignal(int) {
  if (g_bench_server_shutdown_fd >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        write(g_bench_server_shutdown_fd, &one, sizeof(one));
  }
}

// 10k sockets on each side of the loopback: lift the soft fd limit before
// forking so both processes inherit it.
void RaiseFdLimit() {
  struct rlimit limit;
  if (getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= limit.rlim_max) return;
  limit.rlim_cur = limit.rlim_max;
  (void)setrlimit(RLIMIT_NOFILE, &limit);
}

[[noreturn]] void RunBenchServer(int ready_fd,
                                 const workload::Workload& workload) {
  signal(SIGPIPE, SIG_IGN);
  service::ServiceConfig config;
  service::IntegrationService service(config);
  service::RequestRouter router(&service);
  if (!SeedProject(&router, workload)) _exit(3);
  service::NetOptions options;
  options.port = 0;
  service::NetServer server(&router, nullptr, options);
  Result<int> port = server.Start();
  if (!port.ok()) _exit(4);
  g_bench_server_shutdown_fd = server.shutdown_fd();
  struct sigaction action {};
  action.sa_handler = BenchServerSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  dprintf(ready_fd, "%d\n", *port);
  close(ready_fd);
  server.Run();
  _exit(0);
}

int64_t ReadVmRssBytes(pid_t pid) {
  std::ifstream status("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atoll(line.c_str() + 6) * 1024;
    }
  }
  return -1;
}

int ConnectLoopback(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  // Closed-loop round trips: without TCP_NODELAY every request waits out
  // Nagle against the delayed ACK and the phase measures the kernel's
  // 40 ms timer, not the server.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

ssize_t ReadSome(int fd, char* buf, size_t len) {
  for (;;) {
    ssize_t n = read(fd, buf, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

// Reads one "."-terminated text response, leaving any over-read bytes in
// *buffer. Every response has a status line, so "\n.\n" is the terminator.
bool ReadTextResponse(int fd, std::string* buffer, std::string* response) {
  for (;;) {
    size_t pos = buffer->find("\n.\n");
    if (pos != std::string::npos) {
      response->assign(*buffer, 0, pos + 3);
      buffer->erase(0, pos + 3);
      return true;
    }
    char chunk[4096];
    ssize_t n = ReadSome(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

// Reads one complete binary frame body, leaving any over-read bytes in
// *buffer.
bool ReadFrameBody(int fd, std::string* buffer, std::string* body_out) {
  for (;;) {
    std::string_view body;
    size_t consumed = 0;
    std::string frame_error;
    service::FrameStatus status =
        service::ExtractFrame(*buffer, &body, &consumed, &frame_error);
    if (status == service::FrameStatus::kComplete) {
      body_out->assign(body.data(), body.size());
      buffer->erase(0, consumed);
      return true;
    }
    if (status == service::FrameStatus::kError) return false;
    char chunk[65536];
    ssize_t n = ReadSome(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

struct SocketPhase {
  int connections = 0;
  int64_t ops = 0;
  double elapsed_ms = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::map<std::string, int64_t> errors_by_code;
  bool ok = true;
};

// The socket twin of RunPhase's mixed_binary: `connections` client threads
// each negotiate `proto 2` and run `ops_per_conn` closed-loop mixed
// requests, recording client-observed latency per round trip. Both calls
// use the same seeds, so baseline and with-idle see identical request
// streams.
SocketPhase RunSocketMixedPhase(int port,
                                const workload::Workload& workload,
                                int connections, int64_t ops_per_conn) {
  SocketPhase phase;
  phase.connections = connections;
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(connections));
  std::vector<std::map<std::string, int64_t>> errors(
      static_cast<size_t>(connections));
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  int64_t start = NowNs();
  for (int t = 0; t < connections; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(5000 + static_cast<uint32_t>(t));
      int fd = ConnectLoopback(port);
      if (fd < 0) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      std::string buffer, response;
      bool negotiated = service::SendAll(fd, "open bench\n") &&
                        ReadTextResponse(fd, &buffer, &response) &&
                        response.rfind("ok\n", 0) == 0 &&
                        service::SendAll(fd, "proto 2\n") &&
                        ReadTextResponse(fd, &buffer, &response) &&
                        response.rfind("ok\n", 0) == 0;
      if (!negotiated) {
        failed.store(true, std::memory_order_relaxed);
        close(fd);
        return;
      }
      latencies[static_cast<size_t>(t)].reserve(
          static_cast<size_t>(ops_per_conn));
      for (int64_t i = 0; i < ops_per_conn; ++i) {
        std::string frame =
            service::EncodeBinaryRequest(MakeMixedRequest(workload, rng));
        std::string body;
        int64_t op_start = NowNs();
        if (!service::SendAll(fd, frame) ||
            !ReadFrameBody(fd, &buffer, &body)) {
          failed.store(true, std::memory_order_relaxed);
          break;
        }
        latencies[static_cast<size_t>(t)].push_back(NowNs() - op_start);
        Result<service::DecodedResponse> decoded =
            service::DecodeBinaryResponse(body);
        if (!decoded.ok()) {
          ++errors[static_cast<size_t>(t)]["UNPARSEABLE"];
          continue;
        }
        for (const service::ServiceResponse& item : decoded->items) {
          if (item.error.has_value()) {
            ++errors[static_cast<size_t>(t)][service::ServiceErrorCodeName(
                item.error->code)];
          }
        }
      }
      close(fd);
    });
  }
  for (std::thread& worker : workers) worker.join();
  int64_t elapsed = NowNs() - start;

  std::vector<int64_t> merged;
  for (const std::vector<int64_t>& per_conn : latencies) {
    merged.insert(merged.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(merged.begin(), merged.end());
  phase.ok = !failed.load(std::memory_order_relaxed) &&
             merged.size() ==
                 static_cast<size_t>(connections) *
                     static_cast<size_t>(ops_per_conn);
  phase.ops = static_cast<int64_t>(merged.size());
  phase.elapsed_ms = static_cast<double>(elapsed) / 1e6;
  phase.ops_per_sec = elapsed > 0 ? static_cast<double>(phase.ops) * 1e9 /
                                        static_cast<double>(elapsed)
                                  : 0;
  if (!merged.empty()) {
    phase.p50_us = static_cast<double>(merged[merged.size() / 2]) / 1e3;
    phase.p99_us =
        static_cast<double>(merged[merged.size() * 99 / 100]) / 1e3;
  }
  for (const std::map<std::string, int64_t>& per_conn : errors) {
    for (const auto& [code, count] : per_conn) {
      phase.errors_by_code[code] += count;
    }
  }
  return phase;
}

// What the epoll plane replaced: one parked thread per connection, blocked
// in read(2) on its socket with the old ServeConnection's 64 KiB stack
// buffer touched the way serving real traffic touches it. Measured as the
// parent's own RSS growth per parked thread.
struct ThreadBaseline {
  int threads = 0;
  int64_t rss_total_bytes = 0;
  int64_t rss_per_conn_bytes = 0;
};

ThreadBaseline MeasureThreadBaseline(int count) {
  ThreadBaseline result;
  int64_t before = ReadVmRssBytes(getpid());
  std::vector<int> wake_fds;
  std::vector<std::thread> threads;
  std::atomic<int> parked{0};
  for (int i = 0; i < count; ++i) {
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) break;
    wake_fds.push_back(fds[1]);
    const int conn_fd = fds[0];
    threads.emplace_back([conn_fd, &parked] {
      char chunk[65536];
      for (size_t i = 0; i < sizeof(chunk); i += 512) {
        chunk[i] = static_cast<char>(i);
      }
      // The stores above fault the buffer's pages in; without this the
      // optimizer sees dead stores and the stack stays untouched.
      asm volatile("" : : "r"(chunk) : "memory");
      parked.fetch_add(1, std::memory_order_relaxed);
      while (ReadSome(conn_fd, chunk, sizeof(chunk)) > 0) {
      }
      close(conn_fd);
    });
  }
  while (parked.load(std::memory_order_relaxed) <
         static_cast<int>(threads.size())) {
    usleep(1000);
  }
  usleep(200'000);  // let RSS settle before sampling
  int64_t after = ReadVmRssBytes(getpid());
  for (int fd : wake_fds) close(fd);  // EOF wakes every parked reader
  for (std::thread& thread : threads) thread.join();
  result.threads = static_cast<int>(threads.size());
  result.rss_total_bytes = after > before ? after - before : 0;
  result.rss_per_conn_bytes =
      result.threads > 0 ? result.rss_total_bytes / result.threads : 0;
  return result;
}

struct ConnectionScaling {
  bool ok = true;
  std::string error;
  int64_t idle_target = 0;
  int64_t idle_connections = 0;
  double connect_ms = 0;
  double accept_per_sec = 0;
  SocketPhase active_baseline;
  SocketPhase active_with_idle;
  double active_ratio = 0;
  int64_t rss_idle_total_bytes = 0;
  int64_t rss_per_idle_conn_bytes = 0;
  ThreadBaseline thread_baseline;
  double rss_reduction_x = 0;
  bool server_exit_ok = false;
  std::string server_metrics = "{}";
};

ConnectionScaling RunConnectionScaling(const workload::Workload& workload,
                                       int active_conns,
                                       int64_t ops_per_conn,
                                       int idle_target,
                                       int thread_baseline_count) {
  ConnectionScaling result;
  result.idle_target = idle_target;

  int ready_pipe[2];
  if (pipe(ready_pipe) != 0) {
    result.ok = false;
    result.error = "pipe failed";
    return result;
  }
  pid_t child = fork();
  if (child < 0) {
    result.ok = false;
    result.error = "fork failed";
    close(ready_pipe[0]);
    close(ready_pipe[1]);
    return result;
  }
  if (child == 0) {
    close(ready_pipe[0]);
    RunBenchServer(ready_pipe[1], workload);  // _exits
  }
  close(ready_pipe[1]);
  std::string port_line;
  char c;
  while (read(ready_pipe[0], &c, 1) == 1 && c != '\n') port_line.push_back(c);
  close(ready_pipe[0]);
  int port = std::atoi(port_line.c_str());
  if (port <= 0) {
    result.ok = false;
    result.error = "server child failed to start";
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    return result;
  }

  // Active traffic with nothing else connected: the comparison floor.
  result.active_baseline =
      RunSocketMixedPhase(port, workload, active_conns, ops_per_conn);
  result.ok &= result.active_baseline.ok;

  // Park the idle herd: connect, serve one ping, leave open.
  int64_t rss_before = ReadVmRssBytes(child);
  std::vector<int> idle;
  idle.reserve(static_cast<size_t>(idle_target));
  int64_t herd_start = NowNs();
  {
    std::string buffer, response;
    for (int i = 0; i < idle_target; ++i) {
      int fd = ConnectLoopback(port);
      if (fd < 0) break;
      buffer.clear();
      if (!service::SendAll(fd, "ping\n") ||
          !ReadTextResponse(fd, &buffer, &response)) {
        close(fd);
        break;
      }
      idle.push_back(fd);
    }
  }
  int64_t herd_elapsed = NowNs() - herd_start;
  result.idle_connections = static_cast<int64_t>(idle.size());
  result.connect_ms = static_cast<double>(herd_elapsed) / 1e6;
  result.accept_per_sec =
      herd_elapsed > 0 ? static_cast<double>(idle.size()) * 1e9 /
                             static_cast<double>(herd_elapsed)
                       : 0;
  result.ok &= result.idle_connections == idle_target;
  if (result.idle_connections < idle_target) {
    result.error = "only parked " +
                   std::to_string(result.idle_connections) + " of " +
                   std::to_string(idle_target) + " idle connections";
  }

  usleep(200'000);  // let the child's RSS settle before sampling
  int64_t rss_after = ReadVmRssBytes(child);
  result.rss_idle_total_bytes =
      rss_after > rss_before ? rss_after - rss_before : 0;
  result.rss_per_idle_conn_bytes =
      idle.empty() ? 0
                   : result.rss_idle_total_bytes /
                         static_cast<int64_t>(idle.size());

  // Same request streams again, now with the herd parked.
  result.active_with_idle =
      RunSocketMixedPhase(port, workload, active_conns, ops_per_conn);
  result.ok &= result.active_with_idle.ok;
  result.active_ratio =
      result.active_baseline.ops_per_sec > 0
          ? result.active_with_idle.ops_per_sec /
                result.active_baseline.ops_per_sec
          : 0;

  // Server-side counters (accepts, wakeups, writev calls, the
  // net.connections high-water) over a control connection.
  int control = ConnectLoopback(port);
  if (control >= 0) {
    std::string buffer, response;
    if (service::SendAll(control, "open bench\n") &&
        ReadTextResponse(control, &buffer, &response) &&
        response.rfind("ok\n", 0) == 0 &&
        service::SendAll(control, "metrics\n") &&
        ReadTextResponse(control, &buffer, &response) &&
        response.rfind("ok\n", 0) == 0 && response.size() > 6) {
      result.server_metrics = response.substr(3, response.size() - 6);
    }
    close(control);
  }

  // Drain the child with the herd still parked (the 10k-connection
  // SIGTERM path), then release the parent's ends.
  kill(child, SIGTERM);
  int status = 0;
  waitpid(child, &status, 0);
  result.server_exit_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  result.ok &= result.server_exit_ok;
  if (!result.server_exit_ok && result.error.empty()) {
    result.error = "server child did not drain cleanly";
  }
  for (int fd : idle) close(fd);

  result.thread_baseline = MeasureThreadBaseline(thread_baseline_count);
  result.rss_reduction_x =
      result.rss_per_idle_conn_bytes > 0
          ? static_cast<double>(result.thread_baseline.rss_per_conn_bytes) /
                static_cast<double>(result.rss_per_idle_conn_bytes)
          : 0;
  return result;
}

std::string JsonSocketPhase(const SocketPhase& phase) {
  std::ostringstream out;
  out << "{\"connections\": " << phase.connections
      << ", \"ops\": " << phase.ops
      << ", \"elapsed_ms\": " << phase.elapsed_ms
      << ", \"ops_per_sec\": " << phase.ops_per_sec
      << ", \"p50_us\": " << phase.p50_us
      << ", \"p99_us\": " << phase.p99_us
      << ", \"errors\": " << JsonErrors(phase.errors_by_code) << "}";
  return out.str();
}

std::string JsonConnectionScaling(const ConnectionScaling& scaling) {
  std::ostringstream out;
  out << "{\"idle_target\": " << scaling.idle_target
      << ", \"idle_connections\": " << scaling.idle_connections
      << ", \"connect_ms\": " << scaling.connect_ms
      << ", \"accept_per_sec\": " << scaling.accept_per_sec
      << ",\n    \"active_baseline\": "
      << JsonSocketPhase(scaling.active_baseline)
      << ",\n    \"active_with_idle\": "
      << JsonSocketPhase(scaling.active_with_idle)
      << ",\n    \"active_ratio\": " << scaling.active_ratio
      << ", \"rss_idle_total_bytes\": " << scaling.rss_idle_total_bytes
      << ", \"rss_per_idle_conn_bytes\": "
      << scaling.rss_per_idle_conn_bytes
      << ", \"thread_baseline_threads\": " << scaling.thread_baseline.threads
      << ", \"thread_baseline_rss_per_conn_bytes\": "
      << scaling.thread_baseline.rss_per_conn_bytes
      << ", \"rss_reduction_x\": " << scaling.rss_reduction_x
      << ", \"server_exit_ok\": "
      << (scaling.server_exit_ok ? "true" : "false")
      << ",\n    \"server_metrics\": " << scaling.server_metrics << "}";
  return out.str();
}

// --- journal overhead ------------------------------------------------------
// What durability costs per write, by fsync policy: a single-threaded
// client re-declares ground-truth equivalences against its own project,
// once without a journal, once with the journal on the real filesystem
// under each policy. Auto-checkpointing is off so the number isolates
// append + fsync, not snapshot serialization.

struct JournalLatency {
  std::string mode;
  int64_t ops = 0;
  double p50_us = 0;
  double p95_us = 0;
  double ops_per_sec = 0;
  bool ok = true;
};

JournalLatency MeasureJournalMode(const std::string& mode, int64_t ops,
                                  const workload::Workload& workload) {
  JournalLatency result;
  result.mode = mode;
  service::ServiceConfig config;
  std::string dir;
  if (mode != "none") {
    dir = "perf_journal_tmp_" + mode;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    config.data_dir = dir;
    config.durability.checkpoint_interval_records = 0;
    config.durability.fsync = mode == "fsync_always"
                                  ? service::FsyncPolicy::kAlways
                                  : service::FsyncPolicy::kBatch;
  }
  {
    service::IntegrationService service(config);
    std::string session = service.OpenSession("bench");
    for (const std::string& name : workload.schema_names) {
      const ecr::Schema& schema = **workload.catalog.GetSchema(name);
      result.ok &= service.Define(session, ecr::ToDdl(schema)).ok();
    }
    std::vector<int64_t> latencies;
    latencies.reserve(static_cast<size_t>(ops));
    int64_t start = NowNs();
    for (int64_t i = 0; i < ops; ++i) {
      const workload::TrueAttributeMatch& match =
          workload.attribute_matches[static_cast<size_t>(i) %
                                     workload.attribute_matches.size()];
      int64_t op_start = NowNs();
      result.ok &= service
                       .DeclareEquivalence(session, match.first,
                                           match.second)
                       .ok();
      latencies.push_back(NowNs() - op_start);
    }
    int64_t elapsed = NowNs() - start;
    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
      result.ops = ops;
      result.p50_us =
          static_cast<double>(latencies[latencies.size() / 2]) / 1e3;
      result.p95_us =
          static_cast<double>(latencies[latencies.size() * 95 / 100]) / 1e3;
      result.ops_per_sec = elapsed > 0 ? static_cast<double>(ops) * 1e9 /
                                             static_cast<double>(elapsed)
                                       : 0;
    }
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return result;
}

std::string JsonJournalLatency(const JournalLatency& latency) {
  std::ostringstream out;
  out << "{\"ops\": " << latency.ops << ", \"p50_us\": " << latency.p50_us
      << ", \"p95_us\": " << latency.p95_us
      << ", \"ops_per_sec\": " << latency.ops_per_sec << "}";
  return out.str();
}

// --- replica read scaling --------------------------------------------------
// In-process stand-in for a follower's socket: every frame the
// ReplicationServer ships is applied to the FollowerState inline, so
// Serve() doubles as the bootstrap pump and returns once the stop
// predicate sees the follower caught up.

struct DirectSink : service::ReplicationSink {
  explicit DirectSink(service::FollowerState* follower)
      : follower(follower) {}

  Status Send(std::string_view frame) override {
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    if (service::ExtractFrame(frame, &body, &consumed, &error) !=
            service::FrameStatus::kComplete ||
        consumed != frame.size()) {
      return InternalError("sink expected exactly one frame: " + error);
    }
    ECRINT_ASSIGN_OR_RETURN(service::FollowerState::Outcome outcome,
                            follower->HandleFrame(body));
    if (outcome != service::FollowerState::Outcome::kOk) {
      return InternalError("follower asked to resubscribe mid-bootstrap");
    }
    return Status::Ok();
  }

  service::FollowerState* follower;
};

// One read replica: a leader_addr-configured service (writes refused with
// NOT_LEADER) plus its own router, converged off the leader's stream.
struct Replica {
  std::unique_ptr<service::IntegrationService> service;
  std::unique_ptr<service::RequestRouter> router;
};

}  // namespace

int main(int argc, char** argv) {
  int threads = 8;
  int64_t ops = 2000;   // per thread, per phase
  int batch = 64;       // requests per batch frame in the batched phases
  int idle_conns = -1;  // connection_scaling herd size (-1: default)
  bool smoke = false;
  service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::atoll(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (arg == "--idle-conns" && i + 1 < argc) {
      idle_conns = std::atoi(argv[++i]);
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      config.queue_depth = std::atoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
      ops = 50;
    } else {
      std::cerr << "usage: perf_service [--threads N] [--ops N] "
                   "[--batch N] [--idle-conns N] [--queue-depth N] "
                   "[--smoke]\n";
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  if (batch < 1) batch = 1;
  if (batch > static_cast<int>(service::kMaxBatchItems)) {
    batch = static_cast<int>(service::kMaxBatchItems);
  }
  // The recorded number is the full 10k herd; --smoke keeps the phase
  // meaningful but quick (and ASan-sized) for CI gates.
  if (idle_conns < 0) idle_conns = smoke ? 200 : 10000;
  int thread_baseline_count = smoke ? 100 : 500;

  workload::GeneratorConfig generator;
  generator.seed = 7;
  generator.num_concepts = 12;
  generator.num_schemas = 3;
  Result<workload::Workload> workload =
      workload::GenerateWorkload(generator);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status() << "\n";
    return 1;
  }

  // --- connection scaling (fork-first: no threads exist yet) ---------------
  signal(SIGPIPE, SIG_IGN);
  RaiseFdLimit();
  ConnectionScaling conn_scaling = RunConnectionScaling(
      *workload, threads, ops, idle_conns, thread_baseline_count);
  if (!conn_scaling.ok) {
    std::cerr << "connection_scaling: "
              << (conn_scaling.error.empty() ? "active phase saw failures"
                                             : conn_scaling.error)
              << "\n";
    return 1;
  }

  service::IntegrationService service(config);
  service::RequestRouter router(&service);

  // --- seed the shared project over the wire -------------------------------
  auto seed_project = [&workload](service::RequestRouter* target) {
    return SeedProject(target, *workload);
  };
  if (!seed_project(&router)) return 1;

  const std::vector<std::string>& names = workload->schema_names;
  auto read_op = [&](Client& client, std::mt19937& rng, int64_t) {
    size_t a = rng() % names.size();
    size_t b = (a + 1 + rng() % (names.size() - 1)) % names.size();
    // No `metrics` in the mix: MetricsJson serializes on the registry
    // mutex, which would measure the dump, not the read plane.
    switch (rng() % 4) {
      case 0:
      case 1:
        client.Send("rank " + names[a] + " " + names[b] + " zero");
        break;
      case 2:
        client.Send("suggest " + names[a] + " " + names[b]);
        break;
      default:
        client.Send("outline");
        break;
    }
  };
  auto mixed_op = [&](Client& client, std::mt19937& rng, int64_t i) {
    // ~80/20 read/write; writes replay ground truth, so they commute.
    if (rng() % 5 != 0) {
      read_op(client, rng, i);
      return;
    }
    switch (rng() % 3) {
      case 0: {
        const workload::TrueAttributeMatch& match =
            workload->attribute_matches[rng() %
                                        workload->attribute_matches.size()];
        client.Send("equiv " + match.first.ToString() + " " +
                    match.second.ToString());
        break;
      }
      case 1: {
        const workload::TrueObjectRelation& relation =
            workload->object_relations[rng() %
                                       workload->object_relations.size()];
        client.Send(
            "assert " + relation.first.ToString() + " " +
            std::to_string(core::AssertionTypeCode(relation.assertion)) +
            " " + relation.second.ToString());
        break;
      }
      default:
        client.Send("integrate");
        break;
    }
  };

  // --- binary-protocol ops -------------------------------------------------
  auto binary_mixed_op = [&](Client& client, std::mt19937& rng, int64_t) {
    client.SendBinary(MakeMixedRequest(*workload, rng));
  };
  auto batch_mixed_op = [&](Client& client, std::mt19937& rng, int64_t i) {
    client.pending.push_back(MakeMixedRequest(*workload, rng));
    if (static_cast<int>(client.pending.size()) >= batch || i == ops - 1) {
      client.Flush();
    }
  };

  // --- phases --------------------------------------------------------------
  Phase read_1 =
      RunPhase("read_1thread", &router, "bench", 1, ops * threads, read_op);
  Phase read_n =
      RunPhase("read_nthread", &router, "bench", threads, ops, read_op);
  Phase mixed = RunPhase("mixed", &router, "bench", threads, ops, mixed_op);
  Phase mixed_binary =
      RunPhase("mixed_binary", &router, "bench", threads, ops,
               binary_mixed_op, service::kProtocolBinaryVersion);
  Phase mixed_batch =
      RunPhase("mixed_binary_batch", &router, "bench", threads, ops,
               batch_mixed_op, service::kProtocolBinaryVersion);

  double scaling = read_1.ops_per_sec > 0
                       ? read_n.ops_per_sec / read_1.ops_per_sec
                       : 0;

  // --- replica read scaling ------------------------------------------------
  // Seed a durable leader with the same workload, checkpoint it, and
  // bootstrap kMaxReplicas diskless followers off its checkpoint + WAL
  // stream. Then measure aggregate read throughput with `threads` client
  // threads per replica at 1, 2, and 4 replicas: replica reads share no
  // locks across services, so the aggregate should grow with the replica
  // count until the host runs out of cores.
  constexpr int kMaxReplicas = 4;
  common::MemFs repl_fs;
  service::ServiceConfig leader_config;
  leader_config.fs = &repl_fs;
  leader_config.data_dir = "/leader";
  leader_config.durability.fsync = service::FsyncPolicy::kNever;
  service::IntegrationService leader(leader_config);
  service::RequestRouter leader_router(&leader);
  if (!seed_project(&leader_router)) return 1;
  leader.CheckpointProjects();
  auto leader_position = leader.SampleReplicationPosition("bench");
  if (!leader_position.ok()) {
    std::cerr << "leader position: " << leader_position.status() << "\n";
    return 1;
  }

  service::ReplicationServer repl_server(&leader, &repl_fs, "/leader");
  std::vector<Replica> replicas;
  for (int r = 0; r < kMaxReplicas; ++r) {
    Replica replica;
    service::ServiceConfig follower_config;
    follower_config.leader_addr = "in-process:0";
    replica.service =
        std::make_unique<service::IntegrationService>(follower_config);
    replica.router =
        std::make_unique<service::RequestRouter>(replica.service.get());

    service::FollowerState follower(replica.service.get(), "bench");
    auto from = follower.Prepare();
    if (!from.ok()) {
      std::cerr << "replica prepare: " << from.status() << "\n";
      return 1;
    }
    DirectSink sink(&follower);
    service::ReplSubscribe subscribe;
    subscribe.project = "bench";
    subscribe.have_seq = *from;
    uint64_t target_seq = leader_position->seq;
    Status served = repl_server.Serve(subscribe, sink, [&] {
      return follower.applied_seq() >= target_seq;
    });
    if (!served.ok()) {
      std::cerr << "replica bootstrap: " << served << "\n";
      return 1;
    }
    auto replica_position =
        replica.service->SampleReplicationPosition("bench");
    if (!replica_position.ok() ||
        !(replica_position->stamp == leader_position->stamp)) {
      std::cerr << "replica " << r << " diverged from the leader\n";
      return 1;
    }
    replicas.push_back(std::move(replica));
  }

  // `threads` clients per replica, each running `ops` reads; the phase's
  // ops_per_sec is the aggregate across every replica.
  auto replica_read_phase = [&](const std::string& name,
                                int replica_count) {
    int total = replica_count * threads;
    std::vector<Client> clients(total);
    for (int t = 0; t < total; ++t) {
      clients[t].router = replicas[t % replica_count].router.get();
      clients[t].Send("open bench");
    }
    std::vector<std::thread> workers;
    int64_t start = NowNs();
    for (int t = 0; t < total; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937 rng(3000 + static_cast<uint32_t>(t));
        for (int64_t i = 0; i < ops; ++i) read_op(clients[t], rng, i);
      });
    }
    for (std::thread& worker : workers) worker.join();
    int64_t elapsed = NowNs() - start;
    for (int t = 0; t < total; ++t) clients[t].Send("close");

    Phase phase;
    phase.name = name;
    phase.threads = total;
    phase.ops = total * ops;
    phase.elapsed_ms = static_cast<double>(elapsed) / 1e6;
    phase.ops_per_sec =
        elapsed > 0 ? static_cast<double>(phase.ops) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0;
    for (const Client& client : clients) {
      for (const auto& [code, count] : client.errors_by_code) {
        phase.errors_by_code[code] += count;
      }
    }
    return phase;
  };
  Phase replica_1 = replica_read_phase("replica_read_1", 1);
  Phase replica_2 = replica_read_phase("replica_read_2", 2);
  Phase replica_4 = replica_read_phase("replica_read_4", 4);
  double replica_scaling = replica_1.ops_per_sec > 0
                               ? replica_4.ops_per_sec /
                                     replica_1.ops_per_sec
                               : 0;

  // Journal overhead, single-threaded: no journal vs batched fsync vs
  // fsync-per-record on the real filesystem.
  std::map<std::string, JournalLatency> journal_latency;
  for (const std::string& mode : {std::string("none"),
                                  std::string("fsync_batch"),
                                  std::string("fsync_always")}) {
    journal_latency[mode] = MeasureJournalMode(mode, ops, *workload);
    if (!journal_latency[mode].ok) {
      std::cerr << "journal phase " << mode << " saw write failures\n";
      return 1;
    }
  }

  // Per-verb histograms, snapshot publishes, queue high-water.
  std::string metrics_json = service.metrics().MetricsJson();

  int64_t conflicts = 0, timeouts = 0;
  for (const Phase* phase :
       {&read_1, &read_n, &mixed, &mixed_binary, &mixed_batch,
        &replica_1, &replica_2, &replica_4}) {
    auto conflict = phase->errors_by_code.find("CONFLICT");
    if (conflict != phase->errors_by_code.end()) {
      conflicts += conflict->second;
    }
    auto timeout = phase->errors_by_code.find("TIMEOUT");
    if (timeout != phase->errors_by_code.end()) timeouts += timeout->second;
  }
  for (const SocketPhase* phase :
       {&conn_scaling.active_baseline, &conn_scaling.active_with_idle}) {
    auto conflict = phase->errors_by_code.find("CONFLICT");
    if (conflict != phase->errors_by_code.end()) {
      conflicts += conflict->second;
    }
    auto timeout = phase->errors_by_code.find("TIMEOUT");
    if (timeout != phase->errors_by_code.end()) timeouts += timeout->second;
  }

  // On a 1-core host the expected read_scaling is ~1.0 (parity, i.e. no
  // contention collapse); >1 needs real hardware parallelism. Record the
  // host's thread count so the number stays interpretable.
  std::cout << "{\n"
            << "  \"config\": {\"threads\": " << threads
            << ", \"ops_per_thread\": " << ops
            << ", \"queue_depth\": " << config.queue_depth
            << ", \"batch\": " << batch
            << ", \"hardware_threads\": "
            << std::thread::hardware_concurrency()
            // Provenance: tools/ci.sh refuses recorded numbers from
            // unoptimized builds.
#ifdef NDEBUG
            << ", \"release_build\": true},\n"
#else
            << ", \"release_build\": false},\n"
#endif
            << "  \"read_1thread\": " << JsonPhase(read_1) << ",\n"
            << "  \"read_nthread\": " << JsonPhase(read_n) << ",\n"
            << "  \"mixed\": " << JsonPhase(mixed) << ",\n"
            << "  \"mixed_binary\": " << JsonPhase(mixed_binary) << ",\n"
            << "  \"mixed_binary_batch\": " << JsonPhase(mixed_batch)
            << ",\n"
            << "  \"connection_scaling\": "
            << JsonConnectionScaling(conn_scaling) << ",\n"
            << "  \"journal_write_latency\": {"
            << "\"none\": " << JsonJournalLatency(journal_latency["none"])
            << ", \"fsync_batch\": "
            << JsonJournalLatency(journal_latency["fsync_batch"])
            << ", \"fsync_always\": "
            << JsonJournalLatency(journal_latency["fsync_always"]) << "},\n"
            << "  \"replica_read_scaling\": {"
            << "\"replicas_1\": " << JsonPhase(replica_1)
            << ", \"replicas_2\": " << JsonPhase(replica_2)
            << ", \"replicas_4\": " << JsonPhase(replica_4)
            << ", \"scaling_4x\": " << replica_scaling << "},\n"
            << "  \"read_scaling\": " << scaling << ",\n"
            << "  \"conflicts\": " << conflicts << ",\n"
            << "  \"timeouts\": " << timeouts << ",\n"
            << "  \"service_metrics\": " << metrics_json << "\n"
            << "}\n";

  if (conflicts > 0 || timeouts > 0) {
    std::cerr << "FAIL: " << conflicts << " conflicts, " << timeouts
              << " timeouts\n";
    return 1;
  }
  return 0;
}
