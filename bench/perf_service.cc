// perf_service — closed-loop load generator for the integration service
// plane. Unlike the google-benchmark sweeps, this harness measures the
// service's *concurrent* behaviour: N client threads drive an in-process
// RequestRouter (same dispatch path as the TCP front end, minus the socket)
// against one shared project, and the emitted JSON records
//
//   * read throughput at 1 thread vs N threads (snapshot reads are
//     lock-free, so the scaling factor is the headline number),
//   * a mixed read/write phase whose writes serialize on the project lock
//     while readers keep running on the previous snapshot,
//   * client-observed error tallies per code (the acceptance bar: zero
//     CONFLICT and zero TIMEOUT at the default queue depth),
//   * journal write latency (p50/p95 per mutation) without a journal vs
//     --fsync batch vs --fsync always, on the real filesystem,
//   * replica read scaling: a replication leader is seeded with the same
//     workload, 1/2/4 follower services bootstrap from its checkpoint +
//     WAL stream (pumped through an in-memory sink), and the aggregate
//     snapshot-read throughput across the replicas is recorded, and
//   * the service's own MetricsRegistry dump — per-verb latency histograms
//     with p50/p95/p99, snapshot publish counts, queue-depth high-water.
//
//   perf_service [--threads N] [--ops N] [--queue-depth N] [--smoke]
//
// All writes are idempotent replays of the workload's ground truth
// (re-declaring an equivalence or re-asserting a true relation is a no-op
// for the closure), so any interleaving stays conflict-free — making
// "errors.CONFLICT == 0" a real invariant rather than luck. Exit status is
// nonzero when a CONFLICT or TIMEOUT is observed. bench/run_benches.sh
// --service captures stdout into BENCH_service.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "core/assertion.h"
#include "ecr/printer.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/router.h"
#include "service/service.h"
#include "workload/generator.h"

namespace {

using namespace ecrint;  // NOLINT: harness brevity

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One client: its own RouterSession (and service session) bound to the
// shared project, issuing one request at a time like a blocking connection.
struct Client {
  service::RouterSession session;
  service::RequestRouter* router = nullptr;
  std::map<std::string, int64_t> errors_by_code;
  int64_t ops = 0;
  // Requests queued for the next batch frame (binary batch mode).
  std::vector<service::BinaryRequest> pending;

  // Sends one line, parses the framed response, tallies errors. Returns
  // true when the response was ok.
  bool Send(const std::string& line) {
    std::string wire = router->HandleLine(line, &session);
    Result<service::ServiceResponse> response =
        service::ParseResponse(wire);
    ++ops;
    if (!response.ok()) {
      ++errors_by_code["UNPARSEABLE"];
      return false;
    }
    if (response->error.has_value()) {
      ++errors_by_code[service::ServiceErrorCodeName(
          response->error->code)];
      return false;
    }
    return true;
  }

  // Sends one complete binary frame through the router (the in-process
  // equivalent of writing it to the socket), decodes the response frame,
  // tallies one op and any error per response item.
  bool SendEncodedFrame(const std::string& frame, int64_t items) {
    std::string_view body;
    size_t consumed = 0;
    std::string frame_error;
    if (service::ExtractFrame(frame, &body, &consumed, &frame_error) !=
        service::FrameStatus::kComplete) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    std::string reply = router->HandleFrame(body, &session);
    if (service::ExtractFrame(reply, &body, &consumed, &frame_error) !=
        service::FrameStatus::kComplete) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    Result<service::DecodedResponse> decoded =
        service::DecodeBinaryResponse(body);
    if (!decoded.ok()) {
      ops += items;
      errors_by_code["UNPARSEABLE"] += items;
      return false;
    }
    bool all_ok = true;
    for (const service::ServiceResponse& response : decoded->items) {
      ++ops;
      if (response.error.has_value()) {
        ++errors_by_code[service::ServiceErrorCodeName(
            response.error->code)];
        all_ok = false;
      }
    }
    return all_ok;
  }

  bool SendBinary(const service::BinaryRequest& request) {
    return SendEncodedFrame(service::EncodeBinaryRequest(request), 1);
  }

  // Flushes the queued requests as one batch frame.
  bool Flush() {
    if (pending.empty()) return true;
    std::string frame = service::EncodeBinaryBatch(pending);
    int64_t items = static_cast<int64_t>(pending.size());
    pending.clear();
    return SendEncodedFrame(frame, items);
  }
};

struct Phase {
  std::string name;
  int threads = 0;
  int64_t ops = 0;
  double elapsed_ms = 0;
  double ops_per_sec = 0;
  std::map<std::string, int64_t> errors_by_code;
};

// Drives `threads` clients through `ops_per_thread` calls of `op(rng, i)`.
// `protocol` 2 negotiates the binary framing before the clock starts.
Phase RunPhase(const std::string& name, service::RequestRouter* router,
               const std::string& project, int threads,
               int64_t ops_per_thread,
               const std::function<void(Client&, std::mt19937&, int64_t)>&
                   op,
               int protocol = service::kProtocolTextVersion) {
  std::vector<Client> clients(threads);
  for (int t = 0; t < threads; ++t) {
    clients[t].router = router;
    clients[t].Send("open " + project);
    if (protocol == service::kProtocolBinaryVersion) {
      clients[t].Send("proto 2");
    }
  }
  std::vector<std::thread> workers;
  int64_t start = NowNs();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(1000 + static_cast<uint32_t>(t));
      for (int64_t i = 0; i < ops_per_thread; ++i) op(clients[t], rng, i);
    });
  }
  for (std::thread& worker : workers) worker.join();
  int64_t elapsed = NowNs() - start;
  for (int t = 0; t < threads; ++t) clients[t].Send("close");

  Phase phase;
  phase.name = name;
  phase.threads = threads;
  phase.ops = threads * ops_per_thread;
  phase.elapsed_ms = static_cast<double>(elapsed) / 1e6;
  phase.ops_per_sec =
      elapsed > 0 ? static_cast<double>(phase.ops) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0;
  for (const Client& client : clients) {
    // Setup sends (open/close) count toward errors but not the timed ops.
    for (const auto& [code, count] : client.errors_by_code) {
      phase.errors_by_code[code] += count;
    }
  }
  return phase;
}

std::string JsonErrors(const std::map<std::string, int64_t>& errors) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [code, count] : errors) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << code << "\": " << count;
  }
  out << "}";
  return out.str();
}

std::string JsonPhase(const Phase& phase) {
  std::ostringstream out;
  out << "{\"threads\": " << phase.threads << ", \"ops\": " << phase.ops
      << ", \"elapsed_ms\": " << phase.elapsed_ms
      << ", \"ops_per_sec\": " << phase.ops_per_sec
      << ", \"errors\": " << JsonErrors(phase.errors_by_code) << "}";
  return out.str();
}

// --- journal overhead ------------------------------------------------------
// What durability costs per write, by fsync policy: a single-threaded
// client re-declares ground-truth equivalences against its own project,
// once without a journal, once with the journal on the real filesystem
// under each policy. Auto-checkpointing is off so the number isolates
// append + fsync, not snapshot serialization.

struct JournalLatency {
  std::string mode;
  int64_t ops = 0;
  double p50_us = 0;
  double p95_us = 0;
  double ops_per_sec = 0;
  bool ok = true;
};

JournalLatency MeasureJournalMode(const std::string& mode, int64_t ops,
                                  const workload::Workload& workload) {
  JournalLatency result;
  result.mode = mode;
  service::ServiceConfig config;
  std::string dir;
  if (mode != "none") {
    dir = "perf_journal_tmp_" + mode;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    config.data_dir = dir;
    config.durability.checkpoint_interval_records = 0;
    config.durability.fsync = mode == "fsync_always"
                                  ? service::FsyncPolicy::kAlways
                                  : service::FsyncPolicy::kBatch;
  }
  {
    service::IntegrationService service(config);
    std::string session = service.OpenSession("bench");
    for (const std::string& name : workload.schema_names) {
      const ecr::Schema& schema = **workload.catalog.GetSchema(name);
      result.ok &= service.Define(session, ecr::ToDdl(schema)).ok();
    }
    std::vector<int64_t> latencies;
    latencies.reserve(static_cast<size_t>(ops));
    int64_t start = NowNs();
    for (int64_t i = 0; i < ops; ++i) {
      const workload::TrueAttributeMatch& match =
          workload.attribute_matches[static_cast<size_t>(i) %
                                     workload.attribute_matches.size()];
      int64_t op_start = NowNs();
      result.ok &= service
                       .DeclareEquivalence(session, match.first,
                                           match.second)
                       .ok();
      latencies.push_back(NowNs() - op_start);
    }
    int64_t elapsed = NowNs() - start;
    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
      result.ops = ops;
      result.p50_us =
          static_cast<double>(latencies[latencies.size() / 2]) / 1e3;
      result.p95_us =
          static_cast<double>(latencies[latencies.size() * 95 / 100]) / 1e3;
      result.ops_per_sec = elapsed > 0 ? static_cast<double>(ops) * 1e9 /
                                             static_cast<double>(elapsed)
                                       : 0;
    }
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return result;
}

std::string JsonJournalLatency(const JournalLatency& latency) {
  std::ostringstream out;
  out << "{\"ops\": " << latency.ops << ", \"p50_us\": " << latency.p50_us
      << ", \"p95_us\": " << latency.p95_us
      << ", \"ops_per_sec\": " << latency.ops_per_sec << "}";
  return out.str();
}

// --- replica read scaling --------------------------------------------------
// In-process stand-in for a follower's socket: every frame the
// ReplicationServer ships is applied to the FollowerState inline, so
// Serve() doubles as the bootstrap pump and returns once the stop
// predicate sees the follower caught up.

struct DirectSink : service::ReplicationSink {
  explicit DirectSink(service::FollowerState* follower)
      : follower(follower) {}

  Status Send(std::string_view frame) override {
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    if (service::ExtractFrame(frame, &body, &consumed, &error) !=
            service::FrameStatus::kComplete ||
        consumed != frame.size()) {
      return InternalError("sink expected exactly one frame: " + error);
    }
    ECRINT_ASSIGN_OR_RETURN(service::FollowerState::Outcome outcome,
                            follower->HandleFrame(body));
    if (outcome != service::FollowerState::Outcome::kOk) {
      return InternalError("follower asked to resubscribe mid-bootstrap");
    }
    return Status::Ok();
  }

  service::FollowerState* follower;
};

// One read replica: a leader_addr-configured service (writes refused with
// NOT_LEADER) plus its own router, converged off the leader's stream.
struct Replica {
  std::unique_ptr<service::IntegrationService> service;
  std::unique_ptr<service::RequestRouter> router;
};

}  // namespace

int main(int argc, char** argv) {
  int threads = 8;
  int64_t ops = 2000;  // per thread, per phase
  int batch = 64;      // requests per batch frame in the batched phases
  service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::atoll(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      config.queue_depth = std::atoi(argv[++i]);
    } else if (arg == "--smoke") {
      ops = 50;
    } else {
      std::cerr << "usage: perf_service [--threads N] [--ops N] "
                   "[--batch N] [--queue-depth N] [--smoke]\n";
      return 2;
    }
  }
  if (threads < 1) threads = 1;
  if (batch < 1) batch = 1;
  if (batch > static_cast<int>(service::kMaxBatchItems)) {
    batch = static_cast<int>(service::kMaxBatchItems);
  }

  service::IntegrationService service(config);
  service::RequestRouter router(&service);

  // --- seed the shared project over the wire -------------------------------
  workload::GeneratorConfig generator;
  generator.seed = 7;
  generator.num_concepts = 12;
  generator.num_schemas = 3;
  Result<workload::Workload> workload =
      workload::GenerateWorkload(generator);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status() << "\n";
    return 1;
  }
  auto seed_project = [&workload](service::RequestRouter* target) {
    Client setup;
    setup.router = target;
    bool seeded = setup.Send("open bench");
    for (const std::string& name : workload->schema_names) {
      const ecr::Schema& schema = **workload->catalog.GetSchema(name);
      seeded &= setup.Send("define " +
                           service::EscapeField(ecr::ToDdl(schema)));
    }
    for (const workload::TrueAttributeMatch& match :
         workload->attribute_matches) {
      seeded &= setup.Send("equiv " + match.first.ToString() + " " +
                           match.second.ToString());
    }
    for (const workload::TrueObjectRelation& relation :
         workload->object_relations) {
      seeded &= setup.Send(
          "assert " + relation.first.ToString() + " " +
          std::to_string(core::AssertionTypeCode(relation.assertion)) +
          " " + relation.second.ToString());
    }
    seeded &= setup.Send("integrate");
    if (!seeded) {
      std::cerr << "project seeding failed: "
                << JsonErrors(setup.errors_by_code) << "\n";
    }
    return seeded;
  };
  if (!seed_project(&router)) return 1;

  const std::vector<std::string>& names = workload->schema_names;
  auto read_op = [&](Client& client, std::mt19937& rng, int64_t) {
    size_t a = rng() % names.size();
    size_t b = (a + 1 + rng() % (names.size() - 1)) % names.size();
    // No `metrics` in the mix: MetricsJson serializes on the registry
    // mutex, which would measure the dump, not the read plane.
    switch (rng() % 4) {
      case 0:
      case 1:
        client.Send("rank " + names[a] + " " + names[b] + " zero");
        break;
      case 2:
        client.Send("suggest " + names[a] + " " + names[b]);
        break;
      default:
        client.Send("outline");
        break;
    }
  };
  auto mixed_op = [&](Client& client, std::mt19937& rng, int64_t i) {
    // ~80/20 read/write; writes replay ground truth, so they commute.
    if (rng() % 5 != 0) {
      read_op(client, rng, i);
      return;
    }
    switch (rng() % 3) {
      case 0: {
        const workload::TrueAttributeMatch& match =
            workload->attribute_matches[rng() %
                                        workload->attribute_matches.size()];
        client.Send("equiv " + match.first.ToString() + " " +
                    match.second.ToString());
        break;
      }
      case 1: {
        const workload::TrueObjectRelation& relation =
            workload->object_relations[rng() %
                                       workload->object_relations.size()];
        client.Send(
            "assert " + relation.first.ToString() + " " +
            std::to_string(core::AssertionTypeCode(relation.assertion)) +
            " " + relation.second.ToString());
        break;
      }
      default:
        client.Send("integrate");
        break;
    }
  };

  // --- binary-protocol ops -------------------------------------------------
  auto make_read = [&](std::mt19937& rng) {
    size_t a = rng() % names.size();
    size_t b = (a + 1 + rng() % (names.size() - 1)) % names.size();
    service::BinaryRequest request;
    switch (rng() % 4) {
      case 0:
      case 1:
        request.verb = service::WireVerb::kRank;
        request.args = {names[a], names[b], "zero"};
        break;
      case 2:
        request.verb = service::WireVerb::kSuggest;
        request.args = {names[a], names[b]};
        break;
      default:
        request.verb = service::WireVerb::kOutline;
        break;
    }
    return request;
  };
  auto make_mixed = [&](std::mt19937& rng) {
    if (rng() % 5 != 0) return make_read(rng);
    service::BinaryRequest request;
    switch (rng() % 3) {
      case 0: {
        const workload::TrueAttributeMatch& match =
            workload->attribute_matches[rng() %
                                        workload->attribute_matches.size()];
        request.verb = service::WireVerb::kEquiv;
        request.args = {match.first.ToString(), match.second.ToString()};
        break;
      }
      case 1: {
        const workload::TrueObjectRelation& relation =
            workload->object_relations[rng() %
                                       workload->object_relations.size()];
        request.verb = service::WireVerb::kAssert;
        request.args = {
            relation.first.ToString(),
            std::to_string(core::AssertionTypeCode(relation.assertion)),
            relation.second.ToString()};
        break;
      }
      default:
        request.verb = service::WireVerb::kIntegrate;
        break;
    }
    return request;
  };
  auto binary_mixed_op = [&](Client& client, std::mt19937& rng, int64_t) {
    client.SendBinary(make_mixed(rng));
  };
  auto batch_mixed_op = [&](Client& client, std::mt19937& rng, int64_t i) {
    client.pending.push_back(make_mixed(rng));
    if (static_cast<int>(client.pending.size()) >= batch || i == ops - 1) {
      client.Flush();
    }
  };

  // --- phases --------------------------------------------------------------
  Phase read_1 =
      RunPhase("read_1thread", &router, "bench", 1, ops * threads, read_op);
  Phase read_n =
      RunPhase("read_nthread", &router, "bench", threads, ops, read_op);
  Phase mixed = RunPhase("mixed", &router, "bench", threads, ops, mixed_op);
  Phase mixed_binary =
      RunPhase("mixed_binary", &router, "bench", threads, ops,
               binary_mixed_op, service::kProtocolBinaryVersion);
  Phase mixed_batch =
      RunPhase("mixed_binary_batch", &router, "bench", threads, ops,
               batch_mixed_op, service::kProtocolBinaryVersion);

  double scaling = read_1.ops_per_sec > 0
                       ? read_n.ops_per_sec / read_1.ops_per_sec
                       : 0;

  // --- replica read scaling ------------------------------------------------
  // Seed a durable leader with the same workload, checkpoint it, and
  // bootstrap kMaxReplicas diskless followers off its checkpoint + WAL
  // stream. Then measure aggregate read throughput with `threads` client
  // threads per replica at 1, 2, and 4 replicas: replica reads share no
  // locks across services, so the aggregate should grow with the replica
  // count until the host runs out of cores.
  constexpr int kMaxReplicas = 4;
  common::MemFs repl_fs;
  service::ServiceConfig leader_config;
  leader_config.fs = &repl_fs;
  leader_config.data_dir = "/leader";
  leader_config.durability.fsync = service::FsyncPolicy::kNever;
  service::IntegrationService leader(leader_config);
  service::RequestRouter leader_router(&leader);
  if (!seed_project(&leader_router)) return 1;
  leader.CheckpointProjects();
  auto leader_position = leader.SampleReplicationPosition("bench");
  if (!leader_position.ok()) {
    std::cerr << "leader position: " << leader_position.status() << "\n";
    return 1;
  }

  service::ReplicationServer repl_server(&leader, &repl_fs, "/leader");
  std::vector<Replica> replicas;
  for (int r = 0; r < kMaxReplicas; ++r) {
    Replica replica;
    service::ServiceConfig follower_config;
    follower_config.leader_addr = "in-process:0";
    replica.service =
        std::make_unique<service::IntegrationService>(follower_config);
    replica.router =
        std::make_unique<service::RequestRouter>(replica.service.get());

    service::FollowerState follower(replica.service.get(), "bench");
    auto from = follower.Prepare();
    if (!from.ok()) {
      std::cerr << "replica prepare: " << from.status() << "\n";
      return 1;
    }
    DirectSink sink(&follower);
    service::ReplSubscribe subscribe;
    subscribe.project = "bench";
    subscribe.have_seq = *from;
    uint64_t target_seq = leader_position->seq;
    Status served = repl_server.Serve(subscribe, sink, [&] {
      return follower.applied_seq() >= target_seq;
    });
    if (!served.ok()) {
      std::cerr << "replica bootstrap: " << served << "\n";
      return 1;
    }
    auto replica_position =
        replica.service->SampleReplicationPosition("bench");
    if (!replica_position.ok() ||
        !(replica_position->stamp == leader_position->stamp)) {
      std::cerr << "replica " << r << " diverged from the leader\n";
      return 1;
    }
    replicas.push_back(std::move(replica));
  }

  // `threads` clients per replica, each running `ops` reads; the phase's
  // ops_per_sec is the aggregate across every replica.
  auto replica_read_phase = [&](const std::string& name,
                                int replica_count) {
    int total = replica_count * threads;
    std::vector<Client> clients(total);
    for (int t = 0; t < total; ++t) {
      clients[t].router = replicas[t % replica_count].router.get();
      clients[t].Send("open bench");
    }
    std::vector<std::thread> workers;
    int64_t start = NowNs();
    for (int t = 0; t < total; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937 rng(3000 + static_cast<uint32_t>(t));
        for (int64_t i = 0; i < ops; ++i) read_op(clients[t], rng, i);
      });
    }
    for (std::thread& worker : workers) worker.join();
    int64_t elapsed = NowNs() - start;
    for (int t = 0; t < total; ++t) clients[t].Send("close");

    Phase phase;
    phase.name = name;
    phase.threads = total;
    phase.ops = total * ops;
    phase.elapsed_ms = static_cast<double>(elapsed) / 1e6;
    phase.ops_per_sec =
        elapsed > 0 ? static_cast<double>(phase.ops) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0;
    for (const Client& client : clients) {
      for (const auto& [code, count] : client.errors_by_code) {
        phase.errors_by_code[code] += count;
      }
    }
    return phase;
  };
  Phase replica_1 = replica_read_phase("replica_read_1", 1);
  Phase replica_2 = replica_read_phase("replica_read_2", 2);
  Phase replica_4 = replica_read_phase("replica_read_4", 4);
  double replica_scaling = replica_1.ops_per_sec > 0
                               ? replica_4.ops_per_sec /
                                     replica_1.ops_per_sec
                               : 0;

  // Journal overhead, single-threaded: no journal vs batched fsync vs
  // fsync-per-record on the real filesystem.
  std::map<std::string, JournalLatency> journal_latency;
  for (const std::string& mode : {std::string("none"),
                                  std::string("fsync_batch"),
                                  std::string("fsync_always")}) {
    journal_latency[mode] = MeasureJournalMode(mode, ops, *workload);
    if (!journal_latency[mode].ok) {
      std::cerr << "journal phase " << mode << " saw write failures\n";
      return 1;
    }
  }

  // Per-verb histograms, snapshot publishes, queue high-water.
  std::string metrics_json = service.metrics().MetricsJson();

  int64_t conflicts = 0, timeouts = 0;
  for (const Phase* phase :
       {&read_1, &read_n, &mixed, &mixed_binary, &mixed_batch,
        &replica_1, &replica_2, &replica_4}) {
    auto conflict = phase->errors_by_code.find("CONFLICT");
    if (conflict != phase->errors_by_code.end()) {
      conflicts += conflict->second;
    }
    auto timeout = phase->errors_by_code.find("TIMEOUT");
    if (timeout != phase->errors_by_code.end()) timeouts += timeout->second;
  }

  // On a 1-core host the expected read_scaling is ~1.0 (parity, i.e. no
  // contention collapse); >1 needs real hardware parallelism. Record the
  // host's thread count so the number stays interpretable.
  std::cout << "{\n"
            << "  \"config\": {\"threads\": " << threads
            << ", \"ops_per_thread\": " << ops
            << ", \"queue_depth\": " << config.queue_depth
            << ", \"batch\": " << batch
            << ", \"hardware_threads\": "
            << std::thread::hardware_concurrency()
            // Provenance: tools/ci.sh refuses recorded numbers from
            // unoptimized builds.
#ifdef NDEBUG
            << ", \"release_build\": true},\n"
#else
            << ", \"release_build\": false},\n"
#endif
            << "  \"read_1thread\": " << JsonPhase(read_1) << ",\n"
            << "  \"read_nthread\": " << JsonPhase(read_n) << ",\n"
            << "  \"mixed\": " << JsonPhase(mixed) << ",\n"
            << "  \"mixed_binary\": " << JsonPhase(mixed_binary) << ",\n"
            << "  \"mixed_binary_batch\": " << JsonPhase(mixed_batch)
            << ",\n"
            << "  \"journal_write_latency\": {"
            << "\"none\": " << JsonJournalLatency(journal_latency["none"])
            << ", \"fsync_batch\": "
            << JsonJournalLatency(journal_latency["fsync_batch"])
            << ", \"fsync_always\": "
            << JsonJournalLatency(journal_latency["fsync_always"]) << "},\n"
            << "  \"replica_read_scaling\": {"
            << "\"replicas_1\": " << JsonPhase(replica_1)
            << ", \"replicas_2\": " << JsonPhase(replica_2)
            << ", \"replicas_4\": " << JsonPhase(replica_4)
            << ", \"scaling_4x\": " << replica_scaling << "},\n"
            << "  \"read_scaling\": " << scaling << ",\n"
            << "  \"conflicts\": " << conflicts << ",\n"
            << "  \"timeouts\": " << timeouts << ",\n"
            << "  \"service_metrics\": " << metrics_json << "\n"
            << "}\n";

  if (conflicts > 0 || timeouts > 0) {
    std::cerr << "FAIL: " << conflicts << " conflicts, " << timeouts
              << " timeouts\n";
    return 1;
  }
  return 0;
}
