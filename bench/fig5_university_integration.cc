// Regenerates Figures 3-5: the sc1/sc2 inputs and the integrated schema the
// paper shows in Figure 5, checking every structural property the figure
// depicts. Naming note: the merged Majors/Study relationship is called
// E_Stud_Majo in the paper and E_Majo_Stud here (fragments are ordered by
// schema declaration order); the structure is identical.

#include <iostream>
#include <string>

#include "core/integrator.h"
#include "ecr/printer.h"
#include "paper_fixtures.h"

using namespace ecrint;        // NOLINT: harness brevity
using namespace ecrint::core;  // NOLINT: harness brevity

namespace {

int failures = 0;

void Expect(bool ok, const std::string& what) {
  std::cout << "  " << (ok ? "OK       " : "MISMATCH ") << what << "\n";
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::cout << "Figures 3-5: the university integration\n"
            << "=======================================\n\n";

  ecr::Catalog catalog = bench::UniversityCatalog();
  std::cout << "--- Figure 3: input schema sc1 ---\n"
            << ecr::ToOutline(**catalog.GetSchema("sc1")) << "\n";
  std::cout << "--- Figure 4: input schema sc2 ---\n"
            << ecr::ToOutline(**catalog.GetSchema("sc2")) << "\n";

  EquivalenceMap equivalence =
      bench::UniversityEquivalences(catalog, /*include_faculty_name=*/false);
  AssertionStore assertions = bench::UniversityAssertions();
  Result<IntegrationResult> result =
      Integrate(catalog, {"sc1", "sc2"}, equivalence, assertions);
  if (!result.ok()) {
    std::cerr << "integration failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "--- Figure 5: integrated schema (measured) ---\n"
            << ecr::ToOutline(result->schema) << "\n";

  const ecr::Schema& s = result->schema;
  std::cout << "Checks against Figure 5 / Screens 10-12:\n";

  ecr::ObjectId e_dept = s.FindObject("E_Department");
  ecr::ObjectId d_sf = s.FindObject("D_Stud_Facu");
  ecr::ObjectId student = s.FindObject("Student");
  ecr::ObjectId grad = s.FindObject("Grad_student");
  ecr::ObjectId faculty = s.FindObject("Faculty");

  Expect(e_dept != ecr::kNoObject &&
             s.object(e_dept).origin == ecr::ObjectOrigin::kEquivalent,
         "E_Department exists as an equivalent (E_) entity set");
  Expect(d_sf != ecr::kNoObject &&
             s.object(d_sf).origin == ecr::ObjectOrigin::kDerived,
         "D_Stud_Facu exists as a derived (D_) entity set");
  Expect(student != ecr::kNoObject &&
             s.object(student).kind == ecr::ObjectKind::kCategory &&
             s.object(student).parents == std::vector<ecr::ObjectId>{d_sf},
         "Student is a category whose parent is D_Stud_Facu (Screen 11)");
  Expect(grad != ecr::kNoObject &&
             s.object(grad).parents == std::vector<ecr::ObjectId>{student},
         "Grad_student is a category of Student (Screen 11)");
  Expect(faculty != ecr::kNoObject &&
             s.object(faculty).parents == std::vector<ecr::ObjectId>{d_sf},
         "Faculty is a category of D_Stud_Facu");

  // Screen 10 counts: Entities(2), Categories(3), Relationships(2).
  int entities = 0;
  int categories = 0;
  for (ecr::ObjectId i = 0; i < s.num_objects(); ++i) {
    (s.object(i).kind == ecr::ObjectKind::kEntitySet ? entities
                                                     : categories)++;
  }
  Expect(entities == 2, "Entities(2) as on Screen 10");
  Expect(categories == 3, "Categories(3) as on Screen 10");
  Expect(s.num_relationships() == 2, "Relationships(2) as on Screen 10");

  // Screen 12: D_Name on Student with components sc1.Student.Name and
  // sc2.Grad_student.Name.
  const DerivedAttributeInfo* d_name =
      result->FindDerivedAttribute("Student", "D_Name");
  Expect(d_name != nullptr && d_name->components.size() == 2 &&
             d_name->components[0].ToString() == "sc1.Student.Name" &&
             d_name->components[1].ToString() == "sc2.Grad_student.Name",
         "D_Name on Student has the two component attributes of Screen 12");

  // The merged relationship connects Student and E_Department.
  ecr::RelationshipId merged = s.FindRelationship("E_Majo_Stud");
  Expect(merged >= 0, "merged Majors/Study relationship exists (paper:"
                      " E_Stud_Majo; here: E_Majo_Stud)");
  if (merged >= 0) {
    const ecr::RelationshipSet& rel = s.relationship(merged);
    Expect(rel.participants.size() == 2 &&
               s.object(rel.participants[0].object).name == "Student" &&
               s.object(rel.participants[1].object).name == "E_Department",
           "it connects Student [1,1] and E_Department [0,n]");
  }
  Expect(s.FindRelationship("Works") >= 0,
         "Works carries over, remapped onto Faculty and E_Department");

  std::cout << "\n"
            << (failures == 0 ? "ALL CHECKS MATCH FIGURE 5\n"
                              : "MISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
