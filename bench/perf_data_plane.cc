// Scalability of the instance-level substrate: population, federated
// fan-out execution, and integrated-database materialization over
// synthetic workloads.

#include <benchmark/benchmark.h>

#include <map>

#include "core/integrator.h"
#include "core/request_translation.h"
#include "data/federation.h"
#include "data/instance_store.h"
#include "data/materialize.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

struct Prepared {
  workload::Workload workload;
  core::IntegrationResult result;
  std::map<std::string, std::unique_ptr<data::InstanceStore>> stores;
  std::map<std::string, const data::InstanceStore*> store_ptrs;
  // Per-schema live ecr::Schema copies the stores point into.
  std::map<std::string, ecr::Schema> schemas;
};

Prepared Prepare(int entities_per_concept) {
  workload::GeneratorConfig config;
  config.num_concepts = 10;
  config.num_schemas = 2;
  config.relationships_per_schema = 0;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  core::EquivalenceMap equivalence = bench::TruthEquivalences(*w);
  core::AssertionStore assertions = bench::TruthAssertions(*w);
  Result<core::IntegrationResult> result = core::Integrate(
      w->catalog, w->schema_names, equivalence, assertions);
  if (!result.ok()) std::abort();

  Prepared p{*std::move(w), *std::move(result), {}, {}, {}};
  for (const std::string& name : p.workload.schema_names) {
    p.schemas.emplace(name, **p.workload.catalog.GetSchema(name));
  }
  for (const std::string& name : p.workload.schema_names) {
    p.stores[name] =
        std::make_unique<data::InstanceStore>(&p.schemas.at(name));
  }
  for (const workload::LocalExtent& extent : p.workload.extents) {
    data::InstanceStore& store = *p.stores.at(extent.schema);
    const ecr::Schema& schema = store.schema();
    const std::string& key =
        schema.object(schema.FindObject(extent.object)).attributes[0].name;
    for (int k = 0; k < entities_per_concept; ++k) {
      double pos = (k + 0.5) / entities_per_concept;
      if (pos < extent.lo || pos >= extent.hi) continue;
      (void)store.Insert(extent.object,
                         {{key, data::Value::Int(
                                    extent.concept_index * 100000 + k)}});
    }
  }
  for (auto& [name, store] : p.stores) p.store_ptrs[name] = store.get();
  return p;
}

void BM_FanoutExecution(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)));
  // Query the first keyed integrated class.
  core::Request query;
  for (const core::IntegratedStructureInfo& info : p.result.structures) {
    if (info.kind != core::StructureKind::kObjectClass) continue;
    ecr::ObjectId id = p.result.schema.FindObject(info.name);
    for (const ecr::Attribute& a : p.result.schema.InheritedAttributes(id)) {
      if (a.is_key) {
        query = {{p.result.schema.name(), info.name}, {a.name}};
      }
    }
    if (!query.attributes.empty()) break;
  }
  Result<core::FanoutPlan> plan =
      core::TranslateToComponents(p.result, query);
  if (!plan.ok()) std::abort();
  int64_t rows = 0;
  for (auto _ : state) {
    Result<data::ResultSet> result = data::ExecuteFanout(*plan, p.store_ptrs);
    if (!result.ok()) std::abort();
    rows += static_cast<int64_t>(result->rows.size());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_FanoutExecution)->Arg(10)->Arg(100)->Arg(1000);

void BM_Materialize(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<data::MaterializationResult> materialized =
        data::MaterializeIntegrated(p.result, p.store_ptrs);
    if (!materialized.ok()) std::abort();
    benchmark::DoNotOptimize(materialized);
  }
}
BENCHMARK(BM_Materialize)->Arg(10)->Arg(100);

void BM_InsertThroughput(benchmark::State& state) {
  ecr::Catalog catalog = bench::UniversityCatalog();
  const ecr::Schema& sc1 = **catalog.GetSchema("sc1");
  for (auto _ : state) {
    state.PauseTiming();
    data::InstanceStore store(&sc1);
    state.ResumeTiming();
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      (void)store.Insert(
          "Student", {{"Name", data::Value::Str("s" + std::to_string(i))},
                      {"GPA", data::Value::Real(3.0)}});
    }
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertThroughput)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
