// Cost of one interactive DDA edit at integration time: a full pipeline
// replay (what every frontend hand-wired before the Engine existed) versus
// the Engine's incremental path, which extends the cached seeded closure by
// the one appended assertion and re-runs only lattice/placement/assembly.
// The gap is the paper's "tool stays interactive" claim at workload scale.

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

workload::Workload MakeWorkload(int concepts) {
  workload::GeneratorConfig config;
  config.num_concepts = concepts;
  config.num_schemas = 2;
  config.concept_coverage = 0.9;
  Result<workload::Workload> workload = workload::GenerateWorkload(config);
  if (!workload.ok()) std::abort();
  return *std::move(workload);
}

// The workload's schemas, ground-truth equivalences, and ground-truth
// assertions loaded into an Engine — the state after the DDA's session.
engine::Engine LoadEngine(const workload::Workload& w) {
  engine::Engine engine;
  for (const std::string& name : w.schema_names) {
    Result<const ecr::Schema*> schema = w.catalog.GetSchema(name);
    if (!schema.ok() || !engine.AddSchema(**schema).ok()) std::abort();
  }
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    (void)engine.AssertEquivalence(match.first, match.second);
  }
  for (const workload::TrueObjectRelation& relation : w.object_relations) {
    if (!engine.AssertRelation(relation.first, relation.second,
                               relation.assertion)
             .ok()) {
      std::abort();
    }
  }
  return engine;
}

void BM_EngineFullRebuild(benchmark::State& state) {
  workload::Workload w = MakeWorkload(static_cast<int>(state.range(0)));
  engine::Engine engine = LoadEngine(w);
  for (auto _ : state) {
    if (!engine.FullRebuild().ok()) std::abort();
    Result<const core::IntegrationResult*> result = engine.Integrate();
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineFullRebuild)->Arg(50)->Arg(100)->Arg(250);

void BM_EngineIncrementalEdit(benchmark::State& state) {
  workload::Workload w = MakeWorkload(static_cast<int>(state.range(0)));
  engine::Engine engine = LoadEngine(w);
  int last = static_cast<int>(engine.assertions().user_assertions().size()) - 1;
  if (last < 0) std::abort();
  core::Assertion edit = engine.assertions().user_assertions()[last];
  for (auto _ : state) {
    // Un-time the rewind: withdraw the assertion (epoch bump drops the
    // seeded cache) and integrate once to rebuild the cache at n-1 edits.
    state.PauseTiming();
    if (!engine.RetractRelation(last).ok()) std::abort();
    if (!engine.Integrate().ok()) std::abort();
    state.ResumeTiming();
    // Timed: what the DDA waits for after one more Screen 8 assertion.
    if (!engine.AssertRelation(edit.first, edit.second, edit.type).ok()) {
      std::abort();
    }
    Result<const core::IntegrationResult*> result = engine.Integrate();
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineIncrementalEdit)->Arg(50)->Arg(100)->Arg(250);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
