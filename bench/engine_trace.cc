// Runs the full pipeline plus one incremental edit round on the 250-class
// workload and prints the Engine's phase trace as JSON on stdout (all
// diagnostics go to stderr). bench/run_benches.sh embeds the JSON into
// BENCH_engine.json so the recorded numbers carry the phase breakdown and
// the cache-hit/recompute counters alongside the wall times.

#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

using namespace ecrint;  // NOLINT: harness brevity

int main() {
  workload::GeneratorConfig config;
  config.num_concepts = 250;
  config.num_schemas = 2;
  config.concept_coverage = 0.9;
  Result<workload::Workload> workload = workload::GenerateWorkload(config);
  if (!workload.ok()) {
    std::cerr << "generate: " << workload.status() << "\n";
    return 1;
  }

  engine::Engine engine;
  for (const std::string& name : workload->schema_names) {
    Result<const ecr::Schema*> schema = workload->catalog.GetSchema(name);
    if (!schema.ok() || !engine.AddSchema(**schema).ok()) return 1;
  }
  for (const workload::TrueAttributeMatch& match :
       workload->attribute_matches) {
    (void)engine.AssertEquivalence(match.first, match.second);
  }
  for (const workload::TrueObjectRelation& relation :
       workload->object_relations) {
    if (!engine.AssertRelation(relation.first, relation.second,
                               relation.assertion)
             .ok()) {
      return 1;
    }
  }

  // Full pipeline, then one incremental edit round: retract the last
  // assertion (forces a full re-seed on the next Integrate), integrate,
  // re-assert it, integrate again — the last call must take the
  // incremental path.
  if (!engine.Integrate().ok()) return 1;
  int last = static_cast<int>(engine.assertions().user_assertions().size()) - 1;
  core::Assertion edit = engine.assertions().user_assertions()[last];
  if (!engine.RetractRelation(last).ok()) return 1;
  if (!engine.Integrate().ok()) return 1;
  if (!engine.AssertRelation(edit.first, edit.second, edit.type).ok()) {
    return 1;
  }
  if (!engine.Integrate().ok()) return 1;

  const auto& phases = engine.trace().phases();
  auto integrate = phases.find("integrate");
  if (integrate == phases.end() ||
      integrate->second.counters.count("incremental_reuses") == 0) {
    std::cerr << "SHAPE MISMATCH: no incremental reuse recorded\n";
    return 1;
  }
  std::cerr << "SHAPE OK: incremental path exercised\n";
  std::cout << engine.TraceJson() << "\n";
  return 0;
}
