// Regenerates Screens 1-5 (main menu and the schema-collection forms) by
// replaying the paper's sc1 definition through the interactive tool and
// printing the frame at each screen the paper shows.

#include <iostream>
#include <string>
#include <vector>

#include "tui/session.h"

using ecrint::tui::ScreenId;
using ecrint::tui::Session;

namespace {

int failures = 0;

std::string Drive(Session& session, const std::vector<std::string>& lines) {
  std::string frame;
  for (const std::string& line : lines) frame = session.Step(line);
  return frame;
}

void Show(const char* id, const std::string& frame) {
  std::cout << "--- " << id << " ---\n" << frame << "\n";
}

void Expect(bool ok, const std::string& what) {
  std::cout << (ok ? "OK       " : "MISMATCH ") << what << "\n";
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::cout << "Screens 1-5: schema collection\n"
            << "==============================\n\n";
  Session session;

  Show("Screen 1: Main Menu", session.CurrentFrame());
  Expect(session.CurrentFrame().find("< Main Menu >") != std::string::npos,
         "main menu frame rendered");

  std::string frame = Drive(session, {"1"});
  Show("Screen 2: Schema Name Collection Screen", frame);
  Expect(frame.find("Schema Name Collection Screen") != std::string::npos,
         "schema name collection reached");

  frame = Drive(session, {"a sc1", "a Student e", "Name char key",
                          "GPA real", "e", "a Department e",
                          "Dname char key", "e"});
  Show("Screen 3: Structure Information Collection Screen", frame);
  Expect(frame.find("SCHEMA NAME: sc1") != std::string::npos &&
             frame.find("1> Student") != std::string::npos &&
             frame.find("2> Department") != std::string::npos,
         "structures listed with types and attribute counts");

  frame = Drive(session, {"a Majors r", "Student 1 1"});
  Show("Screen 4: Relationship Information Collection Screen", frame);
  Expect(frame.find("Relationship Information Collection Screen") !=
                 std::string::npos &&
             frame.find("[1,1]") != std::string::npos,
         "relationship participants collected with cardinalities");

  Drive(session, {"Department 0 n", "e"});
  // Now at the attribute screen for Majors; revisit Student's attribute
  // screen to reproduce Screen 5's content.
  frame = session.CurrentFrame();
  Show("Screen 5: Attribute Information Collection Screen (Majors)", frame);
  Expect(frame.find("Attribute Information Collection Screen") !=
             std::string::npos,
         "attribute collection screen rendered");

  Drive(session, {"e", "e", "e"});  // attrs done, structures done, schemas done
  Expect(session.screen() == ScreenId::kMainMenu,
         "flow returns to the main menu");
  Expect(session.catalog().Contains("sc1"),
         "sc1 exists with the Figure 3 content");
  const ecrint::ecr::Schema& sc1 = **session.catalog().GetSchema("sc1");
  Expect(sc1.num_objects() == 2 && sc1.num_relationships() == 1,
         "2 entities + 1 relationship collected");

  std::cout << (failures == 0 ? "\nALL SCREENS REPRODUCED\n"
                              : "\nMISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
