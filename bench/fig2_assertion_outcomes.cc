// Regenerates Figure 2 of the paper: the integration outcome of each of the
// five assertion types on a pair of single-entity schemas. Prints the
// paper's expected result next to the measured one and a SHAPE verdict.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "core/assertion_store.h"
#include "core/equivalence.h"
#include "core/integrator.h"
#include "ecr/builder.h"
#include "ecr/printer.h"

using namespace ecrint;        // NOLINT: harness brevity
using namespace ecrint::core;  // NOLINT: harness brevity

namespace {

int failures = 0;

void Verdict(bool ok, const std::string& what) {
  std::cout << "  SHAPE " << (ok ? "OK  " : "MISMATCH ") << what << "\n";
  if (!ok) ++failures;
}

struct Setup {
  ecr::Catalog catalog;
  EquivalenceMap equivalence{*EquivalenceMap::Create(ecr::Catalog(), {})};
  AssertionStore assertions;
};

Setup MakePair(const std::string& name1, const std::string& name2) {
  Setup s;
  ecr::SchemaBuilder b1("sc1");
  b1.Entity(name1)
      .Attr("Id", ecr::Domain::Int(), true)
      .Attr("A1", ecr::Domain::Char());
  if (!s.catalog.AddSchema(*b1.Build()).ok()) std::exit(1);
  ecr::SchemaBuilder b2("sc2");
  b2.Entity(name2)
      .Attr("Id", ecr::Domain::Int(), true)
      .Attr("A2", ecr::Domain::Char());
  if (!s.catalog.AddSchema(*b2.Build()).ok()) std::exit(1);
  s.equivalence = *EquivalenceMap::Create(s.catalog, {"sc1", "sc2"});
  (void)s.equivalence.DeclareEquivalent({"sc1", name1, "Id"},
                                        {"sc2", name2, "Id"});
  return s;
}

IntegrationResult Run(Setup& s) {
  Result<IntegrationResult> result =
      Integrate(s.catalog, {"sc1", "sc2"}, s.equivalence, s.assertions);
  if (!result.ok()) {
    std::cerr << "integration failed: " << result.status() << "\n";
    std::exit(1);
  }
  return *std::move(result);
}

void Case(const char* id, const char* title, const std::string& n1,
          const std::string& n2, AssertionType type,
          const char* paper_expectation,
          const std::function<bool(const IntegrationResult&)>& check) {
  std::cout << "=== " << id << ": " << title << " ===\n";
  Setup s = MakePair(n1, n2);
  (void)s.assertions.Assert({"sc1", n1}, {"sc2", n2}, type).status();
  IntegrationResult result = Run(s);
  std::cout << "  PAPER:    " << paper_expectation << "\n";
  std::cout << "  MEASURED:\n";
  std::string outline = ecr::ToOutline(result.schema);
  size_t pos = 0;
  while (pos < outline.size()) {
    size_t end = outline.find('\n', pos);
    std::cout << "    " << outline.substr(pos, end - pos) << "\n";
    pos = end + 1;
  }
  Verdict(check(result), title);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Figure 2: integration outcome per assertion type\n"
            << "================================================\n\n";

  Case("F2a", "identical domains (equals)", "Department", "Department",
       AssertionType::kEquals,
       "the two Department entity sets merge into E_Department",
       [](const IntegrationResult& r) {
         return r.schema.num_objects() == 1 &&
                r.schema.object(0).name == "E_Department" &&
                r.schema.object(0).origin == ecr::ObjectOrigin::kEquivalent;
       });

  Case("F2b", "contained domains (contains)", "Student", "Grad_student",
       AssertionType::kContains,
       "Grad_student becomes a category of Student",
       [](const IntegrationResult& r) {
         ecr::ObjectId student = r.schema.FindObject("Student");
         ecr::ObjectId grad = r.schema.FindObject("Grad_student");
         return student != ecr::kNoObject && grad != ecr::kNoObject &&
                r.schema.object(grad).kind == ecr::ObjectKind::kCategory &&
                r.schema.object(grad).parents ==
                    std::vector<ecr::ObjectId>{student};
       });

  Case("F2c", "overlapping domains (may be)", "Grad_student", "Instructor",
       AssertionType::kMayBe,
       "derived D_Grad_Inst is created with both as categories",
       [](const IntegrationResult& r) {
         ecr::ObjectId derived = r.schema.FindObject("D_Grad_Inst");
         return derived != ecr::kNoObject &&
                r.schema.object(derived).origin ==
                    ecr::ObjectOrigin::kDerived &&
                r.schema.ChildrenOf(derived).size() == 2;
       });

  Case("F2d", "disjoint integrable", "Secretary", "Engineer",
       AssertionType::kDisjointIntegrable,
       "derived D_Secr_Engi (the 'employee' concept) is created",
       [](const IntegrationResult& r) {
         ecr::ObjectId derived = r.schema.FindObject("D_Secr_Engi");
         return derived != ecr::kNoObject &&
                r.schema.ChildrenOf(derived).size() == 2;
       });

  Case("F2e", "disjoint nonintegrable", "Under_Grad_Student",
       "Full_Professor", AssertionType::kDisjointNonintegrable,
       "both entity sets are kept separate; no derived class",
       [](const IntegrationResult& r) {
         return r.schema.num_objects() == 2 &&
                r.schema.FindObject("Under_Grad_Student") !=
                    ecr::kNoObject &&
                r.schema.FindObject("Full_Professor") != ecr::kNoObject;
       });

  std::cout << (failures == 0 ? "ALL SHAPES MATCH THE PAPER\n"
                              : "SHAPE MISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
