// Ablation P5: how much DDA review effort does each candidate-pair ranking
// save? Compares the paper's attribute-ratio heuristic (fed with true
// attribute equivalences), the weighted SIS-style resemblance of Section 4,
// and a name-only baseline, on synthetic workloads across rename-noise
// levels; also scores the automatic equivalence suggester.

#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/resemblance.h"
#include "engine/engine.h"
#include "heuristics/suggest.h"
#include "paper_fixtures.h"
#include "workload/generator.h"
#include "workload/metrics.h"

using namespace ecrint;        // NOLINT: harness brevity

namespace {

using RefPairs = std::vector<std::pair<core::ObjectRef, core::ObjectRef>>;

workload::Workload Make(double rename_noise, uint64_t seed) {
  workload::GeneratorConfig config;
  config.seed = seed;
  config.num_concepts = 24;
  config.num_schemas = 2;
  config.concept_coverage = 0.85;
  config.rename_noise = rename_noise;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  return *std::move(w);
}

// The DDA's session as the pipeline sees it: the workload schemas loaded
// into an Engine with the ground-truth equivalences declared.
engine::Engine LoadEngine(const workload::Workload& w) {
  engine::Engine engine;
  for (const std::string& name : w.schema_names) {
    Result<const ecr::Schema*> schema = w.catalog.GetSchema(name);
    if (!schema.ok() || !engine.AddSchema(**schema).ok()) std::abort();
  }
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    // Renames can make domains diverge only in edge cases; skip those.
    (void)engine.AssertEquivalence(match.first, match.second);
  }
  return engine;
}

std::string Row(const std::string& method, double noise,
                const workload::RankingQuality& quality) {
  std::string m = method;
  m.resize(22, ' ');
  return m + "  noise=" + FormatFixed(noise, 2) +
         "  P@k=" + FormatFixed(quality.precision_at_k, 3) +
         "  AP=" + FormatFixed(quality.average_precision, 3);
}

}  // namespace

int main() {
  std::cout << "Ablation: candidate-pair ranking quality\n"
            << "========================================\n"
            << "k = number of true cross-schema matches; higher is better.\n"
            << "attribute-ratio uses DDA-confirmed equivalences (the paper's\n"
            << "design); the others work from names alone.\n\n";

  double attribute_ratio_ap_sum = 0;
  double name_only_ap_sum = 0;
  int rows = 0;

  for (double noise : {0.0, 0.25, 0.5}) {
    for (uint64_t seed : {11ull, 22ull, 33ull}) {
      workload::Workload w = Make(noise, seed);
      const std::string& s1 = w.schema_names[0];
      const std::string& s2 = w.schema_names[1];

      // (a) the paper's attribute-ratio ranking, through the Engine.
      engine::Engine engine = LoadEngine(w);
      Result<std::vector<core::ObjectPair>> ranked = engine.RankedPairs(
          s1, s2, core::StructureKind::kObjectClass,
          /*include_zero=*/true);
      if (!ranked.ok()) std::abort();
      RefPairs pairs;
      for (const core::ObjectPair& pair : *ranked) {
        pairs.push_back({pair.first, pair.second});
      }
      workload::RankingQuality ratio_quality =
          workload::EvaluateRanking(w, s1, s2, pairs);

      // (b) weighted SIS-style resemblance.
      heuristics::SynonymDictionary synonyms =
          heuristics::SynonymDictionary::WithBuiltins();
      Result<std::vector<heuristics::WeightedPair>> weighted =
          heuristics::RankByWeightedResemblance(w.catalog, s1, s2, synonyms);
      if (!weighted.ok()) std::abort();
      RefPairs weighted_pairs;
      for (const heuristics::WeightedPair& pair : *weighted) {
        weighted_pairs.push_back({pair.first, pair.second});
      }
      workload::RankingQuality weighted_quality =
          workload::EvaluateRanking(w, s1, s2, weighted_pairs);

      // (c) name-only baseline.
      Result<std::vector<heuristics::WeightedPair>> names =
          heuristics::RankByNameOnly(w.catalog, s1, s2);
      if (!names.ok()) std::abort();
      RefPairs name_pairs;
      for (const heuristics::WeightedPair& pair : *names) {
        name_pairs.push_back({pair.first, pair.second});
      }
      workload::RankingQuality name_quality =
          workload::EvaluateRanking(w, s1, s2, name_pairs);

      std::cout << Row("attribute-ratio", noise, ratio_quality) << "\n";
      std::cout << Row("weighted-resemblance", noise, weighted_quality)
                << "\n";
      std::cout << Row("name-only", noise, name_quality) << "\n";

      // (d) automatic equivalence suggestions vs the attribute truth.
      Result<std::vector<heuristics::EquivalenceSuggestion>> suggestions =
          engine.Suggest(s1, s2, synonyms, 0.8, /*object_threshold=*/0.5);
      if (!suggestions.ok()) std::abort();
      std::vector<std::pair<ecr::AttributePath, ecr::AttributePath>>
          suggested_pairs;
      for (const heuristics::EquivalenceSuggestion& s : *suggestions) {
        suggested_pairs.push_back({s.first, s.second});
      }
      workload::SuggestionQuality sq =
          workload::EvaluateSuggestions(w, s1, s2, suggested_pairs);
      std::cout << "suggestions             noise=" << FormatFixed(noise, 2)
                << "  " << sq.ToString() << "\n\n";

      attribute_ratio_ap_sum += ratio_quality.average_precision;
      name_only_ap_sum += name_quality.average_precision;
      ++rows;
    }
  }

  double ratio_mean = attribute_ratio_ap_sum / rows;
  double name_mean = name_only_ap_sum / rows;
  std::cout << "mean AP: attribute-ratio " << FormatFixed(ratio_mean, 3)
            << " vs name-only " << FormatFixed(name_mean, 3) << "\n";
  bool shape_holds = ratio_mean >= name_mean;
  std::cout << "SHAPE "
            << (shape_holds
                    ? "OK: the paper's equivalence-driven ranking dominates "
                      "the name baseline\n"
                    : "MISMATCH: name baseline beat the attribute ratio\n");
  return shape_holds ? 0 : 1;
}
