// Throughput of the phase-1 substrates: DDL parsing/printing round trips
// and the relational / hierarchical translators.

#include <benchmark/benchmark.h>

#include "ecr/ddl_parser.h"
#include "ecr/printer.h"
#include "translate/hier_to_ecr.h"
#include "translate/rel_to_ecr.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

std::string GeneratedDdl(int concepts) {
  workload::GeneratorConfig config;
  config.num_concepts = concepts;
  config.num_schemas = 1;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  return ecr::ToDdl(**w->catalog.GetSchema(w->schema_names[0]));
}

void BM_DdlParse(benchmark::State& state) {
  std::string ddl = GeneratedDdl(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<ecr::Schema> schema = ecr::ParseSchema(ddl);
    if (!schema.ok()) std::abort();
    benchmark::DoNotOptimize(schema);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ddl.size()));
}
BENCHMARK(BM_DdlParse)->Arg(10)->Arg(100)->Arg(500);

void BM_DdlPrint(benchmark::State& state) {
  std::string ddl = GeneratedDdl(static_cast<int>(state.range(0)));
  Result<ecr::Schema> schema = ecr::ParseSchema(ddl);
  if (!schema.ok()) std::abort();
  for (auto _ : state) {
    std::string out = ecr::ToDdl(*schema);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DdlPrint)->Arg(10)->Arg(100)->Arg(500);

translate::RelationalSchema GeneratedRelational(int tables) {
  translate::RelationalSchema db("gen");
  for (int i = 0; i < tables; ++i) {
    translate::Table table;
    table.name = "t" + std::to_string(i);
    table.columns = {{"id", ecr::Domain::Int(), false},
                     {"payload", ecr::Domain::Char(), false}};
    table.primary_key = {"id"};
    if (i > 0) {
      table.columns.push_back({"ref", ecr::Domain::Int(), true});
      table.foreign_keys = {
          {{"ref"}, "t" + std::to_string(i - 1), {"id"}}};
    }
    if (!db.AddTable(std::move(table)).ok()) std::abort();
  }
  return db;
}

void BM_RelationalToEcr(benchmark::State& state) {
  translate::RelationalSchema db =
      GeneratedRelational(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<ecr::Schema> schema = translate::RelationalToEcr(db);
    if (!schema.ok()) std::abort();
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_RelationalToEcr)->Arg(10)->Arg(100)->Arg(500);

translate::HierarchicalSchema GeneratedHierarchy(int depth) {
  translate::Segment leaf{"s" + std::to_string(depth - 1),
                          {{"k", ecr::Domain::Int(), true}},
                          {}};
  for (int i = depth - 2; i >= 0; --i) {
    translate::Segment parent{"s" + std::to_string(i),
                              {{"k", ecr::Domain::Int(), true}},
                              {leaf}};
    leaf = std::move(parent);
  }
  translate::HierarchicalSchema db("gen");
  if (!db.AddRoot(std::move(leaf)).ok()) std::abort();
  return db;
}

void BM_HierarchicalToEcr(benchmark::State& state) {
  translate::HierarchicalSchema db =
      GeneratedHierarchy(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<ecr::Schema> schema = translate::HierarchicalToEcr(db);
    if (!schema.ok()) std::abort();
    benchmark::DoNotOptimize(schema);
  }
}
BENCHMARK(BM_HierarchicalToEcr)->Arg(10)->Arg(100);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
