// Scalability of phase 3: the assertion closure. Measures asserting chains
// (worst-case propagation depth), dense ground-truth assertion sets, and
// the cost of conflict detection with rollback.
//
// The kernel is a change-driven worklist over bitset-packed relation rows,
// so cost tracks the number of cells that actually narrow, not the N^3
// triple loop of a full path-consistency recompute. The chain workload
// narrows Θ(N^2) cells (every pair becomes comparable), so BM_AssertChain's
// ->Complexity() fit lands around N^2 — sub-cubic is the invariant the
// bench CI suite (tools/ci.sh --suite bench) guards via BM_AssertChain/64.

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/assertion_store.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

using core::AssertionStore;
using core::AssertionType;
using core::ObjectRef;

ObjectRef Ref(int i) { return {"s" + std::to_string(i % 7), "O" + std::to_string(i)}; }

// A containment chain O0 ⊆ O1 ⊆ ... ⊆ On: every new link derives relations
// to all previous objects.
void BM_AssertChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AssertionStore store;
    for (int i = 0; i + 1 < n; ++i) {
      benchmark::DoNotOptimize(
          store.Assert(Ref(i), Ref(i + 1), AssertionType::kContainedIn));
    }
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AssertChain)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

// Replaying a synthetic workload's full ground-truth assertion set.
void BM_AssertGroundTruth(benchmark::State& state) {
  workload::GeneratorConfig config;
  config.num_concepts = static_cast<int>(state.range(0));
  config.num_schemas = 3;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  for (auto _ : state) {
    core::AssertionStore store = bench::TruthAssertions(*w);
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_AssertGroundTruth)->Arg(10)->Arg(25)->Arg(50);

// Conflict detection cost: the rejected assertion must snapshot, propagate
// to the contradiction, and roll back.
void BM_ConflictDetection(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AssertionStore store;
  for (int i = 0; i + 1 < n; ++i) {
    (void)store.Assert(Ref(i), Ref(i + 1), AssertionType::kContainedIn)
        .status();
  }
  for (auto _ : state) {
    Result<core::ConflictReport> r = store.Assert(
        Ref(0), Ref(n - 1), AssertionType::kDisjointNonintegrable);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ConflictDetection)->Arg(8)->Arg(32)->Arg(64);

// Bulk seeding across independent constraint clusters: the batch entry
// point closes each island's worklist on its own ThreadPool worker and
// merges the scratch stores. Arg = number of 12-object chain islands.
void BM_AssertBatchClustered(benchmark::State& state) {
  int islands = static_cast<int>(state.range(0));
  constexpr int kPerIsland = 12;
  std::vector<core::Assertion> batch;
  for (int g = 0; g < islands; ++g) {
    for (int m = 0; m + 1 < kPerIsland; ++m) {
      batch.push_back(core::Assertion{
          ObjectRef{"isle" + std::to_string(g), "O" + std::to_string(m)},
          ObjectRef{"isle" + std::to_string(g), "O" + std::to_string(m + 1)},
          AssertionType::kContainedIn});
    }
  }
  for (auto _ : state) {
    AssertionStore store;
    benchmark::DoNotOptimize(
        store.AssertBatch(batch, &common::ThreadPool::Shared()));
  }
}
BENCHMARK(BM_AssertBatchClustered)->Arg(1)->Arg(4)->Arg(16);

// Querying derived facts over a populated store.
void BM_DerivedFacts(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  AssertionStore store;
  for (int i = 0; i + 1 < n; ++i) {
    (void)store.Assert(Ref(i), Ref(i + 1), AssertionType::kContainedIn)
        .status();
  }
  for (auto _ : state) {
    std::vector<AssertionStore::DerivedFact> facts = store.DerivedFacts();
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_DerivedFacts)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
