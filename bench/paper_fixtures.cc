#include "paper_fixtures.h"

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/thread_pool.h"
#include "ecr/ddl_parser.h"

namespace ecrint::bench {

namespace {

constexpr char kUniversityDdl[] = R"(
schema sc1 {
  entity Student {
    Name: char key;
    GPA: real;
  }
  entity Department {
    Dname: char key;
  }
  relationship Majors (Student [1,1], Department [0,n]);
}
schema sc2 {
  entity Grad_student {
    Name: char key;
    GPA: real;
    Support_type: char;
  }
  entity Faculty {
    Name: char key;
    Rank: char;
  }
  entity Department {
    Dname: char key;
  }
  relationship Study (Grad_student [1,1], Department [0,n]);
  relationship Works (Faculty [1,1], Department [1,n]);
}
)";

void Die(const Status& status) {
  std::cerr << "fixture error: " << status << "\n";
  std::exit(1);
}

void Check(const Status& status) {
  if (!status.ok()) Die(status);
}

}  // namespace

ecr::Catalog UniversityCatalog() {
  ecr::Catalog catalog;
  Result<std::vector<std::string>> names =
      ecr::ParseInto(catalog, kUniversityDdl);
  if (!names.ok()) Die(names.status());
  return catalog;
}

core::EquivalenceMap UniversityEquivalences(const ecr::Catalog& catalog,
                                            bool include_faculty_name) {
  Result<core::EquivalenceMap> map =
      core::EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  if (!map.ok()) Die(map.status());
  Check(map->DeclareEquivalent({"sc1", "Student", "Name"},
                               {"sc2", "Grad_student", "Name"}));
  Check(map->DeclareEquivalent({"sc1", "Student", "GPA"},
                               {"sc2", "Grad_student", "GPA"}));
  Check(map->DeclareEquivalent({"sc1", "Department", "Dname"},
                               {"sc2", "Department", "Dname"}));
  if (include_faculty_name) {
    Check(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                 {"sc2", "Faculty", "Name"}));
  }
  return *std::move(map);
}

core::AssertionStore UniversityAssertions() {
  core::AssertionStore store;
  Check(store
            .Assert({"sc1", "Department"}, {"sc2", "Department"},
                    core::AssertionType::kEquals)
            .status());
  Check(store
            .Assert({"sc1", "Student"}, {"sc2", "Grad_student"},
                    core::AssertionType::kContains)
            .status());
  Check(store
            .Assert({"sc1", "Student"}, {"sc2", "Faculty"},
                    core::AssertionType::kDisjointIntegrable)
            .status());
  Check(store
            .Assert({"sc1", "Majors"}, {"sc2", "Study"},
                    core::AssertionType::kEquals)
            .status());
  return store;
}

core::EquivalenceMap TruthEquivalences(const workload::Workload& workload) {
  Result<core::EquivalenceMap> map =
      core::EquivalenceMap::Create(workload.catalog, workload.schema_names);
  if (!map.ok()) Die(map.status());
  for (const workload::TrueAttributeMatch& match :
       workload.attribute_matches) {
    // Renames can make domains diverge only in edge cases; skip those.
    (void)map->DeclareEquivalent(match.first, match.second);
  }
  return *std::move(map);
}

core::AssertionStore TruthAssertions(const workload::Workload& workload) {
  core::AssertionStore store;
  std::vector<core::Assertion> batch;
  batch.reserve(workload.object_relations.size());
  for (const workload::TrueObjectRelation& relation :
       workload.object_relations) {
    batch.push_back(
        core::Assertion{relation.first, relation.second, relation.assertion});
  }
  Result<core::ConflictReport> r =
      store.AssertBatch(batch, &common::ThreadPool::Shared());
  if (!r.ok()) Die(r.status());  // ground truth is consistent by design
  return store;
}

}  // namespace ecrint::bench
