// Regenerates Screens 10-12 and walks every arc of Figure 6's screen
// control-flow graph for the viewing phase: Object Class Screen ->
// Entity/Category/Relationship/Attribute screens -> Component Attribute /
// Equivalent / Participating Objects screens and back.

#include <iostream>
#include <string>
#include <vector>

#include "tui/session.h"

using ecrint::tui::ScreenId;
using ecrint::tui::Session;

namespace {

int failures = 0;

std::string Drive(Session& session, const std::vector<std::string>& lines) {
  std::string frame;
  for (const std::string& line : lines) frame = session.Step(line);
  return frame;
}

void Show(const char* id, const std::string& frame) {
  std::cout << "--- " << id << " ---\n" << frame << "\n";
}

void Expect(bool ok, const std::string& what) {
  std::cout << (ok ? "OK       " : "MISMATCH ") << what << "\n";
  if (!ok) ++failures;
}

void Arc(Session& session, const std::string& input, ScreenId expected,
         const std::string& label) {
  session.Step(input);
  Expect(session.screen() == expected, "Figure 6 arc: " + label);
}

}  // namespace

int main() {
  std::cout << "Screens 10-12 and the Figure 6 control flow\n"
            << "===========================================\n\n";

  // Rebuild the whole session: schemas, equivalences, assertions.
  Session session;
  Drive(session, {
      "1", "a sc1", "a Student e", "Name char key", "GPA real", "e",
      "a Department e", "Dname char key", "e", "a Majors r", "Student 1 1",
      "Department 0 n", "e", "e", "e",
      "a sc2", "a Grad_student e", "Name char key", "GPA real",
      "Support_type char", "e", "a Faculty e", "Name char key", "Rank char",
      "e", "a Department e", "Dname char key", "e", "a Study r",
      "Grad_student 1 1", "Department 0 n", "e", "e",
      "a Works r", "Faculty 1 1", "Department 1 n", "e", "e", "e", "e"});
  Drive(session, {"2", "sc1 sc2", "Student Grad_student", "a Name Name",
                  "a GPA GPA", "e", "Department Department", "a Dname Dname",
                  "e", "e"});
  Drive(session, {"3", "1 1", "2 3", "6 4", "e"});
  Drive(session, {"5", "1 1", "e"});

  std::string frame = Drive(session, {"6"});
  Show("Screen 10: Object Class Screen", frame);
  Expect(session.screen() == ScreenId::kObjectClassScreen,
         "task 6 opens the Object Class Screen");
  Expect(frame.find("Entities(2)") != std::string::npos &&
             frame.find("Categories(3)") != std::string::npos &&
             frame.find("Relationships(2)") != std::string::npos,
         "Screen 10 counts: Entities(2) Categories(3) Relationships(2)");
  Expect(frame.find("E_Department") != std::string::npos &&
             frame.find("D_Stud_Facu") != std::string::npos,
         "Screen 10 lists E_Department and D_Stud_Facu");

  frame = Drive(session, {"m Student", "c"});
  Show("Screen 11: Category Screen for Student", frame);
  Expect(frame.find("D_Stud_Facu") != std::string::npos &&
             frame.find("Grad_student") != std::string::npos,
         "Screen 11: parent D_Stud_Facu, child Grad_student");

  Arc(session, "v", ScreenId::kEquivalentScreen,
      "Category Screen -> Equivalent Screen");
  Arc(session, "", ScreenId::kCategoryScreen,
      "Equivalent Screen -> back");
  Arc(session, "", ScreenId::kObjectClassScreen,
      "Category Screen -> Object Class Screen");

  frame = Drive(session, {"a"});
  Show("Attribute Screen for Student", frame);
  Expect(session.screen() == ScreenId::kAttributeScreen &&
             frame.find("D_Name") != std::string::npos,
         "Attribute Screen lists derived D_Name");

  frame = Drive(session, {"c D_Name"});
  Show("Screen 12a: Component Attribute Screen (first component)", frame);
  Expect(frame.find("original Object Name: Student") != std::string::npos &&
             frame.find("original Schema Name: sc1") != std::string::npos,
         "Screen 12a: first component is sc1.Student.Name");

  frame = Drive(session, {""});
  Show("Screen 12b: Component Attribute Screen (second component)", frame);
  Expect(frame.find("original Object Name: Grad_student") !=
                 std::string::npos &&
             frame.find("original Schema Name: sc2") != std::string::npos,
         "Screen 12b: second component is sc2.Grad_student.Name");

  Arc(session, "", ScreenId::kAttributeScreen,
      "Component Attribute Screen -> Attribute Screen");
  Arc(session, "", ScreenId::kObjectClassScreen,
      "Attribute Screen -> Object Class Screen");

  // Entity screen arc on a derived entity.
  Drive(session, {"m D_Stud_Facu"});
  Arc(session, "en", ScreenId::kEntityScreen,
      "Object Class Screen -> Entity Screen");
  frame = session.CurrentFrame();
  Expect(frame.find("Student") != std::string::npos &&
             frame.find("Faculty") != std::string::npos,
         "Entity Screen lists D_Stud_Facu's children");
  Arc(session, "", ScreenId::kObjectClassScreen,
      "Entity Screen -> Object Class Screen");

  // Relationship arcs.
  Arc(session, "r E_Majo_Stud", ScreenId::kRelationshipScreen,
      "Object Class Screen -> Relationship Screen");
  Arc(session, "p", ScreenId::kParticipatingScreen,
      "Relationship Screen -> Participating Objects Screen");
  frame = session.CurrentFrame();
  Show("Participating Objects In Relationship Screen", frame);
  Expect(frame.find("Student") != std::string::npos &&
             frame.find("E_Department") != std::string::npos,
         "participants are Student and E_Department");
  Arc(session, "", ScreenId::kRelationshipScreen,
      "Participating Objects Screen -> Relationship Screen");
  Arc(session, "v", ScreenId::kEquivalentScreen,
      "Relationship Screen -> Equivalent Screen");
  frame = session.CurrentFrame();
  Expect(frame.find("sc1.Majors") != std::string::npos &&
             frame.find("sc2.Study") != std::string::npos,
         "Equivalent Screen lists the merged relationship's sources");
  Arc(session, "", ScreenId::kRelationshipScreen,
      "Equivalent Screen -> Relationship Screen");
  Arc(session, "", ScreenId::kObjectClassScreen,
      "Relationship Screen -> Object Class Screen");
  Arc(session, "x", ScreenId::kMainMenu,
      "Object Class Screen -> exit the viewing phase");

  std::cout << (failures == 0
                    ? "\nALL SCREENS AND FIGURE 6 ARCS REPRODUCED\n"
                    : "\nMISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
