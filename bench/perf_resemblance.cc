// Scalability of phase 2: building the OCS matrix and the resemblance
// ranking as the schemas grow. The paper's tool did this interactively on
// schemas of a dozen objects; these sweeps show the heuristic stays
// interactive-speed far beyond that.

#include <benchmark/benchmark.h>

#include "core/resemblance.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

workload::Workload MakeWorkload(int concepts) {
  workload::GeneratorConfig config;
  config.num_concepts = concepts;
  config.num_schemas = 2;
  config.concept_coverage = 0.9;
  Result<workload::Workload> workload = workload::GenerateWorkload(config);
  if (!workload.ok()) std::abort();
  return *std::move(workload);
}

void BM_OcsMatrixBuild(benchmark::State& state) {
  workload::Workload w = MakeWorkload(static_cast<int>(state.range(0)));
  core::EquivalenceMap equivalence = bench::TruthEquivalences(w);
  for (auto _ : state) {
    Result<core::OcsMatrix> matrix = core::OcsMatrix::Create(
        w.catalog, equivalence, w.schema_names[0], w.schema_names[1],
        core::StructureKind::kObjectClass);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OcsMatrixBuild)->Arg(10)->Arg(50)->Arg(100)->Arg(250)
    ->Complexity(benchmark::oNSquared);

void BM_RankedPairs(benchmark::State& state) {
  workload::Workload w = MakeWorkload(static_cast<int>(state.range(0)));
  core::EquivalenceMap equivalence = bench::TruthEquivalences(w);
  Result<core::OcsMatrix> matrix = core::OcsMatrix::Create(
      w.catalog, equivalence, w.schema_names[0], w.schema_names[1],
      core::StructureKind::kObjectClass);
  if (!matrix.ok()) std::abort();
  for (auto _ : state) {
    std::vector<core::ObjectPair> ranked = matrix->RankedPairs();
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_RankedPairs)->Arg(10)->Arg(50)->Arg(100)->Arg(250);

void BM_EquivalenceDeclare(benchmark::State& state) {
  workload::Workload w = MakeWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::EquivalenceMap equivalence = bench::TruthEquivalences(w);
    benchmark::DoNotOptimize(equivalence);
  }
}
BENCHMARK(BM_EquivalenceDeclare)->Arg(10)->Arg(50)->Arg(100);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
