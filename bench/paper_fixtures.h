#ifndef ECRINT_BENCH_PAPER_FIXTURES_H_
#define ECRINT_BENCH_PAPER_FIXTURES_H_

// Shared fixtures for the paper-reproduction harnesses: the university
// example of Figures 3-5 and Screens 6-12, and helpers that turn a synthetic
// workload's ground truth into DDA input for the scalability benches.

#include "core/assertion_store.h"
#include "core/equivalence.h"
#include "ecr/catalog.h"
#include "workload/generator.h"

namespace ecrint::bench {

// Schemas sc1 (Figure 3) and sc2 (Figure 4).
ecr::Catalog UniversityCatalog();

// The DDA's equivalence classes. With `include_faculty_name` the class of
// Name also contains sc2.Faculty.Name, which is the state Screen 8's 0.3333
// ratio reflects; without it the Figure 5 / Screen 12 session is reproduced
// (D_Name has exactly the two components the paper shows).
core::EquivalenceMap UniversityEquivalences(const ecr::Catalog& catalog,
                                            bool include_faculty_name);

// The Screen 8 answers (1, 3, 4) plus the relationship merge Majors=Study.
core::AssertionStore UniversityAssertions();

// DDA input reconstructed from a synthetic workload's ground truth.
core::EquivalenceMap TruthEquivalences(const workload::Workload& workload);
core::AssertionStore TruthAssertions(const workload::Workload& workload);

}  // namespace ecrint::bench

#endif  // ECRINT_BENCH_PAPER_FIXTURES_H_
