// Ablation P4: the paper claims its methodology is unique in performing
// n-ary integration. Compares the n-ary driver (all schemas in one pass)
// against the binary ladder (fold two at a time, rewriting DDA input
// through the intermediate mappings) on identical inputs.

#include <benchmark/benchmark.h>

#include "core/integrator.h"
#include "core/nary.h"
#include "paper_fixtures.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

struct Prepared {
  workload::Workload workload;
  core::EquivalenceMap equivalence;
  core::AssertionStore assertions;
};

Prepared Prepare(int schemas) {
  workload::GeneratorConfig config;
  config.num_concepts = 12;
  config.num_schemas = schemas;
  config.concept_coverage = 0.8;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  if (!w.ok()) std::abort();
  core::EquivalenceMap equivalence = bench::TruthEquivalences(*w);
  core::AssertionStore assertions = bench::TruthAssertions(*w);
  return {*std::move(w), std::move(equivalence), std::move(assertions)};
}

void BM_NaryIntegration(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<core::IntegrationResult> result = core::Integrate(
        p.workload.catalog, p.workload.schema_names, p.equivalence,
        p.assertions);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NaryIntegration)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

void BM_BinaryLadder(benchmark::State& state) {
  Prepared p = Prepare(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<core::IntegrationResult> result = core::IntegrateBinaryLadder(
        p.workload.catalog, p.workload.schema_names, p.equivalence,
        p.assertions);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BinaryLadder)->Arg(2)->Arg(3)->Arg(4)->Arg(6);

}  // namespace
}  // namespace ecrint

BENCHMARK_MAIN();
