// Regenerates Screen 7 (Equivalence Class Creation and Deletion Screen):
// the attribute tables of sc1.Student and sc2.Grad_student with their
// equivalence class numbers after the DDA merges the Name classes.

#include <iostream>
#include <string>

#include "core/equivalence.h"
#include "paper_fixtures.h"
#include "tui/screen.h"

using namespace ecrint;        // NOLINT: harness brevity
using namespace ecrint::core;  // NOLINT: harness brevity

int main() {
  std::cout << "Screen 7: equivalence class creation and deletion\n"
            << "=================================================\n\n";

  ecr::Catalog catalog = bench::UniversityCatalog();
  // Reproduce the screen's snapshot: only the Name classes merged so far
  // (the class also reaches sc2.Faculty.Name, as the paper's text says may
  // happen "at the end of this phase").
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog,
                                                       {"sc1", "sc2"});
  (void)equivalence.DeclareEquivalent({"sc1", "Student", "Name"},
                                      {"sc2", "Grad_student", "Name"});
  (void)equivalence.DeclareEquivalent({"sc1", "Student", "Name"},
                                      {"sc2", "Faculty", "Name"});

  tui::Screen screen(18, 78);
  screen.Box(0, 0, 17, 77);
  screen.PutCentered(1, "EQUIVALENCE SPECIFICATION");
  screen.PutCentered(2, "< Equivalence Class Creation and Deletion Screen >");
  screen.HorizontalLine(3, 1, 76);

  auto table = [&](const ObjectRef& ref, int col) {
    screen.Put(4, col, "(" + ref.ToString() + ")");
    std::vector<std::vector<std::string>> rows;
    int index = 1;
    for (const AttributeClassEntry& entry : equivalence.EntriesFor(ref)) {
      rows.push_back({std::to_string(index++) + "> " + entry.path.attribute,
                      std::to_string(entry.eq_class)});
    }
    tui::DrawTable(screen, 6, col, {{"Attribute Name", 20}, {"Eq_class #", 10}},
                   rows);
  };
  table({"sc1", "Student"}, 3);
  table({"sc2", "Grad_student"}, 41);
  screen.Put(15, 2,
             "(S)croll  (A)dd or (D)elete from equiv. class  (E)xit =>");
  std::cout << screen.Render() << "\n";

  std::cout << "PAPER: sc1.Student.Name and sc2.Grad_student.Name share one "
               "equivalence class;\n"
            << "       GPA and Support_type remain in their own classes.\n\n";

  int failures = 0;
  auto expect = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "OK       " : "MISMATCH ") << what << "\n";
    if (!ok) ++failures;
  };
  expect(equivalence.AreEquivalent({"sc1", "Student", "Name"},
                                   {"sc2", "Grad_student", "Name"}),
         "Name classes merged");
  expect(*equivalence.ClassOf({"sc2", "Grad_student", "Name"}) ==
             *equivalence.ClassOf({"sc1", "Student", "Name"}),
         "merged class carries the earlier class number");
  expect(!equivalence.AreEquivalent({"sc1", "Student", "GPA"},
                                    {"sc2", "Grad_student", "GPA"}),
         "GPA classes distinct in this snapshot");
  expect(equivalence.ClassMembers({"sc1", "Student", "Name"}).size() == 3,
         "class lists sc1.Student.Name, sc2.Faculty.Name, "
         "sc2.Grad_student.Name (paper's end-of-phase example)");
  std::cout << (failures == 0 ? "\nALL CHECKS MATCH SCREEN 7\n"
                              : "\nMISMATCHES PRESENT\n");
  return failures == 0 ? 0 : 1;
}
