#include "heuristics/synonyms.h"

#include <gtest/gtest.h>

namespace ecrint::heuristics {
namespace {

TEST(SynonymsTest, BasicGroups) {
  SynonymDictionary dict;
  dict.AddSynonyms({"salary", "pay", "wage"});
  EXPECT_TRUE(dict.AreSynonyms("salary", "pay"));
  EXPECT_TRUE(dict.AreSynonyms("pay", "wage"));
  EXPECT_FALSE(dict.AreSynonyms("salary", "name"));
  // A word is its own synonym even if unknown.
  EXPECT_TRUE(dict.AreSynonyms("anything", "anything"));
}

TEST(SynonymsTest, CaseInsensitive) {
  SynonymDictionary dict;
  dict.AddSynonyms({"Salary", "PAY"});
  EXPECT_TRUE(dict.AreSynonyms("salary", "pay"));
  EXPECT_TRUE(dict.AreSynonyms("SALARY", "Pay"));
}

TEST(SynonymsTest, GroupsMergeTransitively) {
  SynonymDictionary dict;
  dict.AddSynonyms({"a", "b"});
  dict.AddSynonyms({"c", "d"});
  EXPECT_FALSE(dict.AreSynonyms("a", "c"));
  dict.AddSynonyms({"b", "c"});
  EXPECT_TRUE(dict.AreSynonyms("a", "d"));
}

TEST(SynonymsTest, AntonymsVeto) {
  SynonymDictionary dict;
  dict.AddAntonyms("min", "max");
  EXPECT_TRUE(dict.AreAntonyms("min", "max"));
  EXPECT_TRUE(dict.AreAntonyms("MAX", "Min"));
  EXPECT_FALSE(dict.AreAntonyms("min", "low"));
  EXPECT_DOUBLE_EQ(dict.Similarity("min", "max"), 0.0);
}

TEST(SynonymsTest, SimilarityScoresTokens) {
  SynonymDictionary dict;
  dict.AddSynonyms({"salary", "pay"});
  EXPECT_DOUBLE_EQ(dict.Similarity("salary", "pay"), 1.0);
  // "Emp_Salary" vs "Emp_Pay": both tokens match.
  EXPECT_DOUBLE_EQ(dict.Similarity("Emp_Salary", "Emp_Pay"), 1.0);
  // "Emp_Salary" vs "Pay": one of 3 total tokens matches -> 2*1/3.
  EXPECT_NEAR(dict.Similarity("Emp_Salary", "Pay"), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(dict.Similarity("Foo", "Bar"), 0.0);
}

TEST(SynonymsTest, AntonymTokensVetoWholeIdentifier) {
  SynonymDictionary dict;
  dict.AddAntonyms("start", "end");
  EXPECT_DOUBLE_EQ(dict.Similarity("start_date", "end_date"), 0.0);
}

TEST(SynonymsTest, BuiltinsKnowSchemaVocabulary) {
  SynonymDictionary dict = SynonymDictionary::WithBuiltins();
  EXPECT_TRUE(dict.AreSynonyms("salary", "pay"));
  EXPECT_TRUE(dict.AreSynonyms("dept", "department"));
  EXPECT_TRUE(dict.AreSynonyms("faculty", "instructor"));
  EXPECT_TRUE(dict.AreAntonyms("debit", "credit"));
}

}  // namespace
}  // namespace ecrint::heuristics
