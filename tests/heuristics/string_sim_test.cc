#include "heuristics/string_sim.h"

#include <gtest/gtest.h>

namespace ecrint::heuristics {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(LevenshteinTest, MetricProperties) {
  const char* words[] = {"name", "dname", "ename", "gpa", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      // Symmetry and identity.
      EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
      EXPECT_EQ(LevenshteinDistance(a, a), 0);
      for (const char* c : words) {
        // Triangle inequality.
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

TEST(LevenshteinTest, SimilarityNormalized) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("name", "dname"), 0.8, 1e-9);
}

TEST(DiceTest, BigramOverlap) {
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("night", "night"), 1.0);
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("night", "nacht"),
                   2.0 * 1 / (4 + 4));  // only "ht" shared
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("ab", "cd"), 0.0);
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("a", "ab"), 0.0);  // too short
}

TEST(DiceTest, RepeatedBigramsNotOvercounted) {
  // "aaa" has bigrams {aa, aa}; "aa" has {aa}: shared must be 1, not 2.
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("aaa", "aa"), 2.0 * 1 / (2 + 1));
}

TEST(PrefixTest, CommonPrefix) {
  EXPECT_DOUBLE_EQ(CommonPrefixSimilarity("employee", "emp"), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(CommonPrefixSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(CommonPrefixSimilarity("abc", "xbc"), 0.0);
  EXPECT_DOUBLE_EQ(CommonPrefixSimilarity("", "abc"), 0.0);
}

TEST(NameSimilarityTest, CanonicalizesCaseAndSeparators) {
  EXPECT_DOUBLE_EQ(NameSimilarity("Grad_Student", "gradstudent"), 1.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("Dept-Name", "dept_name"), 1.0);
}

TEST(NameSimilarityTest, TruncationAbbreviationScoresHigh) {
  EXPECT_DOUBLE_EQ(NameSimilarity("Emp", "Employee"), 0.9);
  EXPECT_DOUBLE_EQ(NameSimilarity("Depart", "Department"), 0.9);
  // "Dept" is not a prefix of "Department", so it falls back to the
  // distance-based scores, which stay low; the synonym dictionary is the
  // right tool for contraction abbreviations.
  EXPECT_LT(NameSimilarity("Department", "Dept"), 0.9);
}

TEST(NameSimilarityTest, RelatedNamesBeatUnrelated) {
  EXPECT_GT(NameSimilarity("Student", "Students"),
            NameSimilarity("Student", "Invoice"));
  EXPECT_GT(NameSimilarity("Dname", "Name"), NameSimilarity("Dname", "GPA"));
}

}  // namespace
}  // namespace ecrint::heuristics
