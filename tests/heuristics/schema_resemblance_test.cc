#include "heuristics/schema_resemblance.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::heuristics {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

void AddSchema(ecr::Catalog& catalog, const std::string& name,
               const std::vector<std::string>& entities) {
  SchemaBuilder b(name);
  for (const std::string& entity : entities) {
    b.Entity(entity).Attr("Id", Domain::Int(), true);
  }
  ASSERT_TRUE(catalog.AddSchema(*b.Build()).ok());
}

TEST(SchemaResemblanceTest, IdenticalSchemasScoreHighest) {
  ecr::Catalog catalog;
  AddSchema(catalog, "a", {"Person", "Course"});
  AddSchema(catalog, "b", {"Person", "Course"});
  AddSchema(catalog, "c", {"Invoice", "Shipment"});
  SynonymDictionary dict;
  Result<double> same = SchemaResemblance(catalog, "a", "b", dict);
  Result<double> different = SchemaResemblance(catalog, "a", "c", dict);
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(different.ok());
  EXPECT_GT(*same, *different);
  EXPECT_GT(*same, 0.5);
}

TEST(SchemaResemblanceTest, PickIntegrationOrderPairsSimilarFirst) {
  ecr::Catalog catalog;
  AddSchema(catalog, "uni1", {"Student", "Course", "Professor"});
  AddSchema(catalog, "uni2", {"Student", "Course", "Department"});
  AddSchema(catalog, "shop", {"Invoice", "Customer"});
  SynonymDictionary dict;
  Result<std::vector<std::string>> order = PickIntegrationOrder(
      catalog, {"shop", "uni1", "uni2"}, dict);
  ASSERT_TRUE(order.ok()) << order.status();
  ASSERT_EQ(order->size(), 3u);
  // The two university views pair up first; the shop comes last.
  EXPECT_EQ((*order)[2], "shop");
}

TEST(SchemaResemblanceTest, SmallInputsPassThrough) {
  ecr::Catalog catalog;
  AddSchema(catalog, "only", {"X"});
  SynonymDictionary dict;
  Result<std::vector<std::string>> order =
      PickIntegrationOrder(catalog, {"only"}, dict);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, std::vector<std::string>{"only"});
}

TEST(SchemaResemblanceTest, UnknownSchemaFails) {
  ecr::Catalog catalog;
  AddSchema(catalog, "a", {"X"});
  SynonymDictionary dict;
  EXPECT_FALSE(SchemaResemblance(catalog, "a", "nope", dict).ok());
}

}  // namespace
}  // namespace ecrint::heuristics
