#include "heuristics/suggest.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::heuristics {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

ecr::Catalog PayrollCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("hr");
  b1.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char())
      .Attr("Salary", Domain::Real());
  b1.Entity("Department").Attr("Dno", Domain::Int(), true);
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("payroll");
  b2.Entity("Emp")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Label", Domain::Char())
      .Attr("Pay", Domain::Real());
  b2.Entity("Invoice").Attr("Total", Domain::Real(), true);
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

TEST(SuggestTest, FindsExactAndSynonymMatches) {
  ecr::Catalog catalog = PayrollCatalog();
  SynonymDictionary dict = SynonymDictionary::WithBuiltins();
  Result<std::vector<EquivalenceSuggestion>> suggestions =
      SuggestAttributeEquivalences(catalog, "hr", "payroll", dict, 0.7);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status();
  auto has = [&](const std::string& a, const std::string& b) {
    for (const EquivalenceSuggestion& s : *suggestions) {
      if (s.first.ToString() == a && s.second.ToString() == b) return true;
    }
    return false;
  };
  // Exact: Ssn == Ssn.
  EXPECT_TRUE(has("hr.Employee.Ssn", "payroll.Emp.Ssn"));
  // Synonyms: Salary ~ Pay, Name ~ Label.
  EXPECT_TRUE(has("hr.Employee.Salary", "payroll.Emp.Pay"));
  EXPECT_TRUE(has("hr.Employee.Name", "payroll.Emp.Label"));
  // Incomparable domains are never suggested (Ssn int vs Total real).
  EXPECT_FALSE(has("hr.Employee.Ssn", "payroll.Invoice.Total"));
}

TEST(SuggestTest, SortedByScoreAndThresholded) {
  ecr::Catalog catalog = PayrollCatalog();
  SynonymDictionary dict = SynonymDictionary::WithBuiltins();
  Result<std::vector<EquivalenceSuggestion>> suggestions =
      SuggestAttributeEquivalences(catalog, "hr", "payroll", dict, 0.7);
  ASSERT_TRUE(suggestions.ok());
  for (size_t i = 1; i < suggestions->size(); ++i) {
    EXPECT_GE((*suggestions)[i - 1].score, (*suggestions)[i].score);
  }
  for (const EquivalenceSuggestion& s : *suggestions) {
    EXPECT_GE(s.score, 0.7);
    EXPECT_FALSE(s.rationale.empty());
  }
  // A prohibitive threshold yields only the perfect matches.
  Result<std::vector<EquivalenceSuggestion>> strict =
      SuggestAttributeEquivalences(catalog, "hr", "payroll", dict, 1.01);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->empty());
}

TEST(SuggestTest, WeightedResemblanceRanksTrueMatchFirst) {
  ecr::Catalog catalog = PayrollCatalog();
  SynonymDictionary dict = SynonymDictionary::WithBuiltins();
  Result<std::vector<WeightedPair>> ranked =
      RankByWeightedResemblance(catalog, "hr", "payroll", dict);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_EQ(ranked->size(), 4u);  // 2 x 2 structures
  EXPECT_EQ((*ranked)[0].first.object, "Employee");
  EXPECT_EQ((*ranked)[0].second.object, "Emp");
  EXPECT_GT((*ranked)[0].score, (*ranked)[1].score);
}

TEST(SuggestTest, NameOnlyBaselineIgnoresAttributes) {
  ecr::Catalog catalog;
  SchemaBuilder b1("a");
  // Same name, totally different attributes.
  b1.Entity("Widget").Attr("X", Domain::Int(), true);
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("b");
  b2.Entity("Widget").Attr("Totally_Different", Domain::Char(), true);
  b2.Entity("Gadget").Attr("X", Domain::Int(), true);
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  Result<std::vector<WeightedPair>> ranked = RankByNameOnly(catalog, "a", "b");
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ((*ranked)[0].second.object, "Widget");
  EXPECT_DOUBLE_EQ((*ranked)[0].score, 1.0);
}

TEST(SuggestTest, MaxResultsReturnsBestPrefix) {
  ecr::Catalog catalog = PayrollCatalog();
  SynonymDictionary dict = SynonymDictionary::WithBuiltins();
  Result<std::vector<EquivalenceSuggestion>> all =
      SuggestAttributeEquivalences(catalog, "hr", "payroll", dict, 0.7);
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->size(), 2u);
  Result<std::vector<EquivalenceSuggestion>> top =
      SuggestAttributeEquivalences(catalog, "hr", "payroll", dict, 0.7,
                                   /*object_threshold=*/0.0,
                                   /*max_results=*/2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  for (size_t i = 0; i < top->size(); ++i) {
    EXPECT_EQ((*top)[i].first.ToString(), (*all)[i].first.ToString());
    EXPECT_EQ((*top)[i].second.ToString(), (*all)[i].second.ToString());
    EXPECT_DOUBLE_EQ((*top)[i].score, (*all)[i].score);
  }
}

TEST(SuggestTest, AssertionCandidatesMatchRankedPrefix) {
  ecr::Catalog catalog = PayrollCatalog();
  Result<core::EquivalenceMap> map =
      core::EquivalenceMap::Create(catalog, {"hr", "payroll"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->DeclareEquivalent({"hr", "Employee", "Ssn"},
                                     {"payroll", "Emp", "Ssn"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"hr", "Employee", "Salary"},
                                     {"payroll", "Emp", "Pay"})
                  .ok());
  Result<std::vector<core::ObjectPair>> full = core::RankObjectPairs(
      catalog, *map, "hr", "payroll", core::StructureKind::kObjectClass);
  ASSERT_TRUE(full.ok());
  Result<std::vector<core::ObjectPair>> top = SuggestAssertionCandidates(
      catalog, *map, "hr", "payroll", core::StructureKind::kObjectClass, 1);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0].first, (*full)[0].first);
  EXPECT_EQ((*top)[0].second, (*full)[0].second);
  EXPECT_EQ((*top)[0].first.object, "Employee");
  EXPECT_EQ((*top)[0].second.object, "Emp");
}

TEST(SuggestTest, UnknownSchemaFails) {
  ecr::Catalog catalog = PayrollCatalog();
  SynonymDictionary dict;
  EXPECT_FALSE(
      SuggestAttributeEquivalences(catalog, "hr", "nope", dict).ok());
  EXPECT_FALSE(RankByWeightedResemblance(catalog, "nope", "hr", dict).ok());
}

}  // namespace
}  // namespace ecrint::heuristics
