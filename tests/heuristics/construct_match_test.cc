#include "heuristics/construct_match.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::heuristics {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

// The paper's example: marriage as an entity set in one schema and as a
// relationship between Male and Female in the other.
ecr::Catalog MarriageCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("registry");
  b1.Entity("Marriage")
      .Attr("Marriage_date", Domain::Date(), true)
      .Attr("Marriage_location", Domain::Char())
      .Attr("Number_of_children", Domain::Int());
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("census");
  b2.Entity("Male").Attr("Ssn", Domain::Int(), true);
  b2.Entity("Female").Attr("Ssn", Domain::Int(), true);
  b2.Relationship("Married_to", {{"Male", 0, 1, ""}, {"Female", 0, 1, ""}})
      .Attr("Marriage_date", Domain::Date())
      .Attr("Marriage_location", Domain::Char())
      .Attr("Children", Domain::Int());
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

TEST(ConstructMatchTest, FindsThePaperMarriageExample) {
  ecr::Catalog catalog = MarriageCatalog();
  SynonymDictionary dict;
  Result<std::vector<ConstructCorrespondence>> found =
      FindConstructMismatches(catalog, "registry", "census", dict);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_FALSE(found->empty());
  const ConstructCorrespondence& top = (*found)[0];
  EXPECT_EQ(top.entity.ToString(), "registry.Marriage");
  EXPECT_EQ(top.relationship.ToString(), "census.Married_to");
  EXPECT_GE(top.common_attributes, 2);
  EXPECT_GT(top.score, 0.5);
  EXPECT_NE(top.ToString().find("registry.Marriage"), std::string::npos);
}

TEST(ConstructMatchTest, BothDirectionsScanned) {
  ecr::Catalog catalog;
  SchemaBuilder b1("s1");
  b1.Entity("X").Attr("K", Domain::Int(), true);
  b1.Entity("Y").Attr("K2", Domain::Int(), true);
  b1.Relationship("Assignment", {{"X", 0, 1, ""}, {"Y", 0, 1, ""}})
      .Attr("Start_date", Domain::Date())
      .Attr("Role_name", Domain::Char());
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("s2");
  b2.Entity("Assignment_record")
      .Attr("Start_date", Domain::Date(), true)
      .Attr("Role_name", Domain::Char());
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  SynonymDictionary dict;
  // Entity in s2, relationship in s1: still found.
  Result<std::vector<ConstructCorrespondence>> found =
      FindConstructMismatches(catalog, "s1", "s2", dict);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].entity.ToString(), "s2.Assignment_record");
  EXPECT_EQ((*found)[0].relationship.ToString(), "s1.Assignment");
}

TEST(ConstructMatchTest, ThresholdFiltersWeakMatches) {
  ecr::Catalog catalog = MarriageCatalog();
  SynonymDictionary dict;
  Result<std::vector<ConstructCorrespondence>> strict =
      FindConstructMismatches(catalog, "registry", "census", dict,
                              /*min_common=*/4);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->empty());
}

TEST(ConstructMatchTest, NoFalsePositiveWithoutSharedAttributes) {
  ecr::Catalog catalog;
  SchemaBuilder b1("s1");
  b1.Entity("Alpha").Attr("Foo", Domain::Int(), true);
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("s2");
  b2.Entity("P").Attr("K", Domain::Int(), true);
  b2.Entity("Q").Attr("K2", Domain::Int(), true);
  b2.Relationship("Link", {{"P", 0, 1, ""}, {"Q", 0, 1, ""}})
      .Attr("Bar", Domain::Char());
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  SynonymDictionary dict;
  Result<std::vector<ConstructCorrespondence>> found =
      FindConstructMismatches(catalog, "s1", "s2", dict);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

}  // namespace
}  // namespace ecrint::heuristics
