#include "translate/hier_to_ecr.h"

#include <gtest/gtest.h>

#include "ecr/validate.h"

namespace ecrint::translate {
namespace {

using ecr::Domain;

// An IMS-flavoured enrollment database: school -> {class -> student,
// teacher}.
HierarchicalSchema School() {
  HierarchicalSchema db("school");
  Segment student{"Student",
                  {{"Sid", Domain::Int(), true},
                   {"Sname", Domain::Char(), false}},
                  {}};
  Segment teacher{"Teacher",
                  {{"Tid", Domain::Int(), true},
                   {"Tname", Domain::Char(), false}},
                  {}};
  Segment klass{"Class",
                {{"Cno", Domain::Int(), true}},
                {student, teacher}};
  Segment school{"School",
                 {{"Sname", Domain::Char(), true}},
                 {klass}};
  EXPECT_TRUE(db.AddRoot(school).ok());
  return db;
}

TEST(HierToEcrTest, SegmentsBecomeEntities) {
  Result<ecr::Schema> schema = HierarchicalToEcr(School());
  ASSERT_TRUE(schema.ok()) << schema.status();
  for (const char* name : {"School", "Class", "Student", "Teacher"}) {
    ecr::ObjectId id = schema->FindObject(name);
    ASSERT_NE(id, ecr::kNoObject) << name;
    EXPECT_EQ(schema->object(id).kind, ecr::ObjectKind::kEntitySet);
  }
  ecr::ObjectId student = schema->FindObject("Student");
  ASSERT_EQ(schema->object(student).attributes.size(), 2u);
  EXPECT_TRUE(schema->object(student).attributes[0].is_key);
}

TEST(HierToEcrTest, ParentChildArcsBecomeRelationships) {
  Result<ecr::Schema> schema = HierarchicalToEcr(School());
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_relationships(), 3);
  ecr::RelationshipId rel = schema->FindRelationship("Class_Student");
  ASSERT_GE(rel, 0);
  const ecr::RelationshipSet& r = schema->relationship(rel);
  ASSERT_EQ(r.participants.size(), 2u);
  EXPECT_EQ(schema->object(r.participants[0].object).name, "Class");
  EXPECT_EQ(r.participants[0].role, "parent");
  EXPECT_EQ(r.participants[0].min_card, 0);
  EXPECT_EQ(r.participants[0].max_card, ecr::kUnboundedCardinality);
  // Every child occurrence has exactly one parent.
  EXPECT_EQ(r.participants[1].role, "child");
  EXPECT_EQ(r.participants[1].min_card, 1);
  EXPECT_EQ(r.participants[1].max_card, 1);
}

TEST(HierToEcrTest, ResultIsValidEcr) {
  Result<ecr::Schema> schema = HierarchicalToEcr(School());
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(ecr::CheckSchemaValid(*schema).ok());
}

TEST(HierToEcrTest, MultipleRootsSupported) {
  HierarchicalSchema db("two_roots");
  ASSERT_TRUE(
      db.AddRoot(Segment{"A", {{"K", Domain::Int(), true}}, {}}).ok());
  ASSERT_TRUE(
      db.AddRoot(Segment{"B", {{"K", Domain::Int(), true}}, {}}).ok());
  Result<ecr::Schema> schema = HierarchicalToEcr(db);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_objects(), 2);
  EXPECT_EQ(schema->num_relationships(), 0);
}

TEST(HierToEcrTest, ValidationCatchesProblems) {
  HierarchicalSchema empty("empty");
  EXPECT_FALSE(HierarchicalToEcr(empty).ok());

  HierarchicalSchema dup("dup");
  ASSERT_TRUE(dup.AddRoot(Segment{
                     "A",
                     {{"K", Domain::Int(), true}},
                     {Segment{"A", {{"K", Domain::Int(), true}}, {}}}})
                  .ok());
  EXPECT_EQ(HierarchicalToEcr(dup).status().code(),
            StatusCode::kAlreadyExists);

  HierarchicalSchema fieldless("fieldless");
  ASSERT_TRUE(fieldless.AddRoot(Segment{"A", {}, {}}).ok());
  EXPECT_FALSE(HierarchicalToEcr(fieldless).ok());

  HierarchicalSchema dup_field("dup_field");
  ASSERT_TRUE(dup_field
                  .AddRoot(Segment{"A",
                                   {{"K", Domain::Int(), true},
                                    {"K", Domain::Int(), false}},
                                   {}})
                  .ok());
  EXPECT_FALSE(HierarchicalToEcr(dup_field).ok());
}

}  // namespace
}  // namespace ecrint::translate
