#include "translate/rel_to_ecr.h"

#include <gtest/gtest.h>

#include "ecr/validate.h"

namespace ecrint::translate {
namespace {

using ecr::Domain;

// A classic company database: employees in departments, a works_on m:n
// table, and a manager subtype.
RelationalSchema Company() {
  RelationalSchema db("company");
  EXPECT_TRUE(db.AddTable(Table{
                  "department",
                  {{"dno", Domain::Int(), false},
                   {"dname", Domain::Char(), false}},
                  {"dno"},
                  {}})
                  .ok());
  EXPECT_TRUE(db.AddTable(Table{
                  "employee",
                  {{"ssn", Domain::Int(), false},
                   {"name", Domain::Char(), false},
                   {"salary", Domain::Real(), false},
                   {"dno", Domain::Int(), true}},
                  {"ssn"},
                  {{{"dno"}, "department", {"dno"}}}})
                  .ok());
  EXPECT_TRUE(db.AddTable(Table{
                  "manager",
                  {{"ssn", Domain::Int(), false},
                   {"bonus", Domain::Real(), false}},
                  {"ssn"},
                  {{{"ssn"}, "employee", {"ssn"}}}})
                  .ok());
  EXPECT_TRUE(db.AddTable(Table{
                  "project",
                  {{"pno", Domain::Int(), false},
                   {"pname", Domain::Char(), false}},
                  {"pno"},
                  {}})
                  .ok());
  EXPECT_TRUE(db.AddTable(Table{
                  "works_on",
                  {{"ssn", Domain::Int(), false},
                   {"pno", Domain::Int(), false},
                   {"hours", Domain::Real(), false}},
                  {"ssn", "pno"},
                  {{{"ssn"}, "employee", {"ssn"}},
                   {{"pno"}, "project", {"pno"}}}})
                  .ok());
  return db;
}

TEST(RelToEcrTest, EntityTablesBecomeEntitySets) {
  Result<ecr::Schema> schema = RelationalToEcr(Company());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ecr::ObjectId employee = schema->FindObject("employee");
  ASSERT_NE(employee, ecr::kNoObject);
  EXPECT_EQ(schema->object(employee).kind, ecr::ObjectKind::kEntitySet);
  // ssn is the key; dno dropped (represented by a relationship).
  std::vector<std::string> names;
  for (const ecr::Attribute& a : schema->object(employee).attributes) {
    names.push_back(a.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"ssn", "name", "salary"}));
  EXPECT_TRUE(schema->object(employee).attributes[0].is_key);
}

TEST(RelToEcrTest, SubtypeTableBecomesCategory) {
  Result<ecr::Schema> schema = RelationalToEcr(Company());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ecr::ObjectId manager = schema->FindObject("manager");
  ASSERT_NE(manager, ecr::kNoObject);
  EXPECT_EQ(schema->object(manager).kind, ecr::ObjectKind::kCategory);
  ASSERT_EQ(schema->object(manager).parents.size(), 1u);
  EXPECT_EQ(schema->object(schema->object(manager).parents[0]).name,
            "employee");
  // Only the non-inherited attribute remains.
  ASSERT_EQ(schema->object(manager).attributes.size(), 1u);
  EXPECT_EQ(schema->object(manager).attributes[0].name, "bonus");
}

TEST(RelToEcrTest, JunctionTableBecomesRelationship) {
  Result<ecr::Schema> schema = RelationalToEcr(Company());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ecr::RelationshipId works_on = schema->FindRelationship("works_on");
  ASSERT_GE(works_on, 0);
  const ecr::RelationshipSet& rel = schema->relationship(works_on);
  ASSERT_EQ(rel.participants.size(), 2u);
  EXPECT_EQ(schema->object(rel.participants[0].object).name, "employee");
  EXPECT_EQ(schema->object(rel.participants[1].object).name, "project");
  ASSERT_EQ(rel.attributes.size(), 1u);
  EXPECT_EQ(rel.attributes[0].name, "hours");
}

TEST(RelToEcrTest, ForeignKeyBecomesBinaryRelationship) {
  Result<ecr::Schema> schema = RelationalToEcr(Company());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ecr::RelationshipId rel_id = schema->FindRelationship("employee_dno");
  ASSERT_GE(rel_id, 0);
  const ecr::RelationshipSet& rel = schema->relationship(rel_id);
  ASSERT_EQ(rel.participants.size(), 2u);
  EXPECT_EQ(schema->object(rel.participants[0].object).name, "employee");
  // dno is nullable, so participation is optional.
  EXPECT_EQ(rel.participants[0].min_card, 0);
  EXPECT_EQ(rel.participants[0].max_card, 1);
  EXPECT_EQ(schema->object(rel.participants[1].object).name, "department");
  EXPECT_EQ(rel.participants[1].max_card, ecr::kUnboundedCardinality);
}

TEST(RelToEcrTest, ResultIsValidEcr) {
  Result<ecr::Schema> schema = RelationalToEcr(Company());
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(ecr::CheckSchemaValid(*schema).ok());
}

TEST(RelToEcrTest, NonNullableFkIsMandatory) {
  RelationalSchema db("x");
  ASSERT_TRUE(db.AddTable(Table{"a",
                                {{"id", Domain::Int(), false}},
                                {"id"},
                                {}})
                  .ok());
  ASSERT_TRUE(db.AddTable(Table{"b",
                                {{"id", Domain::Int(), false},
                                 {"a_id", Domain::Int(), false}},
                                {"id"},
                                {{{"a_id"}, "a", {"id"}}}})
                  .ok());
  Result<ecr::Schema> schema = RelationalToEcr(db);
  ASSERT_TRUE(schema.ok()) << schema.status();
  const ecr::RelationshipSet& rel = schema->relationship(0);
  EXPECT_EQ(rel.participants[0].min_card, 1);
}

TEST(RelToEcrTest, ValidationErrorsPropagate) {
  RelationalSchema db("bad");
  ASSERT_TRUE(db.AddTable(Table{"t",
                                {{"id", Domain::Int(), false}},
                                {"missing"},
                                {}})
                  .ok());
  EXPECT_FALSE(RelationalToEcr(db).ok());

  RelationalSchema dangling("dangling");
  ASSERT_TRUE(dangling
                  .AddTable(Table{"t",
                                  {{"id", Domain::Int(), false}},
                                  {"id"},
                                  {{{"id"}, "nowhere", {"id"}}}})
                  .ok());
  EXPECT_FALSE(RelationalToEcr(dangling).ok());
}

TEST(RelationalSchemaTest, AddTableRejectsDuplicates) {
  RelationalSchema db("x");
  ASSERT_TRUE(db.AddTable(Table{"t",
                                {{"id", Domain::Int(), false}},
                                {"id"},
                                {}})
                  .ok());
  EXPECT_EQ(db.AddTable(Table{"t", {}, {}, {}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.AddTable(Table{"u",
                              {{"a", Domain::Int(), false},
                               {"a", Domain::Int(), false}},
                              {"a"},
                              {}})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(RelationalSchemaTest, FindHelpers) {
  RelationalSchema db = Company();
  const Table* employee = db.FindTable("employee");
  ASSERT_NE(employee, nullptr);
  EXPECT_NE(employee->FindColumn("ssn"), nullptr);
  EXPECT_EQ(employee->FindColumn("nope"), nullptr);
  EXPECT_TRUE(employee->IsPrimaryKeyColumn("ssn"));
  EXPECT_FALSE(employee->IsPrimaryKeyColumn("name"));
  EXPECT_EQ(db.FindTable("nope"), nullptr);
}

}  // namespace
}  // namespace ecrint::translate
