#include "ecr/domain.h"

#include <gtest/gtest.h>

namespace ecrint::ecr {
namespace {

TEST(DomainTest, ToStringRendersConstraints) {
  EXPECT_EQ(Domain::Char().ToString(), "char");
  EXPECT_EQ(Domain::CharN(20).ToString(), "char(20)");
  EXPECT_EQ(Domain::Int().ToString(), "int");
  EXPECT_EQ(Domain::IntRange(0, 120).ToString(), "int[0..120]");
  EXPECT_EQ(Domain::RealRange(0, 4).ToString(), "real[0.00..4.00]");
  EXPECT_EQ(Domain::Bool().ToString(), "bool");
  EXPECT_EQ(Domain::Date().ToString(), "date");
  EXPECT_EQ(Domain::Real().set_unit("km").ToString(), "real unit km");
}

TEST(DomainTest, ParseRoundTrip) {
  for (const Domain& d :
       {Domain::Char(), Domain::CharN(8), Domain::Int(),
        Domain::IntRange(-5, 5), Domain::Real(), Domain::RealRange(0, 1),
        Domain::Bool(), Domain::Date(), Domain::Int().set_unit("years")}) {
    Result<Domain> parsed = ParseDomain(d.ToString());
    ASSERT_TRUE(parsed.ok()) << d.ToString() << ": " << parsed.status();
    EXPECT_EQ(*parsed, d) << d.ToString();
  }
}

TEST(DomainTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseDomain("").ok());
  EXPECT_FALSE(ParseDomain("varchar").ok());
  EXPECT_FALSE(ParseDomain("char(").ok());
  EXPECT_FALSE(ParseDomain("char(0)").ok());
  EXPECT_FALSE(ParseDomain("char(-3)").ok());
  EXPECT_FALSE(ParseDomain("int[5..1]").ok());
  EXPECT_FALSE(ParseDomain("int[1..]").ok());
  EXPECT_FALSE(ParseDomain("int[a..b]").ok());
  EXPECT_FALSE(ParseDomain("real[1,2]").ok());
}

TEST(DomainTest, DifferentBaseTypesAreDisjoint) {
  EXPECT_EQ(Domain::Int().Compare(Domain::Char()),
            DomainRelation::kDisjoint);
  EXPECT_FALSE(Domain::Int().Comparable(Domain::Real()));
}

TEST(DomainTest, UnitMismatchIsDisjoint) {
  Domain km = Domain::Real().set_unit("km");
  Domain mi = Domain::Real().set_unit("mi");
  EXPECT_EQ(km.Compare(mi), DomainRelation::kDisjoint);
  EXPECT_EQ(km.Compare(Domain::Real().set_unit("km")),
            DomainRelation::kEqual);
}

TEST(DomainTest, CharLengthGivesContainment) {
  EXPECT_EQ(Domain::CharN(20).Compare(Domain::CharN(10)),
            DomainRelation::kContains);
  EXPECT_EQ(Domain::CharN(10).Compare(Domain::CharN(20)),
            DomainRelation::kContainedIn);
  EXPECT_EQ(Domain::Char().Compare(Domain::CharN(10)),
            DomainRelation::kContains);
  EXPECT_EQ(Domain::CharN(10).Compare(Domain::CharN(10)),
            DomainRelation::kEqual);
}

TEST(DomainTest, NumericRangesCompareAsIntervals) {
  EXPECT_EQ(Domain::IntRange(0, 100).Compare(Domain::IntRange(10, 20)),
            DomainRelation::kContains);
  EXPECT_EQ(Domain::IntRange(10, 20).Compare(Domain::IntRange(0, 100)),
            DomainRelation::kContainedIn);
  EXPECT_EQ(Domain::IntRange(0, 10).Compare(Domain::IntRange(5, 15)),
            DomainRelation::kOverlap);
  EXPECT_EQ(Domain::IntRange(0, 10).Compare(Domain::IntRange(11, 20)),
            DomainRelation::kDisjoint);
  EXPECT_EQ(Domain::Int().Compare(Domain::IntRange(0, 10)),
            DomainRelation::kContains);
  EXPECT_EQ(Domain::Int().Compare(Domain::Int()), DomainRelation::kEqual);
}

TEST(DomainTest, ComparableIsTheBinarySimplification) {
  // The paper's tool treats attributes as equivalent/nonequivalent only;
  // Comparable() collapses the Larson et al. lattice accordingly.
  EXPECT_TRUE(Domain::IntRange(0, 10).Comparable(Domain::IntRange(5, 15)));
  EXPECT_TRUE(Domain::CharN(5).Comparable(Domain::Char()));
  EXPECT_FALSE(Domain::IntRange(0, 10).Comparable(Domain::IntRange(20, 30)));
}

TEST(DomainTest, BoolAndDateCompareEqual) {
  EXPECT_EQ(Domain::Bool().Compare(Domain::Bool()), DomainRelation::kEqual);
  EXPECT_EQ(Domain::Date().Compare(Domain::Date()), DomainRelation::kEqual);
}

}  // namespace
}  // namespace ecrint::ecr
