#include "ecr/builder.h"

#include <gtest/gtest.h>

namespace ecrint::ecr {
namespace {

TEST(SchemaBuilderTest, BuildsPaperFigure3) {
  SchemaBuilder b("sc1");
  b.Entity("Student")
      .Attr("Name", Domain::Char(), /*key=*/true)
      .Attr("GPA", Domain::Real());
  b.Entity("Department").Attr("Dname", Domain::Char(), /*key=*/true);
  b.Relationship("Majors", {{"Student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_objects(), 2);
  EXPECT_EQ(schema->num_relationships(), 1);
  ObjectId student = schema->FindObject("Student");
  ASSERT_NE(student, kNoObject);
  ASSERT_EQ(schema->object(student).attributes.size(), 2u);
  EXPECT_TRUE(schema->object(student).attributes[0].is_key);
}

TEST(SchemaBuilderTest, CategoriesAndRoles) {
  SchemaBuilder b("s");
  b.Entity("Person").Attr("Name", Domain::Char(), true);
  b.Category("Employee", {"Person"}).Attr("Salary", Domain::Int());
  b.Relationship("Manages", {{"Employee", 0, 1, "manager"},
                             {"Employee", 0, SchemaBuilder::kN, "report"}});
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ObjectId employee = schema->FindObject("Employee");
  EXPECT_EQ(schema->object(employee).kind, ObjectKind::kCategory);
  const RelationshipSet& rel = schema->relationship(0);
  EXPECT_EQ(rel.participants[0].role, "manager");
  EXPECT_EQ(rel.participants[1].role, "report");
}

TEST(SchemaBuilderTest, FirstErrorIsLatched) {
  SchemaBuilder b("s");
  b.Entity("A");
  b.Category("C", {"Missing"});        // first error: parent not found
  b.Entity("A");                       // would be AlreadyExists
  b.Attr("x", Domain::Int());          // would be dangling
  Result<Schema> schema = b.Build();
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kNotFound);
}

TEST(SchemaBuilderTest, AttrBeforeStructureFails) {
  SchemaBuilder b("s");
  b.Attr("x", Domain::Int());
  EXPECT_EQ(b.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(SchemaBuilderTest, AttrAfterErrorDoesNotCrash) {
  SchemaBuilder b("s");
  b.Entity("A").Attr("x", Domain::Int()).Attr("x", Domain::Int());
  Result<Schema> schema = b.Build();
  EXPECT_EQ(schema.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaBuilderTest, StatusAccessorExposesLatchedError) {
  SchemaBuilder ok("s");
  ok.Entity("A");
  EXPECT_TRUE(ok.status().ok());
  SchemaBuilder bad("s");
  bad.Category("C", {"Missing"});
  EXPECT_FALSE(bad.status().ok());
}

}  // namespace
}  // namespace ecrint::ecr
