#include "ecr/catalog.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::ecr {
namespace {

TEST(CatalogTest, CreateLookupDrop) {
  Catalog catalog;
  Result<Schema*> sc1 = catalog.CreateSchema("sc1");
  ASSERT_TRUE(sc1.ok());
  EXPECT_TRUE(catalog.Contains("sc1"));
  EXPECT_EQ(catalog.size(), 1);

  ASSERT_TRUE((*sc1)->AddEntitySet("Student").ok());
  Result<const Schema*> found = catalog.GetSchema("sc1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->num_objects(), 1);

  EXPECT_TRUE(catalog.DropSchema("sc1").ok());
  EXPECT_FALSE(catalog.Contains("sc1"));
  EXPECT_EQ(catalog.DropSchema("sc1").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateNamesRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateSchema("sc1").ok());
  EXPECT_EQ(catalog.CreateSchema("sc1").status().code(),
            StatusCode::kAlreadyExists);
  Schema other("sc1");
  EXPECT_EQ(catalog.AddSchema(std::move(other)).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, InvalidNamesRejected) {
  Catalog catalog;
  EXPECT_EQ(catalog.CreateSchema("bad name").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, AddSchemaMovesBuiltSchema) {
  Catalog catalog;
  SchemaBuilder b("sc2");
  b.Entity("Faculty").Attr("Name", Domain::Char(), true);
  Result<Schema> schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(catalog.AddSchema(*std::move(schema)).ok());
  Result<const Schema*> found = catalog.GetSchema("sc2");
  ASSERT_TRUE(found.ok());
  EXPECT_NE((*found)->FindObject("Faculty"), kNoObject);
}

TEST(CatalogTest, SchemaNamesPreserveDefinitionOrder) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateSchema("zeta").ok());
  ASSERT_TRUE(catalog.CreateSchema("alpha").ok());
  ASSERT_TRUE(catalog.CreateSchema("mid").ok());
  EXPECT_EQ(catalog.SchemaNames(),
            (std::vector<std::string>{"zeta", "alpha", "mid"}));
  ASSERT_TRUE(catalog.DropSchema("alpha").ok());
  EXPECT_EQ(catalog.SchemaNames(),
            (std::vector<std::string>{"zeta", "mid"}));
}

TEST(CatalogTest, PointersStableAcrossInserts) {
  Catalog catalog;
  Schema* first = *catalog.CreateSchema("a");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(catalog.CreateSchema("s" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(first->AddEntitySet("E").ok());
  EXPECT_EQ((*catalog.GetSchema("a"))->num_objects(), 1);
}

}  // namespace
}  // namespace ecrint::ecr
