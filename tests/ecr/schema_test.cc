#include "ecr/schema.h"

#include <gtest/gtest.h>

namespace ecrint::ecr {
namespace {

Schema MakeUniversity() {
  Schema s("sc1");
  ObjectId student = *s.AddEntitySet("Student");
  ObjectId department = *s.AddEntitySet("Department");
  EXPECT_TRUE(
      s.AddObjectAttribute(student, {"Name", Domain::Char(), true}).ok());
  EXPECT_TRUE(
      s.AddObjectAttribute(student, {"GPA", Domain::Real(), false}).ok());
  EXPECT_TRUE(
      s.AddObjectAttribute(department, {"Dname", Domain::Char(), true}).ok());
  EXPECT_TRUE(s.AddRelationship("Majors", {Participation{student, 1, 1, ""},
                                           Participation{department, 0,
                                                         kUnboundedCardinality,
                                                         ""}})
                  .ok());
  return s;
}

TEST(SchemaTest, AddAndLookupEntities) {
  Schema s = MakeUniversity();
  EXPECT_EQ(s.num_objects(), 2);
  EXPECT_EQ(s.num_relationships(), 1);
  ASSERT_NE(s.FindObject("Student"), kNoObject);
  EXPECT_EQ(s.object(s.FindObject("Student")).name, "Student");
  EXPECT_EQ(s.FindObject("Nonexistent"), kNoObject);
  EXPECT_EQ(s.FindRelationship("Majors"), 0);
  EXPECT_LT(s.FindRelationship("Nope"), 0);
}

TEST(SchemaTest, GetObjectReportsNotFound) {
  Schema s = MakeUniversity();
  Result<ObjectId> r = s.GetObject("Professor");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, NamesShareOneNamespace) {
  Schema s = MakeUniversity();
  // Per the paper's Structure Information Collection Screen, entity sets,
  // categories and relationships are all "structures" with unique names.
  EXPECT_EQ(s.AddEntitySet("Majors").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(s.AddRelationship("Student", {}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsInvalidIdentifiers) {
  Schema s("x");
  EXPECT_EQ(s.AddEntitySet("two words").status().code(),
            StatusCode::kInvalidArgument);
  ObjectId e = *s.AddEntitySet("E");
  EXPECT_EQ(s.AddObjectAttribute(e, {"bad name", Domain::Char(), false})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  Schema s = MakeUniversity();
  ObjectId student = s.FindObject("Student");
  EXPECT_EQ(
      s.AddObjectAttribute(student, {"Name", Domain::Char(), false}).code(),
      StatusCode::kAlreadyExists);
}

TEST(SchemaTest, CategoryNeedsExistingParents) {
  Schema s = MakeUniversity();
  EXPECT_EQ(s.AddCategory("Orphan", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddCategory("Bad", {99}).status().code(),
            StatusCode::kNotFound);
  Result<ObjectId> grad =
      s.AddCategory("Grad_student", {s.FindObject("Student")});
  ASSERT_TRUE(grad.ok());
  EXPECT_EQ(s.object(*grad).kind, ObjectKind::kCategory);
}

TEST(SchemaTest, CategoryInheritsParentAttributes) {
  Schema s = MakeUniversity();
  ObjectId student = s.FindObject("Student");
  ObjectId grad = *s.AddCategory("Grad_student", {student});
  ASSERT_TRUE(
      s.AddObjectAttribute(grad, {"Support_type", Domain::Char(), false})
          .ok());
  std::vector<Attribute> all = s.InheritedAttributes(grad);
  ASSERT_EQ(all.size(), 3u);
  // Parents first, own attributes last.
  EXPECT_EQ(all[0].name, "Name");
  EXPECT_EQ(all[1].name, "GPA");
  EXPECT_EQ(all[2].name, "Support_type");
}

TEST(SchemaTest, InheritedAttributeNameCannotBeRedeclared) {
  Schema s = MakeUniversity();
  ObjectId grad = *s.AddCategory("Grad_student", {s.FindObject("Student")});
  EXPECT_EQ(
      s.AddObjectAttribute(grad, {"Name", Domain::Char(), false}).code(),
      StatusCode::kAlreadyExists);
}

TEST(SchemaTest, DiamondInheritanceDeduplicates) {
  Schema s("d");
  ObjectId person = *s.AddEntitySet("Person");
  ASSERT_TRUE(
      s.AddObjectAttribute(person, {"Name", Domain::Char(), true}).ok());
  ObjectId staff = *s.AddCategory("Staff", {person});
  ObjectId student = *s.AddCategory("Student", {person});
  ObjectId ta = *s.AddCategory("TA", {staff, student});
  std::vector<Attribute> all = s.InheritedAttributes(ta);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "Name");
}

TEST(SchemaTest, AddParentRejectsCycles) {
  Schema s("c");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddCategory("B", {a});
  ObjectId c = *s.AddCategory("C", {b});
  EXPECT_EQ(s.AddParent(a, c).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddParent(b, b).code(), StatusCode::kInvalidArgument);
  // Adding an existing parent is an idempotent no-op.
  EXPECT_TRUE(s.AddParent(c, b).ok());
  EXPECT_EQ(s.object(c).parents.size(), 1u);
}

TEST(SchemaTest, ChildrenAndAncestors) {
  Schema s("h");
  ObjectId person = *s.AddEntitySet("Person");
  ObjectId student = *s.AddCategory("Student", {person});
  ObjectId grad = *s.AddCategory("Grad", {student});
  EXPECT_EQ(s.ChildrenOf(person), std::vector<ObjectId>{student});
  EXPECT_EQ(s.ChildrenOf(student), std::vector<ObjectId>{grad});
  EXPECT_TRUE(s.HasAncestor(grad, person));
  EXPECT_FALSE(s.HasAncestor(person, grad));
}

TEST(SchemaTest, RelationshipValidation) {
  Schema s("r");
  ObjectId a = *s.AddEntitySet("A");
  EXPECT_EQ(
      s.AddRelationship("One", {Participation{a, 0, 1, ""}}).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddRelationship("Dangling",
                              {Participation{a, 0, 1, ""},
                               Participation{42, 0, 1, ""}})
                .status()
                .code(),
            StatusCode::kNotFound);
  // min > max is invalid; [2,2] is fine; max 0 is invalid.
  EXPECT_EQ(s.AddRelationship("BadCard",
                              {Participation{a, 3, 2, ""},
                               Participation{a, 0, 1, ""}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.AddRelationship("Self",
                                {Participation{a, 2, 2, "left"},
                                 Participation{a, 0, 1, "right"}})
                  .ok());
}

TEST(SchemaTest, RelationshipsOfFindsParticipations) {
  Schema s = MakeUniversity();
  ObjectId student = s.FindObject("Student");
  ObjectId department = s.FindObject("Department");
  EXPECT_EQ(s.RelationshipsOf(student), std::vector<RelationshipId>{0});
  EXPECT_EQ(s.RelationshipsOf(department), std::vector<RelationshipId>{0});
  ObjectId lonely = *s.AddEntitySet("Lonely");
  EXPECT_TRUE(s.RelationshipsOf(lonely).empty());
}

TEST(SchemaTest, ObjectsOfKind) {
  Schema s = MakeUniversity();
  ObjectId grad = *s.AddCategory("Grad_student", {s.FindObject("Student")});
  std::vector<ObjectId> entities = s.ObjectsOfKind(ObjectKind::kEntitySet);
  EXPECT_EQ(entities.size(), 2u);
  std::vector<ObjectId> categories = s.ObjectsOfKind(ObjectKind::kCategory);
  ASSERT_EQ(categories.size(), 1u);
  EXPECT_EQ(categories[0], grad);
}

TEST(SchemaTest, CardinalityToStringUsesN) {
  EXPECT_EQ(CardinalityToString(1, 1), "[1,1]");
  EXPECT_EQ(CardinalityToString(0, kUnboundedCardinality), "[0,n]");
}

TEST(SchemaTest, KindCodesMatchPaperScreens) {
  EXPECT_EQ(ObjectKindCode(ObjectKind::kEntitySet), 'e');
  EXPECT_EQ(ObjectKindCode(ObjectKind::kCategory), 'c');
}

}  // namespace
}  // namespace ecrint::ecr
