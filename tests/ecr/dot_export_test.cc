#include "ecr/dot_export.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::ecr {
namespace {

Schema Sample() {
  SchemaBuilder b("sc1");
  b.Entity("Student").Attr("Name", Domain::Char(), true);
  b.Entity("Department").Attr("Dname", Domain::Char(), true);
  b.Category("Grad_student", {"Student"});
  b.Relationship("Majors", {{"Student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  return *b.Build();
}

TEST(DotExportTest, EmitsWellFormedGraph) {
  std::string dot = ToDot(Sample());
  EXPECT_NE(dot.find("graph \"sc1\" {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExportTest, ShapesFollowErVocabulary) {
  std::string dot = ToDot(Sample());
  EXPECT_NE(dot.find("shape=box, label=\"Student\""), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);    // category
  EXPECT_NE(dot.find("shape=diamond, label=\"Majors\""), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);    // attribute
}

TEST(DotExportTest, EdgesCarryIsaAndCardinality) {
  std::string dot = ToDot(Sample());
  EXPECT_NE(dot.find("label=\"is-a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"[1,1]\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"[0,n]\""), std::string::npos);
}

TEST(DotExportTest, KeyAttributesUnderlined) {
  std::string dot = ToDot(Sample());
  EXPECT_NE(dot.find("<<u>Name</u>>"), std::string::npos);
}

TEST(DotExportTest, EscapesQuotesInNames) {
  Schema s("quote");
  ObjectId e = *s.AddEntitySet("Plain");
  (void)e;
  std::string dot = ToDot(s);
  EXPECT_EQ(dot.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace ecrint::ecr
