#include "ecr/ddl_parser.h"

#include <gtest/gtest.h>

#include "ecr/printer.h"

namespace ecrint::ecr {
namespace {

constexpr char kFigure3[] = R"(
# the paper's Figure 3
schema sc1 {
  entity Student {
    Name: char key;
    GPA: real;
  }
  entity Department {
    Dname: char key;
  }
  relationship Majors (Student [1,1], Department [0,n]) {
    Since: int;
  }
}
)";

TEST(DdlParserTest, ParsesFigure3) {
  Result<Schema> schema = ParseSchema(kFigure3);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "sc1");
  ObjectId student = schema->FindObject("Student");
  ASSERT_NE(student, kNoObject);
  ASSERT_EQ(schema->object(student).attributes.size(), 2u);
  EXPECT_EQ(schema->object(student).attributes[0].name, "Name");
  EXPECT_TRUE(schema->object(student).attributes[0].is_key);
  EXPECT_EQ(schema->object(student).attributes[1].domain.type(),
            DomainType::kReal);
  RelationshipId majors = schema->FindRelationship("Majors");
  ASSERT_GE(majors, 0);
  const RelationshipSet& rel = schema->relationship(majors);
  ASSERT_EQ(rel.participants.size(), 2u);
  EXPECT_EQ(rel.participants[0].min_card, 1);
  EXPECT_EQ(rel.participants[0].max_card, 1);
  EXPECT_EQ(rel.participants[1].max_card, kUnboundedCardinality);
  ASSERT_EQ(rel.attributes.size(), 1u);
  EXPECT_EQ(rel.attributes[0].name, "Since");
}

TEST(DdlParserTest, ParsesCategoriesAndRoles) {
  Result<Schema> schema = ParseSchema(R"(
    schema s {
      entity Person { Name: char(40) key; Age: int[0..120]; }
      category Employee of Person { Salary: real unit usd; }
      category TA of Employee;
      relationship Manages (Employee as boss [0,1],
                            Employee as report [0,n]);
    }
  )");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ObjectId employee = schema->FindObject("Employee");
  ASSERT_NE(employee, kNoObject);
  EXPECT_EQ(schema->object(employee).kind, ObjectKind::kCategory);
  ObjectId ta = schema->FindObject("TA");
  EXPECT_EQ(schema->object(ta).parents, std::vector<ObjectId>{employee});
  const RelationshipSet& rel = schema->relationship(0);
  EXPECT_EQ(rel.participants[0].role, "boss");
  // Domain details survive.
  const ObjectClass& person = schema->object(schema->FindObject("Person"));
  EXPECT_EQ(person.attributes[0].domain.max_length(), 40);
  EXPECT_EQ(person.attributes[1].domain.lower_bound(), 0);
  const ObjectClass& emp = schema->object(employee);
  EXPECT_EQ(emp.attributes[0].domain.unit(), "usd");
}

TEST(DdlParserTest, MultiSchemaFileIntoCatalog) {
  Catalog catalog;
  Result<std::vector<std::string>> names = ParseInto(catalog, R"(
    schema a { entity X { K: int key; } }
    schema b { entity Y { K: int key; } }
  )");
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(catalog.Contains("a"));
  EXPECT_TRUE(catalog.Contains("b"));
}

TEST(DdlParserTest, DdlRoundTrip) {
  Result<Schema> first = ParseSchema(kFigure3);
  ASSERT_TRUE(first.ok());
  std::string ddl = ToDdl(*first);
  Result<Schema> second = ParseSchema(ddl);
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << ddl;
  EXPECT_EQ(ToDdl(*second), ddl);
}

struct BadDdlCase {
  const char* label;
  const char* ddl;
};

class DdlParserErrorTest : public ::testing::TestWithParam<BadDdlCase> {};

TEST_P(DdlParserErrorTest, RejectsMalformedInput) {
  Result<Schema> schema = ParseSchema(GetParam().ddl);
  EXPECT_FALSE(schema.ok()) << GetParam().label;
  EXPECT_EQ(schema.status().code(), StatusCode::kParseError)
      << GetParam().label << ": " << schema.status();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DdlParserErrorTest,
    ::testing::Values(
        BadDdlCase{"empty", ""},
        BadDdlCase{"no_schema_kw", "entity X;"},
        BadDdlCase{"unterminated_schema", "schema s { entity X;"},
        BadDdlCase{"unknown_structure", "schema s { table X; }"},
        BadDdlCase{"missing_colon", "schema s { entity X { Name char; } }"},
        BadDdlCase{"bad_domain", "schema s { entity X { N: varchar; } }"},
        BadDdlCase{"unterminated_attr",
                   "schema s { entity X { N: char } }"},
        BadDdlCase{"bad_cardinality",
                   "schema s { entity X; entity Y; "
                   "relationship R (X [n,1], Y [0,1]); }"},
        BadDdlCase{"stray_char", "schema s @ {}"},
        BadDdlCase{"two_schemas_for_single_parse",
                   "schema a { entity X; } schema b { entity Y; }"}),
    [](const ::testing::TestParamInfo<BadDdlCase>& info) {
      return info.param.label;
    });

TEST(DdlParserTest, SemanticErrorsKeepTheirCodes) {
  // Unknown parent is NotFound, not ParseError.
  Result<Schema> schema =
      ParseSchema("schema s { category C of Missing; }");
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kNotFound);
  // Duplicate structure name is AlreadyExists.
  schema = ParseSchema("schema s { entity X; entity X; }");
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kAlreadyExists);
}

TEST(DdlParserTest, ErrorsMentionLineNumbers) {
  Result<Schema> schema = ParseSchema("schema s {\n  entity X {\n    N char;\n  }\n}");
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("line 3"), std::string::npos)
      << schema.status();
}

TEST(DdlParserTest, CommentsAndWhitespaceIgnored) {
  Result<Schema> schema = ParseSchema(
      "schema s {  # trailing comment\n"
      "  # whole-line comment\n"
      "  entity X { N: char key; }\n"
      "}");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_objects(), 1);
}

TEST(DdlParserTest, AttributelessStructuresUseSemicolon) {
  Result<Schema> schema = ParseSchema(
      "schema s { entity X; entity Y; relationship R (X [0,n], Y [1,1]); }");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->num_objects(), 2);
  EXPECT_EQ(schema->num_relationships(), 1);
}

}  // namespace
}  // namespace ecrint::ecr
