#include "ecr/printer.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::ecr {
namespace {

Schema Sample() {
  SchemaBuilder b("sc1");
  b.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b.Entity("Department").Attr("Dname", Domain::Char(), true);
  b.Category("Grad_student", {"Student"})
      .Attr("Support_type", Domain::Char());
  b.Relationship("Majors", {{"Student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  return *b.Build();
}

TEST(PrinterTest, ToDdlContainsAllStructures) {
  std::string ddl = ToDdl(Sample());
  EXPECT_NE(ddl.find("schema sc1 {"), std::string::npos);
  EXPECT_NE(ddl.find("entity Student {"), std::string::npos);
  EXPECT_NE(ddl.find("Name: char key;"), std::string::npos);
  EXPECT_NE(ddl.find("category Grad_student of Student {"),
            std::string::npos);
  EXPECT_NE(ddl.find("relationship Majors (Student [1,1], Department [0,n])"),
            std::string::npos);
}

TEST(PrinterTest, ToOutlineShowsInheritanceAndIsa) {
  std::string outline = ToOutline(Sample());
  EXPECT_NE(outline.find("category Grad_student"), std::string::npos);
  EXPECT_NE(outline.find("is-a: Student"), std::string::npos);
  EXPECT_NE(outline.find("inherited: Name GPA"), std::string::npos);
}

TEST(PrinterTest, OutlineMarksDerivedAndEquivalent) {
  Schema s("i");
  ObjectId d = *s.AddEntitySet("D_Stud_Facu");
  s.mutable_object(d).origin = ObjectOrigin::kDerived;
  ObjectId e = *s.AddEntitySet("E_Department");
  s.mutable_object(e).origin = ObjectOrigin::kEquivalent;
  std::string outline = ToOutline(s);
  EXPECT_NE(outline.find("D_Stud_Facu  (derived)"), std::string::npos);
  EXPECT_NE(outline.find("E_Department  (equivalent)"), std::string::npos);
}

TEST(PrinterTest, SummarizeCounts) {
  EXPECT_EQ(Summarize(Sample()),
            "sc1: 2 entities, 1 categories, 1 relationships");
}

TEST(PrinterTest, RolesRenderedInDdl) {
  SchemaBuilder b("s");
  b.Entity("Employee");
  b.Relationship("Manages", {{"Employee", 0, 1, "boss"},
                             {"Employee", 0, SchemaBuilder::kN, "report"}});
  std::string ddl = ToDdl(*b.Build());
  EXPECT_NE(ddl.find("Employee as boss [0,1]"), std::string::npos);
  EXPECT_NE(ddl.find("Employee as report [0,n]"), std::string::npos);
}

}  // namespace
}  // namespace ecrint::ecr
