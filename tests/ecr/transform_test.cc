#include "ecr/transform.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"
#include "ecr/validate.h"

namespace ecrint::ecr {
namespace {

Schema Company() {
  SchemaBuilder b("co");
  b.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char())
      .Attr("Dept_name", Domain::Char());
  return *b.Build();
}

TEST(TransformTest, PromoteAttributeToEntity) {
  Result<Schema> out = PromoteAttributeToEntity(
      Company(), "Employee", "Dept_name", "Department", "Works_in");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(CheckSchemaValid(*out).ok());

  // The attribute moved: gone from Employee, key of Department.
  ObjectId employee = out->FindObject("Employee");
  for (const Attribute& a : out->object(employee).attributes) {
    EXPECT_NE(a.name, "Dept_name");
  }
  ObjectId department = out->FindObject("Department");
  ASSERT_NE(department, kNoObject);
  ASSERT_EQ(out->object(department).attributes.size(), 1u);
  EXPECT_EQ(out->object(department).attributes[0].name, "Dept_name");
  EXPECT_TRUE(out->object(department).attributes[0].is_key);

  // Linked by the new relationship with [0,1] on the employee side.
  RelationshipId rel = out->FindRelationship("Works_in");
  ASSERT_GE(rel, 0);
  EXPECT_EQ(out->relationship(rel).participants[0].object, employee);
  EXPECT_EQ(out->relationship(rel).participants[0].max_card, 1);
  EXPECT_EQ(out->relationship(rel).participants[1].max_card,
            kUnboundedCardinality);
}

TEST(TransformTest, PromoteRejectsBadInput) {
  Schema co = Company();
  EXPECT_FALSE(
      PromoteAttributeToEntity(co, "Ghost", "X", "E", "R").ok());
  EXPECT_FALSE(
      PromoteAttributeToEntity(co, "Employee", "Ghost", "E", "R").ok());
  // Keys stay put.
  EXPECT_EQ(PromoteAttributeToEntity(co, "Employee", "Ssn", "E", "R")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Source schema untouched.
  EXPECT_EQ(co.object(co.FindObject("Employee")).attributes.size(), 3u);
}

Schema Census() {
  SchemaBuilder b("census");
  b.Entity("Male").Attr("Ssn", Domain::Int(), true);
  b.Entity("Female").Attr("Ssn", Domain::Int(), true);
  b.Relationship("Marriage", {{"Male", 0, 1, "husband"},
                              {"Female", 0, 1, "wife"}})
      .Attr("Marriage_date", Domain::Date())
      .Attr("Location", Domain::Char());
  return *b.Build();
}

TEST(TransformTest, RelationshipToEntityBuildsLinkedEntity) {
  Result<Schema> out = RelationshipToEntity(Census(), "Marriage");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(CheckSchemaValid(*out).ok());

  ObjectId marriage = out->FindObject("Marriage");
  ASSERT_NE(marriage, kNoObject);
  EXPECT_EQ(out->object(marriage).kind, ObjectKind::kEntitySet);
  ASSERT_EQ(out->object(marriage).attributes.size(), 2u);
  // First attribute promoted to key (none was marked).
  EXPECT_TRUE(out->object(marriage).attributes[0].is_key);

  // One [1,1] link per original participant, named by role.
  RelationshipId husband = out->FindRelationship("Marriage_husband");
  RelationshipId wife = out->FindRelationship("Marriage_wife");
  ASSERT_GE(husband, 0);
  ASSERT_GE(wife, 0);
  const RelationshipSet& link = out->relationship(husband);
  EXPECT_EQ(link.participants[0].object, marriage);
  EXPECT_EQ(link.participants[0].min_card, 1);
  EXPECT_EQ(link.participants[0].max_card, 1);
  // The partner keeps its original [0,1].
  EXPECT_EQ(link.participants[1].max_card, 1);
}

TEST(TransformTest, RelationshipToEntitySynthesizesKeyWhenAttributeless) {
  SchemaBuilder b("s");
  b.Entity("A").Attr("K", Domain::Int(), true);
  b.Entity("B").Attr("K2", Domain::Int(), true);
  b.Relationship("Link", {{"A", 0, 1, ""}, {"B", 0, 1, ""}});
  Result<Schema> out = RelationshipToEntity(*b.Build(), "Link");
  ASSERT_TRUE(out.ok()) << out.status();
  ObjectId link = out->FindObject("Link");
  ASSERT_EQ(out->object(link).attributes.size(), 1u);
  EXPECT_EQ(out->object(link).attributes[0].name, "Id");
  EXPECT_TRUE(out->object(link).attributes[0].is_key);
}

TEST(TransformTest, EntityToRelationshipInvertsTheConversion) {
  // Round trip: Marriage relationship -> entity -> relationship again.
  Result<Schema> as_entity = RelationshipToEntity(Census(), "Marriage");
  ASSERT_TRUE(as_entity.ok());
  Result<Schema> back = EntityToRelationship(*as_entity, "Marriage");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(CheckSchemaValid(*back).ok());

  RelationshipId marriage = back->FindRelationship("Marriage");
  ASSERT_GE(marriage, 0);
  const RelationshipSet& rel = back->relationship(marriage);
  ASSERT_EQ(rel.participants.size(), 2u);
  std::set<std::string> partners;
  for (const Participation& p : rel.participants) {
    partners.insert(back->object(p.object).name);
    EXPECT_EQ(p.max_card, 1);  // original [0,1] cardinalities survive
  }
  EXPECT_EQ(partners, (std::set<std::string>{"Male", "Female"}));
  // The entity's attributes ride along (key flag dropped).
  ASSERT_EQ(rel.attributes.size(), 2u);
  EXPECT_FALSE(rel.attributes[0].is_key);
}

TEST(TransformTest, EntityToRelationshipPreconditions) {
  Schema census = Census();
  // A plain entity with no links.
  EXPECT_EQ(EntityToRelationship(census, "Male").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(EntityToRelationship(census, "Ghost").ok());
  // Categories block the conversion.
  SchemaBuilder b("s");
  b.Entity("E").Attr("K", Domain::Int(), true);
  b.Entity("A").Attr("K2", Domain::Int(), true);
  b.Entity("B").Attr("K3", Domain::Int(), true);
  b.Category("Sub", {"E"});
  b.Relationship("L1", {{"E", 1, 1, ""}, {"A", 0, 1, ""}});
  b.Relationship("L2", {{"E", 1, 1, ""}, {"B", 0, 1, ""}});
  Schema s = *b.Build();
  EXPECT_EQ(EntityToRelationship(s, "E").status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ecrint::ecr
