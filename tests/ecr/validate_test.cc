#include "ecr/validate.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::ecr {
namespace {

bool HasIssue(const std::vector<ValidationIssue>& issues,
              IssueSeverity severity, const std::string& needle) {
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == severity &&
        issue.ToString().find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

Schema ValidUniversity() {
  SchemaBuilder b("sc1");
  b.Entity("Student").Attr("Name", Domain::Char(), true);
  b.Entity("Department").Attr("Dname", Domain::Char(), true);
  b.Category("Grad_student", {"Student"});
  b.Relationship("Majors", {{"Student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  return *b.Build();
}

TEST(ValidateTest, CleanSchemaHasNoErrors) {
  Schema s = ValidUniversity();
  EXPECT_TRUE(CheckSchemaValid(s).ok());
  for (const ValidationIssue& issue : ValidateSchema(s)) {
    EXPECT_NE(issue.severity, IssueSeverity::kError) << issue.ToString();
  }
}

TEST(ValidateTest, MissingKeyIsWarningOnly) {
  Schema s("w");
  ASSERT_TRUE(s.AddEntitySet("NoKey").ok());
  std::vector<ValidationIssue> issues = ValidateSchema(s);
  EXPECT_TRUE(HasIssue(issues, IssueSeverity::kWarning, "no key attribute"));
  EXPECT_TRUE(CheckSchemaValid(s).ok());
}

TEST(ValidateTest, DetectsIsaCycleInjectedBehindApi) {
  // The Schema API refuses cycles, so corrupt the parent list directly to
  // prove the validator catches what the API cannot see (e.g. hand-built
  // integration output).
  Schema s("cyc");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddCategory("B", {a});
  s.mutable_object(a).parents.push_back(b);
  std::vector<ValidationIssue> issues = ValidateSchema(s);
  EXPECT_TRUE(HasIssue(issues, IssueSeverity::kError, "cycle"));
  EXPECT_FALSE(CheckSchemaValid(s).ok());
}

TEST(ValidateTest, EntityWithParentsIsError) {
  Schema s("e");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddEntitySet("B");
  s.mutable_object(b).parents.push_back(a);
  EXPECT_TRUE(HasIssue(ValidateSchema(s), IssueSeverity::kError,
                       "entity set must not have parents"));
}

TEST(ValidateTest, CategoryWithoutParentIsError) {
  Schema s("c");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddCategory("B", {a});
  s.mutable_object(b).parents.clear();
  EXPECT_TRUE(
      HasIssue(ValidateSchema(s), IssueSeverity::kError, "no parent"));
}

TEST(ValidateTest, DanglingParticipantIsError) {
  Schema s("d");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddEntitySet("B");
  ASSERT_TRUE(s.AddRelationship("R", {Participation{a, 0, 1, ""},
                                      Participation{b, 0, 1, ""}})
                  .ok());
  s.mutable_relationship(0).participants[1].object = 99;
  EXPECT_TRUE(
      HasIssue(ValidateSchema(s), IssueSeverity::kError, "out of range"));
}

TEST(ValidateTest, BadCardinalityIsError) {
  Schema s("b");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddEntitySet("B");
  ASSERT_TRUE(s.AddRelationship("R", {Participation{a, 0, 1, ""},
                                      Participation{b, 0, 1, ""}})
                  .ok());
  s.mutable_relationship(0).participants[0].min_card = 5;  // now [5,1]
  EXPECT_TRUE(HasIssue(ValidateSchema(s), IssueSeverity::kError,
                       "invalid cardinality"));
}

TEST(ValidateTest, UnitMismatchAcrossUsesIsWarning) {
  Schema s("u");
  ObjectId a = *s.AddEntitySet("A");
  ObjectId b = *s.AddEntitySet("B");
  ASSERT_TRUE(s.AddObjectAttribute(
                   a, {"Distance", Domain::Real().set_unit("km"), true})
                  .ok());
  ASSERT_TRUE(s.AddObjectAttribute(
                   b, {"Distance", Domain::Real().set_unit("mi"), true})
                  .ok());
  EXPECT_TRUE(HasIssue(ValidateSchema(s), IssueSeverity::kWarning,
                       "incomparable"));
}

TEST(ValidateTest, IssueToStringFormats) {
  ValidationIssue issue{IssueSeverity::kError, "R", "boom"};
  EXPECT_EQ(issue.ToString(), "error: R: boom");
  ValidationIssue warn{IssueSeverity::kWarning, "", "hmm"};
  EXPECT_EQ(warn.ToString(), "warning: hmm");
}

}  // namespace
}  // namespace ecrint::ecr
