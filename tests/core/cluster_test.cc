#include "core/cluster.h"

#include <gtest/gtest.h>

namespace ecrint::core {
namespace {

const ObjectRef A{"s1", "A"};
const ObjectRef B{"s2", "B"};
const ObjectRef C{"s2", "C"};
const ObjectRef D{"s3", "D"};

TEST(ClusterTest, NoAssertionsGivesSingletons) {
  AssertionStore store;
  std::vector<Cluster> clusters = BuildClusters(store, {A, B, C});
  ASSERT_EQ(clusters.size(), 3u);
  for (const Cluster& c : clusters) EXPECT_EQ(c.members.size(), 1u);
}

TEST(ClusterTest, IntegratingAssertionsConnect) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(A, B, AssertionType::kEquals).ok());
  ASSERT_TRUE(store.Assert(C, D, AssertionType::kDisjointIntegrable).ok());
  std::vector<Cluster> clusters = BuildClusters(store, {A, B, C, D});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].members, (std::vector<ObjectRef>{A, B}));
  EXPECT_EQ(clusters[1].members, (std::vector<ObjectRef>{C, D}));
}

TEST(ClusterTest, DisjointNonintegrableDoesNotConnect) {
  // The paper: clusters connect by "any assertion except disjoint
  // disintegrable".
  AssertionStore store;
  ASSERT_TRUE(
      store.Assert(A, B, AssertionType::kDisjointNonintegrable).ok());
  std::vector<Cluster> clusters = BuildClusters(store, {A, B});
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(ClusterTest, DerivedRelationsConnectTransitively) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(A, B, AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(B, C, AssertionType::kContainedIn).ok());
  // A ⊆ C is derived; all three must land in one cluster regardless.
  std::vector<Cluster> clusters = BuildClusters(store, {A, B, C});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
}

TEST(ClusterTest, UniverseControlsMembership) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(A, B, AssertionType::kEquals).ok());
  // D unknown to the store still appears as a singleton; B excluded from the
  // universe does not appear.
  std::vector<Cluster> clusters = BuildClusters(store, {A, D});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].members, std::vector<ObjectRef>{A});
  EXPECT_EQ(clusters[1].members, std::vector<ObjectRef>{D});
}

TEST(ClusterTest, DeterministicOrder) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(D, C, AssertionType::kEquals).ok());
  std::vector<Cluster> clusters = BuildClusters(store, {D, C, A});
  ASSERT_EQ(clusters.size(), 2u);
  // Clusters sorted by smallest member; members sorted.
  EXPECT_EQ(clusters[0].members, std::vector<ObjectRef>{A});
  EXPECT_EQ(clusters[1].members, (std::vector<ObjectRef>{C, D}));
}

}  // namespace
}  // namespace ecrint::core
