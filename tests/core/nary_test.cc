#include "core/nary.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

// Three views of a personnel world.
struct Fixture {
  ecr::Catalog catalog;
  EquivalenceMap equivalence{*EquivalenceMap::Create(ecr::Catalog(), {})};
  AssertionStore assertions;
};

Fixture MakeFixture() {
  Fixture f;
  SchemaBuilder b1("v1");
  b1.Entity("Person")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char());
  EXPECT_TRUE(f.catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("v2");
  b2.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Salary", Domain::Real());
  EXPECT_TRUE(f.catalog.AddSchema(*b2.Build()).ok());
  SchemaBuilder b3("v3");
  b3.Entity("Manager")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Bonus", Domain::Real());
  EXPECT_TRUE(f.catalog.AddSchema(*b3.Build()).ok());

  f.equivalence = *EquivalenceMap::Create(f.catalog, {"v1", "v2", "v3"});
  EXPECT_TRUE(f.equivalence
                  .DeclareEquivalent({"v1", "Person", "Ssn"},
                                     {"v2", "Employee", "Ssn"})
                  .ok());
  EXPECT_TRUE(f.equivalence
                  .DeclareEquivalent({"v2", "Employee", "Ssn"},
                                     {"v3", "Manager", "Ssn"})
                  .ok());
  // Manager ⊂ Employee ⊂ Person.
  EXPECT_TRUE(f.assertions
                  .Assert({"v2", "Employee"}, {"v1", "Person"},
                          AssertionType::kContainedIn)
                  .ok());
  EXPECT_TRUE(f.assertions
                  .Assert({"v3", "Manager"}, {"v2", "Employee"},
                          AssertionType::kContainedIn)
                  .ok());
  return f;
}

TEST(BinaryLadderTest, ProducesSameLatticeAsNary) {
  Fixture f = MakeFixture();
  Result<IntegrationResult> nary = Integrate(
      f.catalog, {"v1", "v2", "v3"}, f.equivalence, f.assertions);
  ASSERT_TRUE(nary.ok()) << nary.status();
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      f.catalog, {"v1", "v2", "v3"}, f.equivalence, f.assertions);
  ASSERT_TRUE(ladder.ok()) << ladder.status();

  for (const IntegrationResult* result : {&*nary, &*ladder}) {
    const ecr::Schema& s = result->schema;
    ecr::ObjectId person = s.FindObject("Person");
    ecr::ObjectId employee = s.FindObject("Employee");
    ecr::ObjectId manager = s.FindObject("Manager");
    ASSERT_NE(person, ecr::kNoObject);
    ASSERT_NE(employee, ecr::kNoObject);
    ASSERT_NE(manager, ecr::kNoObject);
    EXPECT_EQ(s.object(employee).parents,
              std::vector<ecr::ObjectId>{person});
    EXPECT_EQ(s.object(manager).parents,
              std::vector<ecr::ObjectId>{employee});
    EXPECT_EQ(s.num_objects(), 3);
  }
}

TEST(BinaryLadderTest, ComposedMappingsReferOriginals) {
  Fixture f = MakeFixture();
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      f.catalog, {"v1", "v2", "v3"}, f.equivalence, f.assertions);
  ASSERT_TRUE(ladder.ok()) << ladder.status();
  Result<const StructureMapping*> manager =
      ladder->MappingFor({"v3", "Manager"});
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_EQ((*manager)->target, "Manager");
  // Manager.Ssn merged upward; its representative lives on Person.
  bool found = false;
  for (const AttributeMapping& m : (*manager)->attributes) {
    if (m.source_attribute == "Ssn") {
      EXPECT_EQ(m.target_owner, "Person");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BinaryLadderTest, ComposedSourcesReferOriginals) {
  Fixture f = MakeFixture();
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      f.catalog, {"v1", "v2", "v3"}, f.equivalence, f.assertions);
  ASSERT_TRUE(ladder.ok());
  const IntegratedStructureInfo* employee =
      ladder->FindStructure("Employee");
  ASSERT_NE(employee, nullptr);
  ASSERT_EQ(employee->sources.size(), 1u);
  EXPECT_EQ(employee->sources[0].ToString(), "v2.Employee");
}

TEST(BinaryLadderTest, EqualsChainAcrossRungs) {
  // v1.X = v2.X and v2.X = v3.X: the second equality only becomes visible
  // at the second rung, after v2.X has been folded into the intermediate.
  ecr::Catalog catalog;
  for (const char* name : {"v1", "v2", "v3"}) {
    SchemaBuilder b(name);
    b.Entity("X").Attr("K", Domain::Int(), true);
    ASSERT_TRUE(catalog.AddSchema(*b.Build()).ok());
  }
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"v1", "v2", "v3"});
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"v1", "X", "K"}, {"v2", "X", "K"})
                  .ok());
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"v2", "X", "K"}, {"v3", "X", "K"})
                  .ok());
  AssertionStore assertions;
  ASSERT_TRUE(assertions
                  .Assert({"v1", "X"}, {"v2", "X"}, AssertionType::kEquals)
                  .ok());
  ASSERT_TRUE(assertions
                  .Assert({"v2", "X"}, {"v3", "X"}, AssertionType::kEquals)
                  .ok());
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      catalog, {"v1", "v2", "v3"}, equivalence, assertions);
  ASSERT_TRUE(ladder.ok()) << ladder.status();
  EXPECT_EQ(ladder->schema.num_objects(), 1);
  const IntegratedStructureInfo* merged =
      ladder->FindStructure(ladder->schema.object(0).name);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->sources.size(), 3u);
}

TEST(BinaryLadderTest, SingleSchemaDelegates) {
  Fixture f = MakeFixture();
  Result<IntegrationResult> result = IntegrateBinaryLadder(
      f.catalog, {"v1"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema.num_objects(), 1);
}

TEST(BinaryLadderTest, FinalResultUsesRequestedName) {
  Fixture f = MakeFixture();
  IntegrationOptions options;
  options.result_name = "global";
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      f.catalog, {"v1", "v2", "v3"}, f.equivalence, f.assertions, options);
  ASSERT_TRUE(ladder.ok());
  EXPECT_EQ(ladder->schema.name(), "global");
}

}  // namespace
}  // namespace ecrint::core
