#include "core/integrator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ecr/builder.h"
#include "ecr/validate.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::ObjectKind;
using ecr::ObjectOrigin;
using ecr::SchemaBuilder;

// --- the paper's university example (Figures 3-5) --------------------------

ecr::Catalog UniversityCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  b1.Relationship("Majors", {{"Student", 1, 1, ""},
                             {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real())
      .Attr("Support_type", Domain::Char());
  b2.Entity("Faculty")
      .Attr("Name", Domain::Char(), true)
      .Attr("Rank", Domain::Char());
  b2.Entity("Department").Attr("Dname", Domain::Char(), true);
  b2.Relationship("Study", {{"Grad_student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  b2.Relationship("Works", {{"Faculty", 1, 1, ""},
                            {"Department", 1, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

IntegrationResult IntegrateUniversity() {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  // The session behind Screens 11-12: Name and GPA of Student/Grad_student
  // are equivalent, the Department keys are equivalent; Faculty's Name is
  // kept separate (as in Screen 12's two-component D_Name).
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad_student", "GPA"})
                  .ok());
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"sc1", "Department", "Dname"},
                                     {"sc2", "Department", "Dname"})
                  .ok());

  AssertionStore assertions;
  // Screen 8's answers: 1 (equals), 3 (contains), 4 (disjoint integrable).
  EXPECT_TRUE(assertions
                  .Assert({"sc1", "Department"}, {"sc2", "Department"},
                          AssertionType::kEquals)
                  .ok());
  EXPECT_TRUE(assertions
                  .Assert({"sc1", "Student"}, {"sc2", "Grad_student"},
                          AssertionType::kContains)
                  .ok());
  EXPECT_TRUE(assertions
                  .Assert({"sc1", "Student"}, {"sc2", "Faculty"},
                          AssertionType::kDisjointIntegrable)
                  .ok());
  // Relationship phase: Majors and Study describe the same association.
  EXPECT_TRUE(assertions
                  .Assert({"sc1", "Majors"}, {"sc2", "Study"},
                          AssertionType::kEquals)
                  .ok());

  Result<IntegrationResult> result =
      Integrate(catalog, {"sc1", "sc2"}, equivalence, assertions);
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(IntegratorTest, Figure5ObjectLattice) {
  IntegrationResult result = IntegrateUniversity();
  const ecr::Schema& s = result.schema;

  // Figure 5 / Screen 10: entities E_Department and D_Stud_Facu; categories
  // Student, Grad_student, Faculty.
  ecr::ObjectId e_dept = s.FindObject("E_Department");
  ecr::ObjectId d_sf = s.FindObject("D_Stud_Facu");
  ecr::ObjectId student = s.FindObject("Student");
  ecr::ObjectId grad = s.FindObject("Grad_student");
  ecr::ObjectId faculty = s.FindObject("Faculty");
  ASSERT_NE(e_dept, ecr::kNoObject);
  ASSERT_NE(d_sf, ecr::kNoObject);
  ASSERT_NE(student, ecr::kNoObject);
  ASSERT_NE(grad, ecr::kNoObject);
  ASSERT_NE(faculty, ecr::kNoObject);

  EXPECT_EQ(s.object(e_dept).kind, ObjectKind::kEntitySet);
  EXPECT_EQ(s.object(e_dept).origin, ObjectOrigin::kEquivalent);
  EXPECT_EQ(s.object(d_sf).kind, ObjectKind::kEntitySet);
  EXPECT_EQ(s.object(d_sf).origin, ObjectOrigin::kDerived);

  // Screen 11: Student's parent is D_Stud_Facu, child is Grad_student.
  EXPECT_EQ(s.object(student).kind, ObjectKind::kCategory);
  EXPECT_EQ(s.object(student).parents, std::vector<ecr::ObjectId>{d_sf});
  EXPECT_EQ(s.ChildrenOf(student), std::vector<ecr::ObjectId>{grad});
  EXPECT_EQ(s.object(faculty).parents, std::vector<ecr::ObjectId>{d_sf});

  // The result is a structurally valid ECR schema.
  EXPECT_TRUE(ecr::CheckSchemaValid(s).ok());
}

TEST(IntegratorTest, Figure5AttributePlacement) {
  IntegrationResult result = IntegrateUniversity();
  const ecr::Schema& s = result.schema;

  // Screen 12: Student carries derived D_Name (and D_GPA); Grad_student
  // keeps only Support_type and inherits the rest.
  ecr::ObjectId student = s.FindObject("Student");
  std::vector<std::string> names;
  for (const ecr::Attribute& a : s.object(student).attributes) {
    names.push_back(a.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"D_Name", "D_GPA"}));
  // Both components were keys, so D_Name stays a key.
  EXPECT_TRUE(s.object(student).attributes[0].is_key);
  EXPECT_FALSE(s.object(student).attributes[1].is_key);

  ecr::ObjectId grad = s.FindObject("Grad_student");
  ASSERT_EQ(s.object(grad).attributes.size(), 1u);
  EXPECT_EQ(s.object(grad).attributes[0].name, "Support_type");
  // Inherited view includes the derived attributes.
  std::vector<ecr::Attribute> all = s.InheritedAttributes(grad);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "D_Name");

  // E_Department holds the merged key.
  ecr::ObjectId dept = s.FindObject("E_Department");
  ASSERT_EQ(s.object(dept).attributes.size(), 1u);
  EXPECT_EQ(s.object(dept).attributes[0].name, "D_Dname");

  // Screens 12a/b: D_Name's components are sc1.Student.Name and
  // sc2.Grad_student.Name.
  const DerivedAttributeInfo* d_name =
      result.FindDerivedAttribute("Student", "D_Name");
  ASSERT_NE(d_name, nullptr);
  ASSERT_EQ(d_name->components.size(), 2u);
  EXPECT_EQ(d_name->components[0].ToString(), "sc1.Student.Name");
  EXPECT_EQ(d_name->components[1].ToString(), "sc2.Grad_student.Name");
  // Faculty's Name was not declared equivalent, so it is not derived.
  EXPECT_EQ(result.FindDerivedAttribute("Faculty", "Name"), nullptr);
}

TEST(IntegratorTest, Figure5Relationships) {
  IntegrationResult result = IntegrateUniversity();
  const ecr::Schema& s = result.schema;

  // Figure 5: the merged Majors/Study relationship and Works.
  ecr::RelationshipId merged = s.FindRelationship("E_Majo_Stud");
  ASSERT_GE(merged, 0);
  EXPECT_EQ(s.relationship(merged).origin, ObjectOrigin::kEquivalent);
  const auto& participants = s.relationship(merged).participants;
  ASSERT_EQ(participants.size(), 2u);
  // Student generalizes Grad_student, so the merged relationship connects
  // Student; the Departments merged into E_Department.
  EXPECT_EQ(s.object(participants[0].object).name, "Student");
  EXPECT_EQ(participants[0].min_card, 1);
  EXPECT_EQ(participants[0].max_card, 1);
  EXPECT_EQ(s.object(participants[1].object).name, "E_Department");
  EXPECT_EQ(participants[1].min_card, 0);
  EXPECT_EQ(participants[1].max_card, ecr::kUnboundedCardinality);

  ecr::RelationshipId works = s.FindRelationship("Works");
  ASSERT_GE(works, 0);
  EXPECT_EQ(s.object(s.relationship(works).participants[0].object).name,
            "Faculty");
  EXPECT_EQ(s.object(s.relationship(works).participants[1].object).name,
            "E_Department");
}

TEST(IntegratorTest, Figure5Clusters) {
  IntegrationResult result = IntegrateUniversity();
  ASSERT_EQ(result.object_clusters.size(), 2u);
  // {sc1.Department, sc2.Department} and {Student, Grad_student, Faculty}.
  EXPECT_EQ(result.object_clusters[0].members.size(), 2u);
  EXPECT_EQ(result.object_clusters[1].members.size(), 3u);
  // Relationships: {Majors, Study} and {Works}.
  ASSERT_EQ(result.relationship_clusters.size(), 2u);
}

TEST(IntegratorTest, Figure5Mappings) {
  IntegrationResult result = IntegrateUniversity();
  Result<const StructureMapping*> grad =
      result.MappingFor({"sc2", "Grad_student"});
  ASSERT_TRUE(grad.ok());
  EXPECT_EQ((*grad)->target, "Grad_student");
  // Its Name attribute is represented by D_Name on Student.
  bool found = false;
  for (const AttributeMapping& m : (*grad)->attributes) {
    if (m.source_attribute == "Name") {
      EXPECT_EQ(m.target_owner, "Student");
      EXPECT_EQ(m.target_attribute, "D_Name");
      found = true;
    }
  }
  EXPECT_TRUE(found);

  Result<const StructureMapping*> majors = result.MappingFor({"sc1", "Majors"});
  ASSERT_TRUE(majors.ok());
  EXPECT_EQ((*majors)->target, "E_Majo_Stud");

  // Federated extent of the derived generalization covers all components.
  std::vector<ObjectRef> extent = result.ComponentExtent("D_Stud_Facu");
  ASSERT_EQ(extent.size(), 3u);
  EXPECT_TRUE(std::find(extent.begin(), extent.end(),
                        ObjectRef{"sc1", "Student"}) != extent.end());
  EXPECT_TRUE(std::find(extent.begin(), extent.end(),
                        ObjectRef{"sc2", "Grad_student"}) != extent.end());
  EXPECT_TRUE(std::find(extent.begin(), extent.end(),
                        ObjectRef{"sc2", "Faculty"}) != extent.end());
}

// --- Figure 2: one test per assertion outcome ------------------------------

struct TwoSchemaFixture {
  ecr::Catalog catalog;
  EquivalenceMap equivalence;
  AssertionStore assertions;
};

TwoSchemaFixture MakePair(const std::string& name1, const std::string& name2,
                          bool equate_keys = true) {
  ecr::Catalog catalog;
  SchemaBuilder b1("sc1");
  b1.Entity(name1).Attr("Id", Domain::Int(), true).Attr("A1", Domain::Char());
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("sc2");
  b2.Entity(name2).Attr("Id", Domain::Int(), true).Attr("A2", Domain::Char());
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  if (equate_keys) {
    EXPECT_TRUE(equivalence
                    .DeclareEquivalent({"sc1", name1, "Id"},
                                       {"sc2", name2, "Id"})
                    .ok());
  }
  return {std::move(catalog), std::move(equivalence), AssertionStore()};
}

TEST(IntegratorTest, Figure2aEqualsMergesIntoEClass) {
  TwoSchemaFixture f = MakePair("Department", "Department");
  ASSERT_TRUE(f.assertions
                  .Assert({"sc1", "Department"}, {"sc2", "Department"},
                          AssertionType::kEquals)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.num_objects(), 1);
  const ecr::ObjectClass& merged = result->schema.object(0);
  EXPECT_EQ(merged.name, "E_Department");
  EXPECT_EQ(merged.origin, ObjectOrigin::kEquivalent);
  // Merged key plus both non-equivalent attributes.
  EXPECT_EQ(merged.attributes.size(), 3u);
}

TEST(IntegratorTest, Figure2bContainsMakesCategory) {
  TwoSchemaFixture f = MakePair("Student", "Grad_student");
  ASSERT_TRUE(f.assertions
                  .Assert({"sc1", "Student"}, {"sc2", "Grad_student"},
                          AssertionType::kContains)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  ecr::ObjectId student = s.FindObject("Student");
  ecr::ObjectId grad = s.FindObject("Grad_student");
  ASSERT_NE(student, ecr::kNoObject);
  ASSERT_NE(grad, ecr::kNoObject);
  EXPECT_EQ(s.object(student).kind, ObjectKind::kEntitySet);
  EXPECT_EQ(s.object(grad).kind, ObjectKind::kCategory);
  EXPECT_EQ(s.object(grad).parents, std::vector<ecr::ObjectId>{student});
}

TEST(IntegratorTest, Figure2cMayBeCreatesDerivedGeneralization) {
  TwoSchemaFixture f = MakePair("Grad_student", "Instructor");
  ASSERT_TRUE(f.assertions
                  .Assert({"sc1", "Grad_student"}, {"sc2", "Instructor"},
                          AssertionType::kMayBe)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  ecr::ObjectId derived = s.FindObject("D_Grad_Inst");
  ASSERT_NE(derived, ecr::kNoObject);
  EXPECT_EQ(s.object(derived).kind, ObjectKind::kEntitySet);
  EXPECT_EQ(s.object(derived).origin, ObjectOrigin::kDerived);
  ecr::ObjectId grad = s.FindObject("Grad_student");
  ecr::ObjectId instructor = s.FindObject("Instructor");
  EXPECT_EQ(s.object(grad).parents, std::vector<ecr::ObjectId>{derived});
  EXPECT_EQ(s.object(instructor).parents,
            std::vector<ecr::ObjectId>{derived});
  // The shared key moves up to the generalization.
  ASSERT_EQ(s.object(derived).attributes.size(), 1u);
  EXPECT_EQ(s.object(derived).attributes[0].name, "D_Id");
}

TEST(IntegratorTest, Figure2dDisjointIntegrableCreatesDerived) {
  TwoSchemaFixture f = MakePair("Secretary", "Engineer");
  ASSERT_TRUE(f.assertions
                  .Assert({"sc1", "Secretary"}, {"sc2", "Engineer"},
                          AssertionType::kDisjointIntegrable)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->schema.FindObject("D_Secr_Engi"), ecr::kNoObject);
}

TEST(IntegratorTest, Figure2eDisjointNonintegrableKeptApart) {
  TwoSchemaFixture f = MakePair("Under_Grad_Student", "Full_Professor",
                                /*equate_keys=*/false);
  ASSERT_TRUE(f.assertions
                  .Assert({"sc1", "Under_Grad_Student"},
                          {"sc2", "Full_Professor"},
                          AssertionType::kDisjointNonintegrable)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  EXPECT_EQ(s.num_objects(), 2);
  EXPECT_NE(s.FindObject("Under_Grad_Student"), ecr::kNoObject);
  EXPECT_NE(s.FindObject("Full_Professor"), ecr::kNoObject);
  for (ecr::ObjectId i = 0; i < s.num_objects(); ++i) {
    EXPECT_EQ(s.object(i).kind, ObjectKind::kEntitySet);
    EXPECT_EQ(s.object(i).origin, ObjectOrigin::kComponent);
  }
  // Two singleton clusters.
  EXPECT_EQ(result->object_clusters.size(), 2u);
}

// --- behaviours beyond the figures -----------------------------------------

TEST(IntegratorTest, UnassertedNameCollisionQualifiedBySchema) {
  TwoSchemaFixture f = MakePair("Student", "Student", /*equate_keys=*/false);
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"sc1", "sc2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->schema.FindObject("Student"), ecr::kNoObject);
  EXPECT_NE(result->schema.FindObject("sc2_Student"), ecr::kNoObject);
}

TEST(IntegratorTest, TransitiveReductionDropsImpliedEdge) {
  ecr::Catalog catalog;
  SchemaBuilder b1("s1");
  b1.Entity("A");
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("s2");
  b2.Entity("B");
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  SchemaBuilder b3("s3");
  b3.Entity("C");
  ASSERT_TRUE(catalog.AddSchema(*b3.Build()).ok());
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"s1", "s2", "s3"});
  AssertionStore assertions;
  ASSERT_TRUE(assertions.Assert({"s1", "A"}, {"s2", "B"},
                                AssertionType::kContainedIn).ok());
  ASSERT_TRUE(assertions.Assert({"s2", "B"}, {"s3", "C"},
                                AssertionType::kContainedIn).ok());
  ASSERT_TRUE(assertions.Assert({"s1", "A"}, {"s3", "C"},
                                AssertionType::kContainedIn).ok());
  Result<IntegrationResult> result =
      Integrate(catalog, {"s1", "s2", "s3"}, equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  ecr::ObjectId a = s.FindObject("A");
  ecr::ObjectId b = s.FindObject("B");
  // A's only direct parent is B; A -> C is implied.
  EXPECT_EQ(s.object(a).parents, std::vector<ecr::ObjectId>{b});
}

TEST(IntegratorTest, NaryIntegrationAcrossThreeSchemas) {
  ecr::Catalog catalog;
  for (const char* name : {"v1", "v2", "v3"}) {
    SchemaBuilder b(name);
    b.Entity("Person").Attr("Ssn", Domain::Int(), true);
    ASSERT_TRUE(catalog.AddSchema(*b.Build()).ok());
  }
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"v1", "v2", "v3"});
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"v1", "Person", "Ssn"},
                                     {"v2", "Person", "Ssn"})
                  .ok());
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"v2", "Person", "Ssn"},
                                     {"v3", "Person", "Ssn"})
                  .ok());
  AssertionStore assertions;
  ASSERT_TRUE(assertions.Assert({"v1", "Person"}, {"v2", "Person"},
                                AssertionType::kEquals).ok());
  ASSERT_TRUE(assertions.Assert({"v2", "Person"}, {"v3", "Person"},
                                AssertionType::kEquals).ok());
  // v1 = v3 is derived; all three merge into one E_ class.
  Result<IntegrationResult> result =
      Integrate(catalog, {"v1", "v2", "v3"}, equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.num_objects(), 1);
  const IntegratedStructureInfo* info =
      result->FindStructure("E_Person");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->sources.size(), 3u);
}

TEST(IntegratorTest, WithinSchemaCategoriesCarryOver) {
  ecr::Catalog catalog;
  SchemaBuilder b1("s1");
  b1.Entity("Person").Attr("Ssn", Domain::Int(), true);
  b1.Category("Employee", {"Person"}).Attr("Salary", Domain::Real());
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("s2");
  b2.Entity("Contractor").Attr("Ssn", Domain::Int(), true);
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"s1", "s2"});
  AssertionStore assertions;
  ASSERT_TRUE(assertions.Assert({"s2", "Contractor"}, {"s1", "Person"},
                                AssertionType::kContainedIn).ok());
  Result<IntegrationResult> result =
      Integrate(catalog, {"s1", "s2"}, equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  ecr::ObjectId person = s.FindObject("Person");
  ecr::ObjectId employee = s.FindObject("Employee");
  ecr::ObjectId contractor = s.FindObject("Contractor");
  EXPECT_EQ(s.object(employee).parents, std::vector<ecr::ObjectId>{person});
  EXPECT_EQ(s.object(contractor).parents, std::vector<ecr::ObjectId>{person});
}

TEST(IntegratorTest, ConflictingAssertionsSurfaceThroughSeeding) {
  // Equate a foreign class with two local entity sets, which the ECR model
  // makes disjoint: Integrate must fail with a conflict.
  ecr::Catalog catalog;
  SchemaBuilder b1("s1");
  b1.Entity("A");
  b1.Entity("B");
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("s2");
  b2.Entity("X");
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"s1", "s2"});
  AssertionStore assertions;
  ASSERT_TRUE(assertions.Assert({"s2", "X"}, {"s1", "A"},
                                AssertionType::kEquals).ok());
  ASSERT_TRUE(assertions.Assert({"s2", "X"}, {"s1", "B"},
                                AssertionType::kEquals).ok());
  Result<IntegrationResult> result =
      Integrate(catalog, {"s1", "s2"}, equivalence, assertions);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConflict);
}

TEST(IntegratorTest, SingleSchemaPassesThrough) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"sc1"});
  AssertionStore assertions;
  Result<IntegrationResult> result =
      Integrate(catalog, {"sc1"}, equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema.num_objects(), 2);
  EXPECT_EQ(result->schema.num_relationships(), 1);
  EXPECT_NE(result->schema.FindObject("Student"), ecr::kNoObject);
}

TEST(IntegratorTest, RejectsEmptyAndUnknownSchemas) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"sc1"});
  AssertionStore assertions;
  EXPECT_FALSE(Integrate(catalog, {}, equivalence, assertions).ok());
  EXPECT_FALSE(
      Integrate(catalog, {"sc1", "nope"}, equivalence, assertions).ok());
}

TEST(IntegratorTest, ResultNameOption) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"sc1"});
  AssertionStore assertions;
  IntegrationOptions options;
  options.result_name = "global";
  Result<IntegrationResult> result =
      Integrate(catalog, {"sc1"}, equivalence, assertions, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema.name(), "global");
}

}  // namespace
}  // namespace ecrint::core
