#include "core/assertion.h"

#include <gtest/gtest.h>

namespace ecrint::core {
namespace {

TEST(AssertionTest, MenuCodesRoundTrip) {
  for (int code = 0; code <= 5; ++code) {
    Result<AssertionType> type = AssertionTypeFromCode(code);
    ASSERT_TRUE(type.ok()) << code;
    EXPECT_EQ(AssertionTypeCode(*type), code);
  }
  EXPECT_FALSE(AssertionTypeFromCode(-1).ok());
  EXPECT_FALSE(AssertionTypeFromCode(6).ok());
}

TEST(AssertionTest, MenuCodesMatchScreen8) {
  // 1 - equals, 2 - contained in, 3 - contains, 4 - disjoint but
  // integratable, 5 - may be integratable, 0 - disjoint & non-integratable.
  EXPECT_EQ(AssertionTypeCode(AssertionType::kEquals), 1);
  EXPECT_EQ(AssertionTypeCode(AssertionType::kContainedIn), 2);
  EXPECT_EQ(AssertionTypeCode(AssertionType::kContains), 3);
  EXPECT_EQ(AssertionTypeCode(AssertionType::kDisjointIntegrable), 4);
  EXPECT_EQ(AssertionTypeCode(AssertionType::kMayBe), 5);
  EXPECT_EQ(AssertionTypeCode(AssertionType::kDisjointNonintegrable), 0);
}

TEST(AssertionTest, RelationOfMapsToDomainRelations) {
  EXPECT_EQ(RelationOf(AssertionType::kEquals), SetRelation::kEqual);
  EXPECT_EQ(RelationOf(AssertionType::kContainedIn), SetRelation::kSubset);
  EXPECT_EQ(RelationOf(AssertionType::kContains), SetRelation::kSuperset);
  EXPECT_EQ(RelationOf(AssertionType::kMayBe), SetRelation::kOverlap);
  EXPECT_EQ(RelationOf(AssertionType::kDisjointIntegrable),
            SetRelation::kDisjoint);
  EXPECT_EQ(RelationOf(AssertionType::kDisjointNonintegrable),
            SetRelation::kDisjoint);
}

TEST(AssertionTest, OnlyDisjointNonintegrableBlocksIntegration) {
  EXPECT_FALSE(IsIntegrating(AssertionType::kDisjointNonintegrable));
  EXPECT_TRUE(IsIntegrating(AssertionType::kEquals));
  EXPECT_TRUE(IsIntegrating(AssertionType::kContains));
  EXPECT_TRUE(IsIntegrating(AssertionType::kContainedIn));
  EXPECT_TRUE(IsIntegrating(AssertionType::kMayBe));
  EXPECT_TRUE(IsIntegrating(AssertionType::kDisjointIntegrable));
}

TEST(AssertionTest, ConverseSwapsContainmentOnly) {
  EXPECT_EQ(ConverseAssertion(AssertionType::kContains),
            AssertionType::kContainedIn);
  EXPECT_EQ(ConverseAssertion(AssertionType::kContainedIn),
            AssertionType::kContains);
  EXPECT_EQ(ConverseAssertion(AssertionType::kEquals),
            AssertionType::kEquals);
  EXPECT_EQ(ConverseAssertion(AssertionType::kMayBe), AssertionType::kMayBe);
}

TEST(AssertionTest, ToStringReadsLikeTheScreenMenu) {
  Assertion a{{"sc1", "Student"}, {"sc2", "Grad_student"},
              AssertionType::kContains};
  EXPECT_EQ(a.ToString(), "sc1.Student contains sc2.Grad_student");
  Assertion b{{"sc1", "A"}, {"sc2", "B"},
              AssertionType::kDisjointNonintegrable};
  EXPECT_EQ(b.ToString(), "sc1.A are disjoint & non-integratable sc2.B");
}

TEST(ObjectRefTest, OrderingAndFormatting) {
  ObjectRef a{"sc1", "Student"};
  ObjectRef b{"sc1", "Department"};
  ObjectRef c{"sc2", "Student"};
  EXPECT_EQ(a.ToString(), "sc1.Student");
  EXPECT_LT(b, a);  // same schema, name order
  EXPECT_LT(a, c);  // schema order first
  EXPECT_EQ(a, (ObjectRef{"sc1", "Student"}));
}

}  // namespace
}  // namespace ecrint::core
