// Semantics guard for the class-indexed resemblance data plane: the
// inverted-index EquivalentAttributeCount and the class-scatter OCS build
// must be indistinguishable from the naive O(|A|·|B|) / dense R×C reference
// they replaced, on the paper's university fixtures and on a generated
// 100-concept workload.

#include <algorithm>
#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/resemblance.h"
#include "ecr/builder.h"
#include "workload/generator.h"

namespace ecrint::core {
namespace {

using ecr::AttributePath;
using ecr::Domain;
using ecr::SchemaBuilder;

ecr::Catalog UniversityCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  b1.Relationship("Majors", {{"Student", 1, 1, ""},
                             {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real())
      .Attr("Support_type", Domain::Char());
  b2.Entity("Faculty")
      .Attr("Name", Domain::Char(), true)
      .Attr("Rank", Domain::Char());
  b2.Entity("Department").Attr("Dname", Domain::Char(), true);
  b2.Relationship("Study", {{"Grad_student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

// The pre-index reference: count equivalent pairs by probing every
// attribute pair with AreEquivalent.
int BruteForceCount(const EquivalenceMap& map, const ObjectRef& a,
                    const ObjectRef& b) {
  int count = 0;
  for (const AttributePath& pa : map.AttributesOf(a)) {
    for (const AttributePath& pb : map.AttributesOf(b)) {
      if (map.AreEquivalent(pa, pb)) ++count;
    }
  }
  return count;
}

// The pre-index reference for ClassOf: 1 + the smallest registration index
// among equivalent attributes, scanning every registered attribute.
int BruteForceClassOf(const EquivalenceMap& map, const AttributePath& path) {
  for (int i = 0; i < map.num_attributes(); ++i) {
    if (map.AreEquivalent(map.PathAt(i), path)) return i + 1;
  }
  ADD_FAILURE() << "unregistered path " << path.ToString();
  return -1;
}

void ExpectMatrixMatchesBruteForce(const ecr::Catalog& catalog,
                                   const EquivalenceMap& map,
                                   const std::string& s1,
                                   const std::string& s2,
                                   StructureKind kind) {
  Result<OcsMatrix> matrix = OcsMatrix::Create(catalog, map, s1, s2, kind);
  ASSERT_TRUE(matrix.ok()) << matrix.status();
  for (size_t r = 0; r < matrix->rows().size(); ++r) {
    for (size_t c = 0; c < matrix->columns().size(); ++c) {
      EXPECT_EQ(matrix->Count(static_cast<int>(r), static_cast<int>(c)),
                BruteForceCount(map, matrix->rows()[r],
                                matrix->columns()[c]))
          << matrix->rows()[r].ToString() << " x "
          << matrix->columns()[c].ToString();
      EXPECT_EQ(matrix->Count(static_cast<int>(r), static_cast<int>(c)),
                map.EquivalentAttributeCount(matrix->rows()[r],
                                             matrix->columns()[c]));
    }
  }
}

TEST(EquivalencePerfSemanticsTest, UniversityMatrixMatchesBruteForce) {
  ecr::Catalog catalog = UniversityCatalog();
  Result<EquivalenceMap> map = EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad_student", "GPA"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Department", "Dname"},
                                     {"sc2", "Department", "Dname"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Faculty", "Name"})
                  .ok());
  ExpectMatrixMatchesBruteForce(catalog, *map, "sc1", "sc2",
                                StructureKind::kObjectClass);
  ExpectMatrixMatchesBruteForce(catalog, *map, "sc1", "sc2",
                                StructureKind::kRelationshipSet);
}

TEST(EquivalencePerfSemanticsTest, UniversityClassNumbersMatchBruteForce) {
  ecr::Catalog catalog = UniversityCatalog();
  Result<EquivalenceMap> map = EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Faculty", "Name"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc2", "Grad_student", "GPA"},
                                     {"sc1", "Student", "GPA"})
                  .ok());
  for (int i = 0; i < map->num_attributes(); ++i) {
    EXPECT_EQ(*map->ClassOf(map->PathAt(i)),
              BruteForceClassOf(*map, map->PathAt(i)));
  }
}

// Removal must re-root correctly even when the removed attribute is the
// union-find root, and class numbers must track the brute-force reference
// through arbitrary mutation.
TEST(EquivalencePerfSemanticsTest, RemoveRootKeepsIndexConsistent) {
  ecr::Catalog catalog = UniversityCatalog();
  Result<EquivalenceMap> map = EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  ASSERT_TRUE(map->DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Faculty", "Name"})
                  .ok());
  // sc1.Student.Name is the first-registered member and the class's number
  // source; remove it and the survivors must renumber to the next smallest.
  ASSERT_TRUE(map->RemoveFromClass({"sc1", "Student", "Name"}).ok());
  EXPECT_TRUE(map->AreEquivalent({"sc2", "Grad_student", "Name"},
                                 {"sc2", "Faculty", "Name"}));
  EXPECT_FALSE(map->AreEquivalent({"sc1", "Student", "Name"},
                                  {"sc2", "Faculty", "Name"}));
  for (int i = 0; i < map->num_attributes(); ++i) {
    EXPECT_EQ(*map->ClassOf(map->PathAt(i)),
              BruteForceClassOf(*map, map->PathAt(i)));
  }
  ASSERT_EQ(map->NontrivialClasses().size(), 1u);
  EXPECT_EQ(map->NontrivialClasses()[0].size(), 2u);
}

workload::Workload MakeWorkload() {
  workload::GeneratorConfig config;
  config.num_concepts = 100;
  config.num_schemas = 2;
  config.concept_coverage = 0.9;
  Result<workload::Workload> workload = workload::GenerateWorkload(config);
  EXPECT_TRUE(workload.ok());
  return *std::move(workload);
}

TEST(EquivalencePerfSemanticsTest, GeneratedWorkloadMatrixMatchesBruteForce) {
  workload::Workload w = MakeWorkload();
  Result<EquivalenceMap> map =
      EquivalenceMap::Create(w.catalog, w.schema_names);
  ASSERT_TRUE(map.ok());
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    (void)map->DeclareEquivalent(match.first, match.second);
  }
  ExpectMatrixMatchesBruteForce(w.catalog, *map, w.schema_names[0],
                                w.schema_names[1],
                                StructureKind::kObjectClass);
}

TEST(EquivalencePerfSemanticsTest, GeneratedWorkloadRankingIsReferenceOrder) {
  workload::Workload w = MakeWorkload();
  Result<EquivalenceMap> map =
      EquivalenceMap::Create(w.catalog, w.schema_names);
  ASSERT_TRUE(map.ok());
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    (void)map->DeclareEquivalent(match.first, match.second);
  }
  Result<OcsMatrix> matrix =
      OcsMatrix::Create(w.catalog, *map, w.schema_names[0], w.schema_names[1],
                        StructureKind::kObjectClass);
  ASSERT_TRUE(matrix.ok());

  // Reference ranking built from brute-force counts and a plain stable
  // recomputation of the documented comparator.
  std::vector<ObjectPair> reference;
  for (size_t r = 0; r < matrix->rows().size(); ++r) {
    std::vector<AttributePath> row_attrs =
        map->AttributesOf(matrix->rows()[r]);
    for (size_t c = 0; c < matrix->columns().size(); ++c) {
      int eq = BruteForceCount(*map, matrix->rows()[r], matrix->columns()[c]);
      if (eq == 0) continue;
      ObjectPair pair;
      pair.first = matrix->rows()[r];
      pair.second = matrix->columns()[c];
      pair.equivalent_attributes = eq;
      pair.smaller_attribute_count = static_cast<int>(
          std::min(row_attrs.size(),
                   map->AttributesOf(matrix->columns()[c]).size()));
      pair.attribute_ratio = static_cast<double>(eq) /
                             (eq + pair.smaller_attribute_count);
      reference.push_back(pair);
    }
  }
  std::sort(reference.begin(), reference.end(),
            [](const ObjectPair& a, const ObjectPair& b) {
              if (a.attribute_ratio != b.attribute_ratio) {
                return a.attribute_ratio > b.attribute_ratio;
              }
              if (!(a.first == b.first)) return a.first < b.first;
              return a.second < b.second;
            });

  std::vector<ObjectPair> ranked = matrix->RankedPairs();
  ASSERT_EQ(ranked.size(), reference.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].first, reference[i].first) << "rank " << i;
    EXPECT_EQ(ranked[i].second, reference[i].second) << "rank " << i;
    EXPECT_EQ(ranked[i].equivalent_attributes,
              reference[i].equivalent_attributes);
    EXPECT_DOUBLE_EQ(ranked[i].attribute_ratio, reference[i].attribute_ratio);
  }

  // TopKPairs must be exactly the k-prefix of the full ranking.
  for (int k : {1, 5, static_cast<int>(ranked.size()),
                static_cast<int>(ranked.size()) + 10}) {
    std::vector<ObjectPair> top = matrix->TopKPairs(k);
    ASSERT_EQ(top.size(), std::min<size_t>(k, ranked.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].first, ranked[i].first) << "k=" << k << " rank " << i;
      EXPECT_EQ(top[i].second, ranked[i].second);
    }
  }
}

TEST(EquivalencePerfSemanticsTest, GeneratedWorkloadSurvivesRemovals) {
  workload::Workload w = MakeWorkload();
  Result<EquivalenceMap> map =
      EquivalenceMap::Create(w.catalog, w.schema_names);
  ASSERT_TRUE(map.ok());
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    (void)map->DeclareEquivalent(match.first, match.second);
  }
  // Remove every 7th registered attribute from its class, then recheck a
  // slice of class numbers against the brute-force reference.
  for (int i = 0; i < map->num_attributes(); i += 7) {
    ASSERT_TRUE(map->RemoveFromClass(map->PathAt(i)).ok());
  }
  for (int i = 0; i < map->num_attributes(); i += 13) {
    EXPECT_EQ(*map->ClassOf(map->PathAt(i)),
              BruteForceClassOf(*map, map->PathAt(i)));
  }
  ExpectMatrixMatchesBruteForce(w.catalog, *map, w.schema_names[0],
                                w.schema_names[1],
                                StructureKind::kObjectClass);
}

}  // namespace
}  // namespace ecrint::core
