#include "core/project_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

// Live state matching the paper's university session.
struct Live {
  ecr::Catalog catalog;
  EquivalenceMap equivalence{*EquivalenceMap::Create(ecr::Catalog(), {})};
  AssertionStore assertions;
};

Live MakeLive() {
  Live live;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  EXPECT_TRUE(live.catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("Support_type", Domain::Char());
  EXPECT_TRUE(live.catalog.AddSchema(*b2.Build()).ok());
  live.equivalence = *EquivalenceMap::Create(live.catalog, {"sc1", "sc2"});
  EXPECT_TRUE(live.equivalence
                  .DeclareEquivalent({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_TRUE(live.assertions
                  .Assert({"sc1", "Student"}, {"sc2", "Grad_student"},
                          AssertionType::kContains)
                  .ok());
  return live;
}

TEST(ProjectIoTest, SerializeParseRoundTrip) {
  Live live = MakeLive();
  std::string text =
      SerializeProject(live.catalog, live.equivalence, live.assertions);
  EXPECT_NE(text.find("%schemas"), std::string::npos);
  EXPECT_NE(text.find("schema sc1 {"), std::string::npos);
  EXPECT_NE(text.find("sc1.Student.Name = sc2.Grad_student.Name"),
            std::string::npos);
  EXPECT_NE(text.find("sc1.Student 3 sc2.Grad_student"), std::string::npos);

  Result<Project> project = ParseProject(text);
  ASSERT_TRUE(project.ok()) << project.status();
  EXPECT_TRUE(project->catalog.Contains("sc1"));
  EXPECT_TRUE(project->catalog.Contains("sc2"));
  ASSERT_EQ(project->equivalences.size(), 1u);
  ASSERT_EQ(project->assertions.size(), 1u);
  EXPECT_EQ(project->assertions[0].type, AssertionType::kContains);

  // Rebuilt state behaves like the original.
  Result<EquivalenceMap> equivalence = project->BuildEquivalence();
  ASSERT_TRUE(equivalence.ok()) << equivalence.status();
  EXPECT_TRUE(equivalence->AreEquivalent({"sc1", "Student", "Name"},
                                         {"sc2", "Grad_student", "Name"}));
  Result<AssertionStore> assertions = project->BuildAssertions();
  ASSERT_TRUE(assertions.ok());
  EXPECT_EQ(*assertions->EstablishedRelation({"sc1", "Student"},
                                             {"sc2", "Grad_student"}),
            SetRelation::kSuperset);
}

TEST(ProjectIoTest, SecondRoundTripIsStable) {
  Live live = MakeLive();
  std::string first =
      SerializeProject(live.catalog, live.equivalence, live.assertions);
  Result<Project> project = ParseProject(first);
  ASSERT_TRUE(project.ok());
  std::string second = SerializeProject(project->catalog,
                                        *project->BuildEquivalence(),
                                        *project->BuildAssertions());
  EXPECT_EQ(first, second);
}

TEST(ProjectIoTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseProject("stray content").ok());
  EXPECT_FALSE(ParseProject("%equivalences\nnot a pair\n").ok());
  EXPECT_FALSE(ParseProject("%equivalences\na.b = c.d\n").ok());  // 2 parts
  EXPECT_FALSE(ParseProject("%assertions\na.b 1\n").ok());
  EXPECT_FALSE(ParseProject("%assertions\na.b 9 c.d\n").ok());
  EXPECT_FALSE(ParseProject("%assertions\na.b x c.d\n").ok());
  EXPECT_FALSE(ParseProject("%schemas\nbroken ddl\n").ok());
  // Empty project is fine.
  Result<Project> empty = ParseProject("# nothing\n%schemas\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->catalog.size(), 0);
}

TEST(ProjectIoTest, BuildSurfacesStaleDecisions) {
  Result<Project> project = ParseProject(
      "%schemas\nschema a { entity X { K: int key; } }\n"
      "%equivalences\na.X.K = a.X.Missing\n");
  ASSERT_TRUE(project.ok());
  EXPECT_FALSE(project->BuildEquivalence().ok());

  Result<Project> conflicting = ParseProject(
      "%schemas\nschema a { entity X; entity Y; }\n"
      "%assertions\na.X 1 a.Y\na.X 0 a.Y\n");
  ASSERT_TRUE(conflicting.ok());
  EXPECT_EQ(conflicting->BuildAssertions().status().code(),
            StatusCode::kConflict);
}

TEST(ProjectIoTest, FileRoundTrip) {
  Live live = MakeLive();
  std::string path = ::testing::TempDir() + "/ecrint_project_test.ecrint";
  ASSERT_TRUE(
      SaveProjectFile(path, live.catalog, live.equivalence, live.assertions)
          .ok());
  Result<Project> loaded = LoadProjectFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->catalog.Contains("sc1"));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadProjectFile(path).ok());
}

}  // namespace
}  // namespace ecrint::core
