#include "core/set_relation.h"

#include <gtest/gtest.h>

#include <vector>

namespace ecrint::core {
namespace {

constexpr RelationSet EQ = MaskOf(SetRelation::kEqual);
constexpr RelationSet SUB = MaskOf(SetRelation::kSubset);
constexpr RelationSet SUP = MaskOf(SetRelation::kSuperset);
constexpr RelationSet OVR = MaskOf(SetRelation::kOverlap);
constexpr RelationSet DSJ = MaskOf(SetRelation::kDisjoint);

// Classifies the relation between two non-empty sets given as bitmasks.
SetRelation Classify(unsigned a, unsigned b) {
  if (a == b) return SetRelation::kEqual;
  if ((a & b) == a) return SetRelation::kSubset;
  if ((a & b) == b) return SetRelation::kSuperset;
  if ((a & b) != 0) return SetRelation::kOverlap;
  return SetRelation::kDisjoint;
}

// Recomputes the whole composition table by enumerating all triples of
// non-empty subsets of a 6-element universe and checks it equals Compose.
// Six elements are enough to witness every possible configuration of three
// sets with proper-containment/overlap semantics.
TEST(SetRelationTest, ComposeTableMatchesBruteForceModel) {
  constexpr int kUniverse = 6;
  constexpr unsigned kMax = 1u << kUniverse;
  RelationSet observed[kNumSetRelations][kNumSetRelations] = {};
  for (unsigned a = 1; a < kMax; ++a) {
    for (unsigned b = 1; b < kMax; ++b) {
      SetRelation ab = Classify(a, b);
      for (unsigned c = 1; c < kMax; ++c) {
        SetRelation bc = Classify(b, c);
        observed[static_cast<int>(ab)][static_cast<int>(bc)] |=
            MaskOf(Classify(a, c));
      }
    }
  }
  for (int i = 0; i < kNumSetRelations; ++i) {
    for (int j = 0; j < kNumSetRelations; ++j) {
      RelationSet expected = observed[i][j];
      RelationSet actual =
          Compose(static_cast<RelationSet>(1u << i),
                  static_cast<RelationSet>(1u << j));
      EXPECT_EQ(actual, expected)
          << SetRelationName(static_cast<SetRelation>(i)) << " o "
          << SetRelationName(static_cast<SetRelation>(j)) << ": table says "
          << RelationSetToString(actual) << ", model says "
          << RelationSetToString(expected);
    }
  }
}

TEST(SetRelationTest, EqualIsCompositionIdentity) {
  for (int i = 0; i < kNumSetRelations; ++i) {
    RelationSet r = static_cast<RelationSet>(1u << i);
    EXPECT_EQ(Compose(EQ, r), r);
    EXPECT_EQ(Compose(r, EQ), r);
  }
}

TEST(SetRelationTest, PaperTransitiveCompositionExamples) {
  // "if a ⊆ b and b ⊆ c then a ⊆ c" (proper-subset version).
  EXPECT_EQ(Compose(SUB, SUB), SUB);
  // Disjointness propagates through containment.
  EXPECT_EQ(Compose(SUB, DSJ), DSJ);
  EXPECT_EQ(Compose(DSJ, SUP), DSJ);
}

TEST(SetRelationTest, ConverseSwapsContainment) {
  EXPECT_EQ(Converse(SUB), SUP);
  EXPECT_EQ(Converse(SUP), SUB);
  EXPECT_EQ(Converse(EQ), EQ);
  EXPECT_EQ(Converse(OVR), OVR);
  EXPECT_EQ(Converse(DSJ), DSJ);
  EXPECT_EQ(Converse(kAnyRelation), kAnyRelation);
  EXPECT_EQ(Converse(SUB | DSJ), static_cast<RelationSet>(SUP | DSJ));
}

TEST(SetRelationTest, ConverseMatchesModel) {
  constexpr unsigned kMax = 1u << 5;
  for (unsigned a = 1; a < kMax; ++a) {
    for (unsigned b = 1; b < kMax; ++b) {
      EXPECT_EQ(Converse(MaskOf(Classify(a, b))), MaskOf(Classify(b, a)));
    }
  }
}

TEST(SetRelationTest, CompositionRespectsConverseDuality) {
  // (r1 o r2)^-1 == r2^-1 o r1^-1 for all relation sets.
  for (RelationSet r1 = 1; r1 <= kAnyRelation; ++r1) {
    for (RelationSet r2 = 1; r2 <= kAnyRelation; ++r2) {
      EXPECT_EQ(Converse(Compose(r1, r2)),
                Compose(Converse(r2), Converse(r1)))
          << RelationSetToString(r1) << " / " << RelationSetToString(r2);
    }
  }
}

TEST(SetRelationTest, ComposeOfUnionsIsUnionOfComposes) {
  for (RelationSet r1 = 1; r1 <= kAnyRelation; ++r1) {
    for (RelationSet r2 = 1; r2 <= kAnyRelation; ++r2) {
      RelationSet expected = kNoRelation;
      for (int i = 0; i < kNumSetRelations; ++i) {
        if (!(r1 & (1u << i))) continue;
        for (int j = 0; j < kNumSetRelations; ++j) {
          if (!(r2 & (1u << j))) continue;
          expected |= Compose(static_cast<RelationSet>(1u << i),
                              static_cast<RelationSet>(1u << j));
        }
      }
      EXPECT_EQ(Compose(r1, r2), expected);
    }
  }
}

TEST(SetRelationTest, HelpersBehave) {
  EXPECT_EQ(RelationCount(kNoRelation), 0);
  EXPECT_EQ(RelationCount(kAnyRelation), 5);
  EXPECT_EQ(RelationCount(SUB | DSJ), 2);
  EXPECT_EQ(TheRelation(OVR), SetRelation::kOverlap);
  EXPECT_TRUE(Contains(SUB | DSJ, SetRelation::kDisjoint));
  EXPECT_FALSE(Contains(SUB | DSJ, SetRelation::kEqual));
}

TEST(SetRelationTest, ToStringRendersSymbols) {
  EXPECT_EQ(RelationSetToString(EQ), "{=}");
  EXPECT_EQ(RelationSetToString(SUB | SUP), "{<, >}");
  EXPECT_EQ(RelationSetToString(kAnyRelation), "{=, <, >, ><, |}");
  EXPECT_EQ(RelationSetToString(kNoRelation), "{}");
}

TEST(SetRelationTest, NamesAreStable) {
  EXPECT_STREQ(SetRelationName(SetRelation::kEqual), "equal");
  EXPECT_STREQ(SetRelationName(SetRelation::kOverlap), "overlap");
}

}  // namespace
}  // namespace ecrint::core
