#include "core/equivalence.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::AttributePath;
using ecr::Domain;
using ecr::SchemaBuilder;

// The paper's university example: Figure 3 (sc1) and the sc2 used by
// Screens 6-8 (Grad_student, Faculty, Department).
ecr::Catalog UniversityCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  b1.Relationship("Majors", {{"Student", 1, 1, ""},
                             {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real())
      .Attr("Support_type", Domain::Char());
  b2.Entity("Faculty")
      .Attr("Name", Domain::Char(), true)
      .Attr("Rank", Domain::Char());
  b2.Entity("Department").Attr("Dname", Domain::Char(), true);
  b2.Relationship("Study", {{"Grad_student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  b2.Relationship("Works", {{"Faculty", 1, 1, ""},
                            {"Department", 1, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

EquivalenceMap MakeMap(const ecr::Catalog& catalog) {
  Result<EquivalenceMap> map = EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  EXPECT_TRUE(map.ok()) << map.status();
  return *std::move(map);
}

TEST(EquivalenceMapTest, CreateRegistersEveryAttribute) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  // sc1: 2+1 object attrs, 0 rel attrs; sc2: 3+2+1 object attrs.
  EXPECT_EQ(map.num_attributes(), 9);
  EXPECT_TRUE(map.ClassOf({"sc1", "Student", "Name"}).ok());
  EXPECT_FALSE(map.ClassOf({"sc1", "Student", "Nope"}).ok());
}

TEST(EquivalenceMapTest, FreshAttributesAreSingletons) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  EXPECT_FALSE(map.AreEquivalent({"sc1", "Student", "Name"},
                                 {"sc2", "Grad_student", "Name"}));
  EXPECT_TRUE(map.NontrivialClasses().empty());
  // Screen 7: class numbers follow declaration order, starting at 1.
  EXPECT_EQ(*map.ClassOf({"sc1", "Student", "Name"}), 1);
  EXPECT_EQ(*map.ClassOf({"sc1", "Student", "GPA"}), 2);
  EXPECT_EQ(*map.ClassOf({"sc2", "Grad_student", "GPA"}), 5);
}

TEST(EquivalenceMapTest, DeclareEquivalentMergesClasses) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_TRUE(map.AreEquivalent({"sc1", "Student", "Name"},
                                {"sc2", "Grad_student", "Name"}));
  // The earlier attribute's class number wins, as in the paper.
  EXPECT_EQ(*map.ClassOf({"sc2", "Grad_student", "Name"}), 1);
}

TEST(EquivalenceMapTest, EquivalenceIsTransitive) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  ASSERT_TRUE(map.DeclareEquivalent({"sc2", "Grad_student", "Name"},
                                    {"sc2", "Faculty", "Name"})
                  .ok());
  EXPECT_TRUE(map.AreEquivalent({"sc1", "Student", "Name"},
                                {"sc2", "Faculty", "Name"}));
  std::vector<std::vector<AttributePath>> classes = map.NontrivialClasses();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].size(), 3u);
}

TEST(EquivalenceMapTest, IncomparableDomainsRejected) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  // char Name vs real GPA.
  Status s = map.DeclareEquivalent({"sc1", "Student", "Name"},
                                   {"sc2", "Grad_student", "GPA"});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EquivalenceMapTest, UnknownAttributeRejected) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  EXPECT_EQ(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                  {"sc9", "X", "Y"})
                .code(),
            StatusCode::kNotFound);
}

TEST(EquivalenceMapTest, RemoveFromClassRestoresSingleton) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Faculty", "Name"})
                  .ok());
  ASSERT_TRUE(map.RemoveFromClass({"sc2", "Faculty", "Name"}).ok());
  EXPECT_FALSE(map.AreEquivalent({"sc1", "Student", "Name"},
                                 {"sc2", "Faculty", "Name"}));
  // The remaining pair stays merged.
  EXPECT_TRUE(map.AreEquivalent({"sc1", "Student", "Name"},
                                {"sc2", "Grad_student", "Name"}));
}

TEST(EquivalenceMapTest, OcsCellCountsEquivalentPairs) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "GPA"},
                                    {"sc2", "Grad_student", "GPA"})
                  .ok());
  EXPECT_EQ(map.EquivalentAttributeCount({"sc1", "Student"},
                                         {"sc2", "Grad_student"}),
            2);
  EXPECT_EQ(map.EquivalentAttributeCount({"sc1", "Student"},
                                         {"sc2", "Faculty"}),
            0);
  EXPECT_EQ(map.EquivalentAttributeCount({"sc1", "Nope"}, {"sc2", "Faculty"}),
            0);
}

TEST(EquivalenceMapTest, EntriesForMatchesScreen7Layout) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  std::vector<AttributeClassEntry> entries =
      map.EntriesFor({"sc2", "Grad_student"});
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].path.attribute, "Name");
  EXPECT_EQ(entries[0].eq_class, 1);  // merged into sc1.Student.Name's class
  EXPECT_EQ(entries[1].path.attribute, "GPA");
  EXPECT_GT(entries[1].eq_class, 1);
}

TEST(EquivalenceMapTest, ClassMembersSorted) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = MakeMap(catalog);
  ASSERT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Faculty", "Name"})
                  .ok());
  std::vector<AttributePath> members =
      map.ClassMembers({"sc2", "Faculty", "Name"});
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].schema, "sc1");
  EXPECT_EQ(members[1].schema, "sc2");
}

TEST(EquivalenceMapTest, RelationshipAttributesParticipate) {
  ecr::Catalog catalog;
  SchemaBuilder b1("a");
  b1.Entity("X");
  b1.Entity("Y");
  b1.Relationship("R", {{"X", 0, 1, ""}, {"Y", 0, 1, ""}})
      .Attr("Since", Domain::Date());
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("b");
  b2.Entity("X2");
  b2.Entity("Y2");
  b2.Relationship("R2", {{"X2", 0, 1, ""}, {"Y2", 0, 1, ""}})
      .Attr("From", Domain::Date());
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  Result<EquivalenceMap> map = EquivalenceMap::Create(catalog, {"a", "b"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(
      map->DeclareEquivalent({"a", "R", "Since"}, {"b", "R2", "From"}).ok());
  EXPECT_EQ(map->EquivalentAttributeCount({"a", "R"}, {"b", "R2"}), 1);
}

TEST(EquivalenceMapTest, CreateFailsOnUnknownSchema) {
  ecr::Catalog catalog = UniversityCatalog();
  EXPECT_FALSE(EquivalenceMap::Create(catalog, {"sc1", "nope"}).ok());
}

}  // namespace
}  // namespace ecrint::core
