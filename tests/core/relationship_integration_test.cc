#include <gtest/gtest.h>

#include "core/integrator.h"
#include "ecr/builder.h"
#include "ecr/validate.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

// Two views of employment: v2's Teaches is a subset of v1's WorksFor
// (teaching staff are employees), and v2's Advises overlaps v1's Mentors.
struct Fixture {
  ecr::Catalog catalog;
  EquivalenceMap equivalence{*EquivalenceMap::Create(ecr::Catalog(), {})};
  AssertionStore assertions;
};

Fixture Make() {
  Fixture f;
  SchemaBuilder b1("v1");
  b1.Entity("Person").Attr("Ssn", Domain::Int(), true);
  b1.Entity("Org").Attr("Oid", Domain::Int(), true);
  b1.Relationship("WorksFor", {{"Person", 0, 1, ""},
                               {"Org", 0, SchemaBuilder::kN, ""}})
      .Attr("Since", Domain::Date());
  b1.Relationship("Mentors", {{"Person", 0, SchemaBuilder::kN, "mentor"},
                              {"Person", 0, 1, "mentee"}});
  EXPECT_TRUE(f.catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("v2");
  b2.Entity("Teacher").Attr("Ssn", Domain::Int(), true);
  b2.Entity("School").Attr("Oid", Domain::Int(), true);
  b2.Relationship("Teaches", {{"Teacher", 1, 1, ""},
                              {"School", 1, SchemaBuilder::kN, ""}})
      .Attr("Started", Domain::Date());
  b2.Relationship("Advises", {{"Teacher", 0, SchemaBuilder::kN, "mentor"},
                              {"Teacher", 0, 2, "mentee"}});
  EXPECT_TRUE(f.catalog.AddSchema(*b2.Build()).ok());

  f.equivalence = *EquivalenceMap::Create(f.catalog, {"v1", "v2"});
  EXPECT_TRUE(f.equivalence
                  .DeclareEquivalent({"v1", "Person", "Ssn"},
                                     {"v2", "Teacher", "Ssn"})
                  .ok());
  EXPECT_TRUE(f.equivalence
                  .DeclareEquivalent({"v1", "WorksFor", "Since"},
                                     {"v2", "Teaches", "Started"})
                  .ok());
  // Object assertions: Teacher ⊂ Person, School ⊂ Org.
  EXPECT_TRUE(f.assertions
                  .Assert({"v2", "Teacher"}, {"v1", "Person"},
                          AssertionType::kContainedIn)
                  .ok());
  EXPECT_TRUE(f.assertions
                  .Assert({"v2", "School"}, {"v1", "Org"},
                          AssertionType::kContainedIn)
                  .ok());
  return f;
}

TEST(RelationshipIntegrationTest, ContainedRelationshipJoinsLattice) {
  Fixture f = Make();
  ASSERT_TRUE(f.assertions
                  .Assert({"v2", "Teaches"}, {"v1", "WorksFor"},
                          AssertionType::kContainedIn)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"v1", "v2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  EXPECT_TRUE(ecr::CheckSchemaValid(s).ok());

  ecr::RelationshipId works = s.FindRelationship("WorksFor");
  ecr::RelationshipId teaches = s.FindRelationship("Teaches");
  ASSERT_GE(works, 0);
  ASSERT_GE(teaches, 0);
  // The contained relationship points at its generalization in the lattice.
  EXPECT_EQ(s.relationship(teaches).parents,
            std::vector<ecr::RelationshipId>{works});
  EXPECT_TRUE(s.relationship(works).parents.empty());

  // The equivalent attributes merged onto the containing relationship.
  bool derived_on_works = false;
  for (const ecr::Attribute& a : s.relationship(works).attributes) {
    derived_on_works |= a.name.rfind("D_", 0) == 0;
  }
  EXPECT_TRUE(derived_on_works);
  const DerivedAttributeInfo* info =
      result->FindDerivedAttribute("WorksFor", "D_Sinc_Star");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->components.size(), 2u);
  // The contained relationship keeps no duplicate of the merged attribute.
  EXPECT_TRUE(s.relationship(teaches).attributes.empty());
}

TEST(RelationshipIntegrationTest, OverlapCreatesDerivedRelationship) {
  Fixture f = Make();
  ASSERT_TRUE(f.assertions
                  .Assert({"v2", "Advises"}, {"v1", "Mentors"},
                          AssertionType::kMayBe)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"v1", "v2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;

  ecr::RelationshipId derived = s.FindRelationship("D_Ment_Advi");
  ASSERT_GE(derived, 0);
  EXPECT_EQ(s.relationship(derived).origin, ecr::ObjectOrigin::kDerived);
  // Both originals become children of the derived generalization.
  ecr::RelationshipId mentors = s.FindRelationship("Mentors");
  ecr::RelationshipId advises = s.FindRelationship("Advises");
  ASSERT_GE(mentors, 0);
  ASSERT_GE(advises, 0);
  EXPECT_EQ(s.relationship(mentors).parents,
            std::vector<ecr::RelationshipId>{derived});
  EXPECT_EQ(s.relationship(advises).parents,
            std::vector<ecr::RelationshipId>{derived});
  // The derived relationship generalizes the participants: both legs reach
  // Person (Teacher's generalization).
  for (const ecr::Participation& p : s.relationship(derived).participants) {
    EXPECT_EQ(s.object(p.object).name, "Person");
  }
}

TEST(RelationshipIntegrationTest, EqualsMergeWidensCardinality) {
  Fixture f = Make();
  ASSERT_TRUE(f.assertions
                  .Assert({"v2", "Teaches"}, {"v1", "WorksFor"},
                          AssertionType::kEquals)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(f.catalog, {"v1", "v2"}, f.equivalence, f.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;
  ecr::RelationshipId merged = s.FindRelationship("E_Teac_Work");
  if (merged < 0) merged = s.FindRelationship("E_Work_Teac");
  ASSERT_GE(merged, 0);
  const ecr::RelationshipSet& rel = s.relationship(merged);
  ASSERT_EQ(rel.participants.size(), 2u);
  // WorksFor had [0,1] on Person, Teaches [1,1] on Teacher: the merged
  // constraint is the weaker [0,1]; the participant is the generalization
  // Person.
  EXPECT_EQ(s.object(rel.participants[0].object).name, "Person");
  EXPECT_EQ(rel.participants[0].min_card, 0);
  EXPECT_EQ(rel.participants[0].max_card, 1);
  // Org side: [0,n] vs [1,n] -> [0,n].
  EXPECT_EQ(s.object(rel.participants[1].object).name, "Org");
  EXPECT_EQ(rel.participants[1].min_card, 0);
  EXPECT_EQ(rel.participants[1].max_card, ecr::kUnboundedCardinality);
}

}  // namespace
}  // namespace ecrint::core
