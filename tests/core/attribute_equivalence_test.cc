#include "core/attribute_equivalence.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Attribute;
using ecr::Domain;
using ecr::SchemaBuilder;

TEST(AttributeCorrespondenceTest, ClassifiesByDomain) {
  Attribute ssn_wide{"Ssn", Domain::IntRange(0, 999999999), true};
  Attribute ssn_narrow{"Ssn", Domain::IntRange(1000, 2000), true};
  Attribute ssn_other{"Ssn", Domain::IntRange(5000, 9000), true};
  Attribute ssn_overlap{"Ssn", Domain::IntRange(1500, 6000), true};

  EXPECT_EQ(ClassifyAttributeCorrespondence(ssn_wide, ssn_wide),
            AttributeRelation::kEqual);
  EXPECT_EQ(ClassifyAttributeCorrespondence(ssn_wide, ssn_narrow),
            AttributeRelation::kContains);
  EXPECT_EQ(ClassifyAttributeCorrespondence(ssn_narrow, ssn_wide),
            AttributeRelation::kContainedIn);
  EXPECT_EQ(ClassifyAttributeCorrespondence(ssn_narrow, ssn_other),
            AttributeRelation::kDisjoint);
  EXPECT_EQ(ClassifyAttributeCorrespondence(ssn_narrow, ssn_overlap),
            AttributeRelation::kOverlap);
}

TEST(AttributeCorrespondenceTest, RelationNames) {
  EXPECT_STREQ(AttributeRelationName(AttributeRelation::kEqual), "equal");
  EXPECT_STREQ(AttributeRelationName(AttributeRelation::kOverlap),
               "overlap");
}

TEST(ObjectRelationBoundTest, DeclaredInterpretationOnlyProvesDisjoint) {
  EXPECT_EQ(ObjectRelationBound(AttributeRelation::kDisjoint,
                                DomainInterpretation::kDeclared),
            MaskOf(SetRelation::kDisjoint));
  for (AttributeRelation r :
       {AttributeRelation::kEqual, AttributeRelation::kContains,
        AttributeRelation::kContainedIn, AttributeRelation::kOverlap}) {
    EXPECT_EQ(ObjectRelationBound(r, DomainInterpretation::kDeclared),
              kAnyRelation);
  }
}

TEST(ObjectRelationBoundTest, ClosedWorldMirrorsKeyRelation) {
  EXPECT_EQ(ObjectRelationBound(AttributeRelation::kEqual,
                                DomainInterpretation::kClosedWorld),
            MaskOf(SetRelation::kEqual));
  EXPECT_EQ(ObjectRelationBound(AttributeRelation::kContainedIn,
                                DomainInterpretation::kClosedWorld),
            MaskOf(SetRelation::kSubset));
  EXPECT_EQ(ObjectRelationBound(AttributeRelation::kOverlap,
                                DomainInterpretation::kClosedWorld),
            MaskOf(SetRelation::kOverlap));
}

TEST(CompatibleAssertionsTest, MapsRelationsToMenuCodes) {
  std::vector<AssertionType> all = CompatibleAssertions(kAnyRelation);
  EXPECT_EQ(all.size(), 6u);  // both disjoint codes included
  std::vector<AssertionType> disjoint_only =
      CompatibleAssertions(MaskOf(SetRelation::kDisjoint));
  EXPECT_EQ(disjoint_only,
            (std::vector<AssertionType>{
                AssertionType::kDisjointIntegrable,
                AssertionType::kDisjointNonintegrable}));
  EXPECT_EQ(CompatibleAssertions(MaskOf(SetRelation::kEqual)),
            std::vector<AssertionType>{AssertionType::kEquals});
  EXPECT_TRUE(CompatibleAssertions(kNoRelation).empty());
}

ecr::Catalog AgeCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("all");
  b1.Entity("Person")
      .Attr("Pid", Domain::IntRange(0, 10000), true)
      .Attr("Name", Domain::Char());
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("subset");
  b2.Entity("Minor")
      .Attr("Pid", Domain::IntRange(0, 5000), true)
      .Attr("Name", Domain::Char());
  b2.Entity("NoKeyHere");
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

TEST(HintAssertionsTest, HintsPairsWithEquivalentKeys) {
  ecr::Catalog catalog = AgeCatalog();
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"all", "subset"});
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"all", "Person", "Pid"},
                                     {"subset", "Minor", "Pid"})
                  .ok());
  Result<std::vector<AssertionHint>> hints =
      HintAssertions(catalog, equivalence, "all", "subset");
  ASSERT_TRUE(hints.ok()) << hints.status();
  ASSERT_EQ(hints->size(), 1u);
  const AssertionHint& hint = (*hints)[0];
  EXPECT_EQ(hint.first.ToString(), "all.Person");
  EXPECT_EQ(hint.second.ToString(), "subset.Minor");
  // Person's key domain contains Minor's.
  EXPECT_EQ(hint.key_relation, AttributeRelation::kContains);
  EXPECT_EQ(hint.bound, MaskOf(SetRelation::kSuperset));
  EXPECT_EQ(hint.compatible,
            std::vector<AssertionType>{AssertionType::kContains});
  EXPECT_NE(hint.ToString().find("menu codes 3"), std::string::npos);
}

TEST(HintAssertionsTest, NoHintWithoutEquivalentKeys) {
  ecr::Catalog catalog = AgeCatalog();
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"all", "subset"});
  // Only the non-key Name attributes declared equivalent.
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"all", "Person", "Name"},
                                     {"subset", "Minor", "Name"})
                  .ok());
  Result<std::vector<AssertionHint>> hints =
      HintAssertions(catalog, equivalence, "all", "subset");
  ASSERT_TRUE(hints.ok());
  EXPECT_TRUE(hints->empty());
}

TEST(HintAssertionsTest, DeclaredInterpretationWidensBound) {
  ecr::Catalog catalog = AgeCatalog();
  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"all", "subset"});
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"all", "Person", "Pid"},
                                     {"subset", "Minor", "Pid"})
                  .ok());
  Result<std::vector<AssertionHint>> hints = HintAssertions(
      catalog, equivalence, "all", "subset",
      DomainInterpretation::kDeclared);
  ASSERT_TRUE(hints.ok());
  ASSERT_EQ(hints->size(), 1u);
  EXPECT_EQ((*hints)[0].bound, kAnyRelation);
  EXPECT_EQ((*hints)[0].compatible.size(), 6u);
}

}  // namespace
}  // namespace ecrint::core
