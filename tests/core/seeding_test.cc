#include "core/seeding.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

ecr::Schema University() {
  SchemaBuilder b("sc1");
  b.Entity("Person").Attr("Name", Domain::Char(), true);
  b.Entity("Department").Attr("Dname", Domain::Char(), true);
  b.Category("Student", {"Person"});
  b.Category("Grad", {"Student"});
  return *b.Build();
}

TEST(SeedingTest, CategoryContainmentSeeded) {
  AssertionStore store;
  ASSERT_TRUE(SeedSchemaRelations(store, University()).ok());
  EXPECT_EQ(*store.EstablishedRelation({"sc1", "Student"}, {"sc1", "Person"}),
            SetRelation::kSubset);
  // Transitive: Grad ⊆ Person derived.
  EXPECT_EQ(*store.EstablishedRelation({"sc1", "Grad"}, {"sc1", "Person"}),
            SetRelation::kSubset);
}

TEST(SeedingTest, EntityDisjointnessSeeded) {
  AssertionStore store;
  ASSERT_TRUE(SeedSchemaRelations(store, University()).ok());
  EXPECT_EQ(
      *store.EstablishedRelation({"sc1", "Person"}, {"sc1", "Department"}),
      SetRelation::kDisjoint);
  // Categories of disjoint entity sets are derived disjoint.
  EXPECT_EQ(
      *store.EstablishedRelation({"sc1", "Grad"}, {"sc1", "Department"}),
      SetRelation::kDisjoint);
  // Seeded disjointness never connects clusters.
  EXPECT_FALSE(store.IsIntegrating({"sc1", "Person"}, {"sc1", "Department"}));
}

TEST(SeedingTest, OptionsDisableEachSeed) {
  SeedOptions options;
  options.category_containment = false;
  options.entity_disjointness = false;
  AssertionStore store;
  ASSERT_TRUE(SeedSchemaRelations(store, University(), options).ok());
  EXPECT_EQ(store.user_assertions().size(), 0u);
}

TEST(SeedingTest, CatchesAssertionsContradictingStructure) {
  // The DDA asserted sc2.X = sc1.Person and sc2.X = sc1.Department; the two
  // local entity sets are disjoint, so seeding must report the conflict.
  AssertionStore store;
  ASSERT_TRUE(store.Assert({"sc2", "X"}, {"sc1", "Person"},
                           AssertionType::kEquals)
                  .ok());
  ASSERT_TRUE(store.Assert({"sc2", "X"}, {"sc1", "Department"},
                           AssertionType::kEquals)
                  .ok());
  Status s = SeedSchemaRelations(store, University());
  EXPECT_EQ(s.code(), StatusCode::kConflict);
}

TEST(SeedingTest, SharedDescendantSuppressesDisjointnessSeed) {
  // A category with parents in two entity sets (or two D_ generalizations
  // over one class in an integrated schema) proves the entity sets overlap;
  // they must not be seeded disjoint.
  SchemaBuilder b("sc");
  b.Entity("Staff").Attr("Id", Domain::Int(), true);
  b.Entity("Students").Attr("Id2", Domain::Int(), true);
  b.Entity("Building").Attr("Bid", Domain::Int(), true);
  b.Category("TA", {"Staff", "Students"});
  ecr::Schema schema = *b.Build();
  AssertionStore store;
  ASSERT_TRUE(SeedSchemaRelations(store, schema).ok());
  // Staff/Students share TA: unconstrained beyond the closure's derivations.
  EXPECT_FALSE(
      store.EstablishedRelation({"sc", "Staff"}, {"sc", "Students"}).ok());
  // Building shares nothing: still seeded disjoint.
  EXPECT_EQ(*store.EstablishedRelation({"sc", "Staff"}, {"sc", "Building"}),
            SetRelation::kDisjoint);
  // And a subsequent overlap assertion between Staff and Students is legal.
  EXPECT_TRUE(store.Assert({"sc", "Staff"}, {"sc", "Students"},
                           AssertionType::kMayBe)
                  .ok());
}

TEST(SeedingTest, IdempotentOnConsistentStore) {
  AssertionStore store;
  ecr::Schema schema = University();
  ASSERT_TRUE(SeedSchemaRelations(store, schema).ok());
  size_t count = store.user_assertions().size();
  ASSERT_TRUE(SeedSchemaRelations(store, schema).ok());
  // Re-seeding re-asserts compatible facts; no conflicts.
  EXPECT_EQ(store.user_assertions().size(), 2 * count);
}

}  // namespace
}  // namespace ecrint::core
