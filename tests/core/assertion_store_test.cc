#include "core/assertion_store.h"

#include <gtest/gtest.h>

namespace ecrint::core {
namespace {

const ObjectRef kWorker{"sc1", "Worker"};
const ObjectRef kEmployee{"sc2", "Employee"};
const ObjectRef kPerson{"sc3", "Person"};

TEST(AssertionStoreTest, UnknownPairsAreUnconstrained) {
  AssertionStore store;
  EXPECT_EQ(store.PossibleRelations(kWorker, kEmployee), kAnyRelation);
  EXPECT_FALSE(store.EstablishedRelation(kWorker, kEmployee).ok());
  EXPECT_FALSE(store.IsIntegrating(kWorker, kEmployee));
}

TEST(AssertionStoreTest, AssertPinsRelationBothWays) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee,
                           AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.EstablishedRelation(kWorker, kEmployee).ok());
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kEmployee),
            SetRelation::kSubset);
  EXPECT_EQ(*store.EstablishedRelation(kEmployee, kWorker),
            SetRelation::kSuperset);
  EXPECT_TRUE(store.IsIntegrating(kWorker, kEmployee));
}

TEST(AssertionStoreTest, PaperDerivationExample) {
  // "if Worker is subset of Employee and Employee is subset of Person, then
  //  Worker must be subset of Person" (Section 1).
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee,
                           AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson,
                           AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.EstablishedRelation(kWorker, kPerson).ok());
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kPerson),
            SetRelation::kSubset);

  std::vector<AssertionStore::DerivedFact> facts = store.DerivedFacts();
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].relation, SetRelation::kSubset);
  EXPECT_EQ(facts[0].supporting.size(), 2u);
}

TEST(AssertionStoreTest, PaperConflictExample) {
  // "if Employee is equivalent to Person, and Person is equivalent to
  //  Worker, then Worker cannot be a subset of Employee" (Section 1).
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kEmployee, kPerson, AssertionType::kEquals).ok());
  ASSERT_TRUE(store.Assert(kPerson, kWorker, AssertionType::kEquals).ok());
  Result<ConflictReport> r =
      store.Assert(kWorker, kEmployee, AssertionType::kContainedIn);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConflict);
  // The store is unchanged: the pair is still pinned to "equal".
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kEmployee),
            SetRelation::kEqual);
  EXPECT_EQ(store.user_assertions().size(), 2u);
}

TEST(AssertionStoreTest, Screen9ConflictScenario) {
  // Screen 9: sc3.Instructor ⊆ sc4.Grad_student and
  // sc4.Grad_student ⊆ sc4.Student derive sc3.Instructor ⊆ sc4.Student;
  // the new assertion "Instructor and Student are disjoint" conflicts.
  const ObjectRef instructor{"sc3", "Instructor"};
  const ObjectRef grad{"sc4", "Grad_student"};
  const ObjectRef student{"sc4", "Student"};
  AssertionStore store;
  ASSERT_TRUE(
      store.Assert(instructor, grad, AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(grad, student, AssertionType::kContainedIn).ok());

  // The derived fact exists and names its supporting assertions, which is
  // what the Assertion Conflict Resolution Screen displays.
  std::vector<AssertionStore::DerivedFact> facts = store.DerivedFacts();
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].first, instructor);
  EXPECT_EQ(facts[0].second, student);
  EXPECT_EQ(facts[0].relation, SetRelation::kSubset);
  ASSERT_EQ(facts[0].supporting.size(), 2u);

  Result<ConflictReport> r = store.Assert(
      instructor, student, AssertionType::kDisjointNonintegrable);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConflict);
  EXPECT_NE(r.status().message().find("derived"), std::string::npos);
  EXPECT_NE(r.status().message().find("sc3.Instructor"), std::string::npos);
  // Both supporting assertions are listed for the DDA.
  EXPECT_NE(r.status().message().find(
                "sc3.Instructor contained in sc4.Grad_student"),
            std::string::npos);
  EXPECT_NE(r.status().message().find(
                "sc4.Grad_student contained in sc4.Student"),
            std::string::npos);
}

TEST(AssertionStoreTest, DirectContradictionReportsAsserted) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kEquals).ok());
  Result<ConflictReport> r =
      store.Assert(kWorker, kEmployee, AssertionType::kMayBe);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("asserted"), std::string::npos);
}

TEST(AssertionStoreTest, ReassertingCompatibleFactIsOk) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kEquals).ok());
  EXPECT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kEquals).ok());
  EXPECT_TRUE(store.Assert(kEmployee, kWorker, AssertionType::kEquals).ok());
}

TEST(AssertionStoreTest, EqualityChainsPropagate) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kEquals).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson, AssertionType::kEquals).ok());
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kPerson),
            SetRelation::kEqual);
}

TEST(AssertionStoreTest, DisjointPropagatesThroughContainment) {
  // A ⊆ B, B disjoint C ⇒ A disjoint C.
  const ObjectRef a{"s1", "A"};
  const ObjectRef b{"s2", "B"};
  const ObjectRef c{"s3", "C"};
  AssertionStore store;
  ASSERT_TRUE(store.Assert(a, b, AssertionType::kContainedIn).ok());
  ASSERT_TRUE(
      store.Assert(b, c, AssertionType::kDisjointNonintegrable).ok());
  EXPECT_EQ(*store.EstablishedRelation(a, c), SetRelation::kDisjoint);
  // A derived disjointness does not connect a cluster.
  EXPECT_FALSE(store.IsIntegrating(a, c));
}

TEST(AssertionStoreTest, LongChainPropagates) {
  AssertionStore store;
  constexpr int kLength = 12;
  for (int i = 0; i + 1 < kLength; ++i) {
    ASSERT_TRUE(store.Assert(ObjectRef{"s", "O" + std::to_string(i)},
                             ObjectRef{"s", "O" + std::to_string(i + 1)},
                             AssertionType::kContainedIn)
                    .ok());
  }
  EXPECT_EQ(*store.EstablishedRelation(
                ObjectRef{"s", "O0"},
                ObjectRef{"s", "O" + std::to_string(kLength - 1)}),
            SetRelation::kSubset);
  // And a contradiction at the far end is caught.
  Result<ConflictReport> r = store.Assert(
      ObjectRef{"s", "O0"}, ObjectRef{"s", "O" + std::to_string(kLength - 1)},
      AssertionType::kDisjointNonintegrable);
  EXPECT_FALSE(r.ok());
}

TEST(AssertionStoreTest, OverlapGivesWeakConstraints) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kMayBe).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson, AssertionType::kMayBe).ok());
  // overlap o overlap constrains nothing.
  EXPECT_EQ(store.PossibleRelations(kWorker, kPerson), kAnyRelation);
  EXPECT_FALSE(store.IsIntegrating(kWorker, kPerson));
}

TEST(AssertionStoreTest, MixedChainRefinesWithoutPinning) {
  // A ⊂ B, B overlap C: A vs C can be subset, overlap or disjoint but not
  // equal or superset.
  AssertionStore store;
  ASSERT_TRUE(
      store.Assert(kWorker, kEmployee, AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson, AssertionType::kMayBe).ok());
  RelationSet possible = store.PossibleRelations(kWorker, kPerson);
  EXPECT_FALSE(Contains(possible, SetRelation::kEqual));
  EXPECT_FALSE(Contains(possible, SetRelation::kSuperset));
  EXPECT_TRUE(Contains(possible, SetRelation::kSubset));
  EXPECT_TRUE(Contains(possible, SetRelation::kOverlap));
  EXPECT_TRUE(Contains(possible, SetRelation::kDisjoint));
}

TEST(AssertionStoreTest, SelfPairIsEqual) {
  AssertionStore store;
  store.AddObject(kWorker);
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kWorker),
            SetRelation::kEqual);
  // Asserting anything non-equal about a structure and itself conflicts.
  EXPECT_FALSE(
      store.Assert(kWorker, kWorker, AssertionType::kContains).ok());
  EXPECT_TRUE(store.Assert(kWorker, kWorker, AssertionType::kEquals).ok());
}

TEST(AssertionStoreTest, IntegrabilityFollowsUserIntent) {
  AssertionStore store;
  const ObjectRef sec{"sc1", "Secretary"};
  const ObjectRef eng{"sc2", "Engineer"};
  ASSERT_TRUE(
      store.Assert(sec, eng, AssertionType::kDisjointIntegrable).ok());
  EXPECT_TRUE(store.IsIntegrating(sec, eng));

  AssertionStore store2;
  ASSERT_TRUE(
      store2.Assert(sec, eng, AssertionType::kDisjointNonintegrable).ok());
  EXPECT_FALSE(store2.IsIntegrating(sec, eng));
}

TEST(AssertionStoreTest, SupportingAssertionsForUserPairIncludeIt) {
  AssertionStore store;
  ASSERT_TRUE(
      store.Assert(kWorker, kEmployee, AssertionType::kContainedIn).ok());
  std::vector<Assertion> support =
      store.SupportingAssertions(kWorker, kEmployee);
  ASSERT_EQ(support.size(), 1u);
  EXPECT_EQ(support[0].type, AssertionType::kContainedIn);
}

TEST(AssertionStoreTest, ContradictionAmongThreeEqualities) {
  // A = B, A = C, then B disjoint C must fail (B = C is derived).
  AssertionStore store;
  const ObjectRef a{"s1", "A"};
  const ObjectRef b{"s2", "B"};
  const ObjectRef c{"s3", "C"};
  ASSERT_TRUE(store.Assert(a, b, AssertionType::kEquals).ok());
  ASSERT_TRUE(store.Assert(a, c, AssertionType::kEquals).ok());
  EXPECT_EQ(*store.EstablishedRelation(b, c), SetRelation::kEqual);
  EXPECT_FALSE(
      store.Assert(b, c, AssertionType::kDisjointNonintegrable).ok());
}

TEST(AssertionStoreTest, ConstrainNarrowsWithoutUserAssertion) {
  AssertionStore store;
  // Closed-world key reasoning: the key domains exclude equality and
  // containment.
  RelationSet bound = MaskOf(SetRelation::kOverlap) |
                      MaskOf(SetRelation::kDisjoint);
  ASSERT_TRUE(store.Constrain(kWorker, kEmployee, bound).ok());
  EXPECT_EQ(store.PossibleRelations(kWorker, kEmployee), bound);
  EXPECT_EQ(store.PossibleRelations(kEmployee, kWorker), bound);
  EXPECT_TRUE(store.user_assertions().empty());
  // A later assertion inside the bound is fine; outside it conflicts.
  EXPECT_FALSE(store.Assert(kWorker, kEmployee,
                            AssertionType::kEquals).ok());
  EXPECT_TRUE(store.Assert(kWorker, kEmployee, AssertionType::kMayBe).ok());
}

TEST(AssertionStoreTest, ConstrainPropagatesAndRollsBack) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee,
                           AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson,
                           AssertionType::kContainedIn).ok());
  // Constraining Worker/Person to disjoint contradicts the derived subset.
  Result<ConflictReport> r = store.Constrain(
      kWorker, kPerson, MaskOf(SetRelation::kDisjoint));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("{|}"), std::string::npos);
  EXPECT_EQ(*store.EstablishedRelation(kWorker, kPerson),
            SetRelation::kSubset);
  // A redundant constraint is accepted and changes nothing.
  EXPECT_TRUE(store.Constrain(kWorker, kPerson, kAnyRelation).ok());
}

TEST(AssertionStoreTest, RollbackRestoresDerivedState) {
  AssertionStore store;
  const ObjectRef a{"s1", "A"};
  const ObjectRef b{"s2", "B"};
  const ObjectRef c{"s3", "C"};
  ASSERT_TRUE(store.Assert(a, b, AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(b, c, AssertionType::kContainedIn).ok());
  size_t derived_before = store.DerivedFacts().size();
  // c ⊆ a would close a proper-containment cycle: conflict.
  ASSERT_FALSE(store.Assert(c, a, AssertionType::kContainedIn).ok());
  EXPECT_EQ(store.DerivedFacts().size(), derived_before);
  EXPECT_EQ(*store.EstablishedRelation(a, c), SetRelation::kSubset);
}

TEST(AssertionStoreTest, ClosureStatsCountKernelWork) {
  AssertionStore store;
  ASSERT_TRUE(store.Assert(kWorker, kEmployee,
                           AssertionType::kContainedIn).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson,
                           AssertionType::kContainedIn).ok());
  ClosureStats after_asserts = store.closure_stats();
  EXPECT_GT(after_asserts.worklist_pops, 0);
  EXPECT_GT(after_asserts.row_compositions, 0);
  // Worker ⊆ Person was derived, so at least one cell narrowed beyond the
  // directly asserted pairs.
  EXPECT_GT(after_asserts.narrowings, 0);
  EXPECT_EQ(after_asserts.conflicts, 0);

  ASSERT_FALSE(store.Assert(kPerson, kWorker,
                            AssertionType::kContainedIn).ok());
  ClosureStats after_conflict = store.closure_stats();
  EXPECT_EQ(after_conflict.conflicts, 1);
  // Counters are lifetime totals: never reset by a rolled-back attempt.
  EXPECT_GE(after_conflict.worklist_pops, after_asserts.worklist_pops);
  EXPECT_GE(after_conflict.row_compositions, after_asserts.row_compositions);
  EXPECT_GE(after_conflict.narrowings, after_asserts.narrowings);
}

TEST(AssertionStoreTest, NumClustersCountsConstraintComponents) {
  AssertionStore store;
  EXPECT_EQ(store.num_clusters(), 0);
  ASSERT_TRUE(store.Assert(kWorker, kEmployee,
                           AssertionType::kContainedIn).ok());
  EXPECT_EQ(store.num_clusters(), 1);
  // A second island, unconnected to the first.
  ASSERT_TRUE(store.Assert({"sc4", "Course"}, {"sc5", "Seminar"},
                           AssertionType::kContains).ok());
  EXPECT_EQ(store.num_clusters(), 2);
  // Bridging the islands merges them.
  ASSERT_TRUE(store.Assert(kPerson, {"sc4", "Course"},
                           AssertionType::kDisjointNonintegrable).ok());
  ASSERT_TRUE(store.Assert(kEmployee, kPerson,
                           AssertionType::kContainedIn).ok());
  EXPECT_EQ(store.num_clusters(), 1);
}

TEST(AssertionStoreTest, AssertBatchStopsAtFirstConflictLikeAssertLoop) {
  const std::vector<Assertion> batch = {
      {kWorker, kEmployee, AssertionType::kContainedIn},
      {kEmployee, kPerson, AssertionType::kContainedIn},
      // Contradicts the derived Worker ⊆ Person.
      {kPerson, kWorker, AssertionType::kContainedIn},
      // Never reached.
      {{"sc4", "Course"}, {"sc5", "Seminar"}, AssertionType::kEquals},
  };
  AssertionStore batched;
  Result<ConflictReport> batch_result = batched.AssertBatch(batch);
  AssertionStore sequential;
  Result<ConflictReport> loop_result = sequential.Assert(batch[0]);
  for (size_t i = 1; i < batch.size() && loop_result.ok(); ++i) {
    loop_result = sequential.Assert(batch[i]);
  }
  ASSERT_FALSE(batch_result.ok());
  ASSERT_FALSE(loop_result.ok());
  EXPECT_EQ(batch_result.status().message(), loop_result.status().message());
  EXPECT_EQ(batched.user_assertions(), sequential.user_assertions());
  EXPECT_EQ(batched.PossibleRelations(kWorker, kPerson),
            sequential.PossibleRelations(kWorker, kPerson));
  EXPECT_FALSE(batched.Knows({"sc4", "Course"}));
}

}  // namespace
}  // namespace ecrint::core
