#include "core/request_translation.h"

#include <gtest/gtest.h>

#include "core/integrator.h"
#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

// hr.Employee ⊃ payroll.Manager with the Ssn key merged; directory.Person
// equals hr.Employee.
IntegrationResult MakeResult() {
  ecr::Catalog catalog;
  SchemaBuilder b1("hr");
  b1.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char())
      .Attr("Salary", Domain::Real());
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("payroll");
  b2.Entity("Manager")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Bonus", Domain::Real());
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());

  EquivalenceMap equivalence =
      *EquivalenceMap::Create(catalog, {"hr", "payroll"});
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"hr", "Employee", "Ssn"},
                                     {"payroll", "Manager", "Ssn"})
                  .ok());
  AssertionStore assertions;
  EXPECT_TRUE(assertions
                  .Assert({"payroll", "Manager"}, {"hr", "Employee"},
                          AssertionType::kContainedIn)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(catalog, {"hr", "payroll"}, equivalence, assertions);
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(RequestTranslationTest, ComponentToIntegratedRenamesAttributes) {
  IntegrationResult result = MakeResult();
  Request request{{"payroll", "Manager"}, {"Ssn", "Bonus"}};
  Result<Request> translated = TranslateToIntegrated(result, request);
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_EQ(translated->structure.schema, "integrated");
  EXPECT_EQ(translated->structure.object, "Manager");
  // Ssn was merged into D_Ssn (living on Employee, inherited by Manager).
  EXPECT_EQ(translated->attributes,
            (std::vector<std::string>{"D_Ssn", "Bonus"}));
}

TEST(RequestTranslationTest, UnknownSourcesRejected) {
  IntegrationResult result = MakeResult();
  EXPECT_FALSE(
      TranslateToIntegrated(result, {{"payroll", "Nope"}, {}}).ok());
  EXPECT_FALSE(
      TranslateToIntegrated(result, {{"payroll", "Manager"}, {"Nope"}})
          .ok());
}

TEST(RequestTranslationTest, IntegratedToComponentsFansOut) {
  IntegrationResult result = MakeResult();
  Request request{{"integrated", "Employee"}, {"D_Ssn", "Name"}};
  Result<FanoutPlan> plan = TranslateToComponents(result, request);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Employee's extent covers hr.Employee and (via the category)
  // payroll.Manager.
  ASSERT_EQ(plan->legs.size(), 2u);
  const FanoutLeg* hr_leg = nullptr;
  const FanoutLeg* payroll_leg = nullptr;
  for (const FanoutLeg& leg : plan->legs) {
    if (leg.component.schema == "hr") hr_leg = &leg;
    if (leg.component.schema == "payroll") payroll_leg = &leg;
  }
  ASSERT_NE(hr_leg, nullptr);
  ASSERT_NE(payroll_leg, nullptr);
  EXPECT_EQ(hr_leg->attribute_map.at("D_Ssn"), "Ssn");
  EXPECT_EQ(hr_leg->attribute_map.at("Name"), "Name");
  EXPECT_TRUE(hr_leg->missing.empty());
  // payroll.Manager has Ssn but no Name: that column is missing there.
  EXPECT_EQ(payroll_leg->attribute_map.at("D_Ssn"), "Ssn");
  EXPECT_EQ(payroll_leg->missing, std::vector<std::string>{"Name"});
}

TEST(RequestTranslationTest, InheritedAttributesAreSelectable) {
  IntegrationResult result = MakeResult();
  // Manager inherits D_Ssn from Employee; selecting it on Manager is legal.
  Request request{{"integrated", "Manager"}, {"D_Ssn", "Bonus"}};
  Result<FanoutPlan> plan = TranslateToComponents(result, request);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->legs.size(), 1u);
  EXPECT_EQ(plan->legs[0].component.ToString(), "payroll.Manager");
  EXPECT_EQ(plan->legs[0].attribute_map.at("Bonus"), "Bonus");
}

TEST(RequestTranslationTest, ValidatesIntegratedRequest) {
  IntegrationResult result = MakeResult();
  EXPECT_FALSE(
      TranslateToComponents(result, {{"wrong_schema", "Employee"}, {}})
          .ok());
  EXPECT_FALSE(
      TranslateToComponents(result, {{"integrated", "Ghost"}, {}}).ok());
  EXPECT_FALSE(
      TranslateToComponents(result, {{"integrated", "Employee"}, {"Ghost"}})
          .ok());
}

TEST(RequestTranslationTest, RelationshipRequestsTranslateToo) {
  ecr::Catalog catalog;
  SchemaBuilder b1("a");
  b1.Entity("X").Attr("K", Domain::Int(), true);
  b1.Entity("Y").Attr("K2", Domain::Int(), true);
  b1.Relationship("Links", {{"X", 0, 1, ""}, {"Y", 0, 1, ""}})
      .Attr("Since", Domain::Date());
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("b");
  b2.Entity("X2").Attr("K", Domain::Int(), true);
  b2.Entity("Y2").Attr("K2", Domain::Int(), true);
  b2.Relationship("Ties", {{"X2", 0, 1, ""}, {"Y2", 0, 1, ""}})
      .Attr("From", Domain::Date());
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"a", "b"});
  ASSERT_TRUE(equivalence
                  .DeclareEquivalent({"a", "Links", "Since"},
                                     {"b", "Ties", "From"})
                  .ok());
  AssertionStore assertions;
  ASSERT_TRUE(assertions
                  .Assert({"a", "X"}, {"b", "X2"}, AssertionType::kEquals)
                  .ok());
  ASSERT_TRUE(assertions
                  .Assert({"a", "Y"}, {"b", "Y2"}, AssertionType::kEquals)
                  .ok());
  ASSERT_TRUE(assertions
                  .Assert({"a", "Links"}, {"b", "Ties"},
                          AssertionType::kEquals)
                  .ok());
  Result<IntegrationResult> result =
      Integrate(catalog, {"a", "b"}, equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();

  // Component relationship request rewrites onto the merged relationship.
  Request view_query{{"b", "Ties"}, {"From"}};
  Result<Request> rewritten = TranslateToIntegrated(*result, view_query);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_EQ(rewritten->structure.object, "E_Link_Ties");
  EXPECT_EQ(rewritten->attributes,
            std::vector<std::string>{"D_Sinc_From"});

  // Integrated relationship request fans out to both components.
  Request global{{"integrated", "E_Link_Ties"}, {"D_Sinc_From"}};
  Result<FanoutPlan> plan = TranslateToComponents(*result, global);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->legs.size(), 2u);
  for (const FanoutLeg& leg : plan->legs) {
    EXPECT_EQ(leg.attribute_map.size(), 1u);
    EXPECT_TRUE(leg.missing.empty());
  }
}

TEST(RequestTranslationTest, ToStringFormats) {
  Request request{{"integrated", "Employee"}, {"D_Ssn", "Name"}};
  EXPECT_EQ(request.ToString(),
            "SELECT D_Ssn, Name FROM integrated.Employee");
  Request star{{"integrated", "Employee"}, {}};
  EXPECT_EQ(star.ToString(), "SELECT * FROM integrated.Employee");
  IntegrationResult result = MakeResult();
  Result<FanoutPlan> plan = TranslateToComponents(result, request);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("-> hr.Employee"), std::string::npos);
  EXPECT_NE(text.find("D_Ssn<-Ssn"), std::string::npos);
  EXPECT_NE(text.find("missing: Name"), std::string::npos);
}

}  // namespace
}  // namespace ecrint::core
