#include "core/resemblance.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "ecr/builder.h"

namespace ecrint::core {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

ecr::Catalog UniversityCatalog() {
  ecr::Catalog catalog;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  b1.Relationship("Majors", {{"Student", 1, 1, ""},
                             {"Department", 0, SchemaBuilder::kN, ""}})
      .Attr("Since", Domain::Date());
  EXPECT_TRUE(catalog.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real())
      .Attr("Support_type", Domain::Char());
  b2.Entity("Faculty")
      .Attr("Name", Domain::Char(), true)
      .Attr("Rank", Domain::Char());
  b2.Entity("Department").Attr("Dname", Domain::Char(), true);
  b2.Relationship("Study", {{"Grad_student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}})
      .Attr("From", Domain::Date());
  EXPECT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  return catalog;
}

// DDA input reproducing Screen 8's session.
EquivalenceMap UniversityEquivalences(const ecr::Catalog& catalog) {
  EquivalenceMap map = *EquivalenceMap::Create(catalog, {"sc1", "sc2"});
  EXPECT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_TRUE(map.DeclareEquivalent({"sc1", "Student", "Name"},
                                    {"sc2", "Faculty", "Name"})
                  .ok());
  EXPECT_TRUE(map.DeclareEquivalent({"sc1", "Student", "GPA"},
                                    {"sc2", "Grad_student", "GPA"})
                  .ok());
  EXPECT_TRUE(map.DeclareEquivalent({"sc1", "Department", "Dname"},
                                    {"sc2", "Department", "Dname"})
                  .ok());
  return map;
}

TEST(ResemblanceTest, Screen8RatiosAndOrder) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  Result<std::vector<ObjectPair>> ranked = RankObjectPairs(
      catalog, map, "sc1", "sc2", StructureKind::kObjectClass);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_EQ(ranked->size(), 3u);

  // Screen 8, row 1: sc1.Department / sc2.Department, ratio 0.5000.
  EXPECT_EQ((*ranked)[0].first.ToString(), "sc1.Department");
  EXPECT_EQ((*ranked)[0].second.ToString(), "sc2.Department");
  EXPECT_EQ(FormatFixed((*ranked)[0].attribute_ratio, 4), "0.5000");

  // Row 2: sc1.Student / sc2.Grad_student, ratio 0.5000.
  EXPECT_EQ((*ranked)[1].first.ToString(), "sc1.Student");
  EXPECT_EQ((*ranked)[1].second.ToString(), "sc2.Grad_student");
  EXPECT_EQ(FormatFixed((*ranked)[1].attribute_ratio, 4), "0.5000");
  EXPECT_EQ((*ranked)[1].equivalent_attributes, 2);

  // Row 3: sc1.Student / sc2.Faculty, ratio 0.3333.
  EXPECT_EQ((*ranked)[2].first.ToString(), "sc1.Student");
  EXPECT_EQ((*ranked)[2].second.ToString(), "sc2.Faculty");
  EXPECT_EQ(FormatFixed((*ranked)[2].attribute_ratio, 4), "0.3333");
}

TEST(ResemblanceTest, HalfMeansEverySmallerAttributeMatched) {
  // The paper: "a value of 0.5 for attribute ratio specifies that every
  // attribute in one object class has an equivalent attribute in the other."
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  Result<OcsMatrix> matrix = OcsMatrix::Create(catalog, map, "sc1", "sc2",
                                               StructureKind::kObjectClass);
  ASSERT_TRUE(matrix.ok());
  for (const ObjectPair& pair : matrix->RankedPairs()) {
    EXPECT_LE(pair.attribute_ratio, 0.5);
    if (pair.attribute_ratio == 0.5) {
      EXPECT_EQ(pair.equivalent_attributes, pair.smaller_attribute_count);
    }
  }
}

TEST(ResemblanceTest, ZeroPairsExcludedByDefault) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  Result<OcsMatrix> matrix = OcsMatrix::Create(catalog, map, "sc1", "sc2",
                                               StructureKind::kObjectClass);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->RankedPairs().size(), 3u);
  // 2 structures in sc1 x 3 in sc2 = 6 with zeros included.
  EXPECT_EQ(matrix->RankedPairs(/*include_zero=*/true).size(), 6u);
}

TEST(ResemblanceTest, OcsMatrixCellsMatchCounts) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  Result<OcsMatrix> matrix = OcsMatrix::Create(catalog, map, "sc1", "sc2",
                                               StructureKind::kObjectClass);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->rows().size(), 2u);     // Student, Department
  ASSERT_EQ(matrix->columns().size(), 3u);  // Grad_student, Faculty, Dept
  // rows/columns follow declaration order.
  EXPECT_EQ(matrix->rows()[0].object, "Student");
  EXPECT_EQ(matrix->Count(0, 0), 2);  // Student x Grad_student
  EXPECT_EQ(matrix->Count(0, 1), 1);  // Student x Faculty
  EXPECT_EQ(matrix->Count(0, 2), 0);  // Student x Department
  EXPECT_EQ(matrix->Count(1, 2), 1);  // Department x Department
}

TEST(ResemblanceTest, RelationshipKindRanksRelationships) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  ASSERT_TRUE(
      map.DeclareEquivalent({"sc1", "Majors", "Since"}, {"sc2", "Study", "From"})
          .ok());
  Result<std::vector<ObjectPair>> ranked = RankObjectPairs(
      catalog, map, "sc1", "sc2", StructureKind::kRelationshipSet);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 1u);
  EXPECT_EQ((*ranked)[0].first.object, "Majors");
  EXPECT_EQ((*ranked)[0].second.object, "Study");
  EXPECT_EQ((*ranked)[0].attribute_ratio, 0.5);
}

TEST(ResemblanceTest, SameSchemaRejected) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  EXPECT_FALSE(OcsMatrix::Create(catalog, map, "sc1", "sc1",
                                 StructureKind::kObjectClass)
                   .ok());
}

TEST(ResemblanceTest, UnknownSchemaRejected) {
  ecr::Catalog catalog = UniversityCatalog();
  EquivalenceMap map = UniversityEquivalences(catalog);
  EXPECT_FALSE(OcsMatrix::Create(catalog, map, "sc1", "nope",
                                 StructureKind::kObjectClass)
                   .ok());
}

}  // namespace
}  // namespace ecrint::core
