#include "tui/screen.h"

#include <gtest/gtest.h>

namespace ecrint::tui {
namespace {

TEST(ScreenTest, PutAndRender) {
  Screen screen(3, 10);
  screen.Put(1, 2, "hi");
  std::string out = screen.Render();
  EXPECT_EQ(out, "\n  hi\n\n");
}

TEST(ScreenTest, ClipsAtEdges) {
  Screen screen(2, 5);
  screen.Put(0, 3, "abcdef");   // clipped right
  screen.Put(5, 0, "nope");     // off-grid row ignored
  screen.Put(1, -2, "xyz");     // negative col: only tail visible
  std::string out = screen.Render();
  EXPECT_EQ(out, "   ab\nz\n");
}

TEST(ScreenTest, BoxDrawsBorders) {
  Screen screen(4, 6);
  screen.Box(0, 0, 3, 5);
  EXPECT_EQ(screen.Render(),
            "+----+\n"
            "|    |\n"
            "|    |\n"
            "+----+\n");
}

TEST(ScreenTest, PutCentered) {
  Screen screen(1, 11);
  screen.PutCentered(0, "abc");
  EXPECT_EQ(screen.Render(), "    abc\n");
}

TEST(ScreenTest, HorizontalLine) {
  Screen screen(1, 8);
  screen.HorizontalLine(0, 2, 5);
  EXPECT_EQ(screen.Render(), "  ----\n");
}

TEST(ScreenTest, DrawTableAlignsColumns) {
  Screen screen(6, 40);
  int next = DrawTable(screen, 0, 0,
                       {{"Name", 10}, {"Type", 6}},
                       {{"Student", "e"}, {"Majors", "r"}});
  EXPECT_EQ(next, 4);
  std::string out = screen.Render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("Type"), std::string::npos);
  EXPECT_NE(out.find("Student"), std::string::npos);
  // Cells clipped to width.
  Screen clipped(4, 40);
  DrawTable(clipped, 0, 0, {{"N", 4}}, {{"extremely_long"}});
  EXPECT_NE(clipped.Render().find("extr"), std::string::npos);
  EXPECT_EQ(clipped.Render().find("extremely"), std::string::npos);
}

}  // namespace
}  // namespace ecrint::tui
