#include "tui/session.h"

#include <gtest/gtest.h>

namespace ecrint::tui {
namespace {

// Feeds a list of input lines, returning the final frame.
std::string Drive(Session& session, const std::vector<std::string>& lines) {
  std::string frame;
  for (const std::string& line : lines) frame = session.Step(line);
  return frame;
}

// The paper's university session: define sc1 and sc2 through the collection
// screens exactly as the forms would.
void DefineUniversity(Session& session) {
  Drive(session, {
      "1",                       // task 1: schema collection
      "a sc1",                   // Screen 2: add schema sc1
      "a Student e",             // Screen 3: add entity
      "Name char key",           // Screen 5: attributes
      "GPA real",
      "e",
      "a Department e",
      "Dname char key",
      "e",
      "a Majors r",              // Screen 4: relationship
      "Student 1 1",
      "Department 0 n",
      "e",                       // finish participants
      "e",                       // no relationship attributes
      "e",                       // back to schema names
      "a sc2",
      "a Grad_student e",
      "Name char key",
      "GPA real",
      "Support_type char",
      "e",
      "a Faculty e",
      "Name char key",
      "Rank char",
      "e",
      "a Department e",
      "Dname char key",
      "e",
      "a Study r",
      "Grad_student 1 1",
      "Department 0 n",
      "e",
      "e",
      "a Works r",
      "Faculty 1 1",
      "Department 1 n",
      "e",
      "e",
      "e",                       // back to schema names
      "e",                       // back to main menu
  });
}

void DeclareEquivalences(Session& session) {
  Drive(session, {
      "2",                        // task 2
      "sc1 sc2",                  // schema pair
      "Student Grad_student",     // Screen 6 pick
      "a Name Name",              // Screen 7
      "a GPA GPA",
      "e",
      "Department Department",
      "a Dname Dname",
      "e",
      "e",                        // leave selection
  });
}

TEST(SessionTest, MainMenuRendersScreen1) {
  Session session;
  std::string frame = session.CurrentFrame();
  EXPECT_NE(frame.find("SCHEMA INTEGRATION TOOL"), std::string::npos);
  EXPECT_NE(frame.find("< Main Menu >"), std::string::npos);
  EXPECT_NE(frame.find("1. Define the schemas"), std::string::npos);
  EXPECT_NE(frame.find("6. Integrate and view"), std::string::npos);
}

TEST(SessionTest, SchemaCollectionBuildsCatalog) {
  Session session;
  DefineUniversity(session);
  EXPECT_EQ(session.screen(), ScreenId::kMainMenu);
  ASSERT_TRUE(session.catalog().Contains("sc1"));
  ASSERT_TRUE(session.catalog().Contains("sc2"));
  const ecr::Schema& sc1 = **session.catalog().GetSchema("sc1");
  EXPECT_EQ(sc1.num_objects(), 2);
  EXPECT_EQ(sc1.num_relationships(), 1);
  ecr::ObjectId student = sc1.FindObject("Student");
  ASSERT_NE(student, ecr::kNoObject);
  ASSERT_EQ(sc1.object(student).attributes.size(), 2u);
  EXPECT_TRUE(sc1.object(student).attributes[0].is_key);
  const ecr::RelationshipSet& majors = sc1.relationship(0);
  EXPECT_EQ(majors.participants[0].min_card, 1);
  EXPECT_EQ(majors.participants[1].max_card, ecr::kUnboundedCardinality);
}

TEST(SessionTest, StructureScreenShowsCounts) {
  Session session;
  Drive(session, {"1", "a sc1", "a Student e", "Name char key", "GPA real",
                  "e"});
  std::string frame = session.CurrentFrame();
  EXPECT_NE(frame.find("Structure Information Collection Screen"),
            std::string::npos);
  EXPECT_NE(frame.find("SCHEMA NAME: sc1"), std::string::npos);
  EXPECT_NE(frame.find("1> Student"), std::string::npos);
  EXPECT_NE(frame.find("2"), std::string::npos);  // two attributes
}

TEST(SessionTest, EquivalenceEditorShowsClasses) {
  Session session;
  DefineUniversity(session);
  std::string frame = Drive(session, {
      "2", "sc1 sc2", "Student Grad_student", "a Name Name"});
  EXPECT_NE(frame.find("Equivalence Class Creation and Deletion Screen"),
            std::string::npos);
  EXPECT_NE(frame.find("sc1.Student"), std::string::npos);
  EXPECT_NE(frame.find("sc2.Grad_student"), std::string::npos);
  // Merged class: Grad_student's Name shows class #1 (Student.Name's).
  EXPECT_NE(frame.find("1> Name"), std::string::npos);
}

TEST(SessionTest, AssertionScreenShowsRatiosLikeScreen8) {
  Session session;
  DefineUniversity(session);
  DeclareEquivalences(session);
  std::string frame = Drive(session, {"3"});
  EXPECT_EQ(session.screen(), ScreenId::kAssertionCollection);
  EXPECT_NE(frame.find("Assertion Collection For Object Pairs"),
            std::string::npos);
  EXPECT_NE(frame.find("0.5000"), std::string::npos);
  EXPECT_NE(frame.find("sc1.Department"), std::string::npos);
  EXPECT_NE(frame.find("'equals'"), std::string::npos);
}

TEST(SessionTest, AssertionsRecordedAndShown) {
  Session session;
  DefineUniversity(session);
  DeclareEquivalences(session);
  std::string frame = Drive(session, {"3", "1 1", "2 3"});
  // Department=Department and Student contains Grad_student recorded.
  EXPECT_EQ(session.assertions().user_assertions().size(), 2u);
  EXPECT_NE(frame.find("=>3"), std::string::npos);
}

TEST(SessionTest, ConflictShowsScreen9) {
  Session session;
  DefineUniversity(session);
  DeclareEquivalences(session);
  // Student contains Grad_student, then claim they're disjoint: conflict.
  std::string frame = Drive(session, {"3", "2 3", "2 0"});
  EXPECT_EQ(session.screen(), ScreenId::kAssertionConflict);
  EXPECT_NE(frame.find("Assertion Conflict Resolution Screen"),
            std::string::npos);
  EXPECT_NE(frame.find("conflict"), std::string::npos);
  // Any key returns to the collection screen; the store is unchanged.
  Drive(session, {"x"});
  EXPECT_EQ(session.screen(), ScreenId::kAssertionCollection);
  EXPECT_EQ(session.assertions().user_assertions().size(), 1u);
}

// Full paper scenario through the viewing screens (Screens 10-12).
class ViewingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DefineUniversity(session_);
    DeclareEquivalences(session_);
    Drive(session_, {"3", "1 1", "2 3", "6 4", "e"});   // Screen 8 answers
    Drive(session_, {"5", "1 1", "e"});                 // Majors = Study
    Drive(session_, {"6"});                             // integrate + view
  }
  Session session_;
};

TEST_F(ViewingTest, ObjectClassScreenListsResult) {
  ASSERT_EQ(session_.screen(), ScreenId::kObjectClassScreen);
  std::string frame = session_.CurrentFrame();
  EXPECT_NE(frame.find("INTEGRATED SCHEMA"), std::string::npos);
  EXPECT_NE(frame.find("E_Department"), std::string::npos);
  EXPECT_NE(frame.find("D_Stud_Facu"), std::string::npos);
  EXPECT_NE(frame.find("Grad_student"), std::string::npos);
  EXPECT_NE(frame.find("Entities(2)"), std::string::npos);
  EXPECT_NE(frame.find("Categories(3)"), std::string::npos);
  EXPECT_NE(frame.find("Relationships(2)"), std::string::npos);
}

TEST_F(ViewingTest, CategoryScreenShowsStudentParentsAndChildren) {
  std::string frame = Drive(session_, {"m Student", "c"});
  EXPECT_EQ(session_.screen(), ScreenId::kCategoryScreen);
  EXPECT_NE(frame.find("< Category Screen >"), std::string::npos);
  EXPECT_NE(frame.find("D_Stud_Facu"), std::string::npos);
  EXPECT_NE(frame.find("Grad_student"), std::string::npos);
}

TEST_F(ViewingTest, AttributeAndComponentScreens) {
  std::string frame = Drive(session_, {"m Student", "a"});
  EXPECT_EQ(session_.screen(), ScreenId::kAttributeScreen);
  EXPECT_NE(frame.find("D_Name"), std::string::npos);
  EXPECT_NE(frame.find("derived"), std::string::npos);

  frame = Drive(session_, {"c D_Name"});
  EXPECT_EQ(session_.screen(), ScreenId::kComponentAttributeScreen);
  EXPECT_NE(frame.find("original Schema Name: sc1"), std::string::npos);
  EXPECT_NE(frame.find("original Object Name: Student"), std::string::npos);
  EXPECT_NE(frame.find("component 1 of 2"), std::string::npos);

  frame = Drive(session_, {""});
  frame = session_.CurrentFrame();
  EXPECT_NE(frame.find("original Schema Name: sc2"), std::string::npos);
  EXPECT_NE(frame.find("original Object Name: Grad_student"),
            std::string::npos);
}

TEST_F(ViewingTest, EquivalentScreenShowsSources) {
  std::string frame = Drive(session_, {"m E_Department", "en", "v"});
  EXPECT_EQ(session_.screen(), ScreenId::kEquivalentScreen);
  EXPECT_NE(frame.find("sc1.Department"), std::string::npos);
  EXPECT_NE(frame.find("sc2.Department"), std::string::npos);
}

TEST_F(ViewingTest, RelationshipAndParticipatingScreens) {
  std::string frame = Drive(session_, {"r E_Majo_Stud"});
  EXPECT_EQ(session_.screen(), ScreenId::kRelationshipScreen);
  frame = Drive(session_, {"p"});
  EXPECT_EQ(session_.screen(), ScreenId::kParticipatingScreen);
  EXPECT_NE(frame.find("Student"), std::string::npos);
  EXPECT_NE(frame.find("E_Department"), std::string::npos);
  EXPECT_NE(frame.find("[1,1]"), std::string::npos);
  EXPECT_NE(frame.find("[0,n]"), std::string::npos);
}

TEST_F(ViewingTest, ExitReturnsToMainThenQuits) {
  Drive(session_, {"x"});
  EXPECT_EQ(session_.screen(), ScreenId::kMainMenu);
  Drive(session_, {"e"});
  EXPECT_TRUE(session_.done());
}

TEST(SessionTest, ErrorsSurfaceInMessageRow) {
  Session session;
  std::string frame = Drive(session, {"1", "a bad name extra"});
  EXPECT_NE(frame.find("*"), std::string::npos);
  frame = Drive(session, {"a sc1", "a Student e", "Name nosuchdomain", "e"});
  // The bad attribute was rejected but the flow continues.
  EXPECT_EQ(session.screen(), ScreenId::kStructureCollection);
  const ecr::Schema& sc1 = **session.catalog().GetSchema("sc1");
  EXPECT_EQ(sc1.object(sc1.FindObject("Student")).attributes.size(), 0u);
}

TEST(SessionTest, Task4RelationshipEquivalences) {
  Session session;
  DefineUniversity(session);
  // Give the relationships attributes to relate.
  Drive(session, {"1", "u sc1", "e", "e"});  // no-op navigation check
  EXPECT_EQ(session.screen(), ScreenId::kMainMenu);
  std::string frame = Drive(session, {"4", "sc1 sc2"});
  EXPECT_EQ(session.screen(), ScreenId::kObjectNameSelection);
  EXPECT_NE(frame.find("Relationship Name Selection Screen"),
            std::string::npos);
  EXPECT_NE(frame.find("r Majors"), std::string::npos);
  EXPECT_NE(frame.find("r Study"), std::string::npos);
  // Majors/Study have no attributes: picking them is rejected helpfully.
  frame = Drive(session, {"Majors Study"});
  EXPECT_EQ(session.screen(), ScreenId::kObjectNameSelection);
  EXPECT_NE(frame.find("no attributes"), std::string::npos);
  Drive(session, {"e"});
  EXPECT_EQ(session.screen(), ScreenId::kMainMenu);
}

TEST(SessionTest, ProjectExportImportRoundTrip) {
  Session original;
  DefineUniversity(original);
  DeclareEquivalences(original);
  Drive(original, {"3", "1 1", "2 3", "e"});
  std::string text = original.ExportProject();
  EXPECT_NE(text.find("%schemas"), std::string::npos);

  ecrint::Result<ecrint::core::Project> project =
      ecrint::core::ParseProject(text);
  ASSERT_TRUE(project.ok()) << project.status();
  Session resumed;
  ASSERT_TRUE(resumed.ImportProject(*std::move(project)).ok());
  EXPECT_TRUE(resumed.catalog().Contains("sc1"));
  EXPECT_TRUE(resumed.catalog().Contains("sc2"));
  EXPECT_EQ(resumed.assertions().user_assertions().size(), 2u);
  // The resumed session can go straight to integration over all schemas.
  Drive(resumed, {"6"});
  ASSERT_TRUE(resumed.integration().has_value());
  EXPECT_NE(resumed.integration()->schema.FindObject("E_Department"),
            ecr::kNoObject);
}

TEST(SessionTest, AssertionHintsRendered) {
  Session session;
  DefineUniversity(session);
  DeclareEquivalences(session);
  std::string frame = Drive(session, {"3"});
  // Name is the key of both Student and Grad_student and the DDA declared
  // them equivalent: the Section-4 hint appears with the closed-world menu
  // code (equal char domains -> 'equals', code 1).
  EXPECT_NE(frame.find("hint: Student/Grad_student"), std::string::npos);
  EXPECT_NE(frame.find("key domains equal; codes 1"), std::string::npos);
}

TEST(SessionTest, Task6WithoutSchemasExplains) {
  Session session;
  std::string frame = Drive(session, {"6"});
  EXPECT_EQ(session.screen(), ScreenId::kMainMenu);
  EXPECT_NE(frame.find("no schemas defined"), std::string::npos);
}

}  // namespace
}  // namespace ecrint::tui
