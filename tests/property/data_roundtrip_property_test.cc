// End-to-end instance-level validation: component databases are populated
// from the workload's ground-truth extents, the schemas are integrated, and
// federated fan-out queries against every integrated object class must
// retrieve exactly the member entities the world model says each component
// holds — proving the generated mappings on actual data.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/integrator.h"
#include "core/request_translation.h"
#include "data/federation.h"
#include "data/instance_store.h"
#include "data/materialize.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

constexpr int kEntitiesPerConcept = 10;

// World entity k of a concept sits at position (k + 0.5) / N and carries
// the globally unique key concept * 1000 + k.
double PositionOf(int k) {
  return (k + 0.5) / static_cast<double>(kEntitiesPerConcept);
}

class DataRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataRoundTripTest, FanoutRetrievesExactlyTheWorldExtents) {
  workload::GeneratorConfig config;
  config.seed = GetParam();
  config.num_concepts = 10;
  config.num_schemas = 3;
  config.partial_extent = 0.6;
  config.relationships_per_schema = 0;  // instance focus
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());

  // Populate one store per component schema from the extents.
  std::map<std::string, data::InstanceStore> stores;
  for (const std::string& name : w->schema_names) {
    stores.emplace(name, data::InstanceStore(*w->catalog.GetSchema(name)));
  }
  // Expected multiset of keys per (schema, object).
  std::map<std::pair<std::string, std::string>, std::set<long long>>
      expected;
  for (const workload::LocalExtent& extent : w->extents) {
    data::InstanceStore& store = stores.at(extent.schema);
    const ecr::Schema& schema = store.schema();
    ecr::ObjectId object = schema.FindObject(extent.object);
    ASSERT_NE(object, ecr::kNoObject);
    const std::string& key_name = schema.object(object).attributes[0].name;
    for (int k = 0; k < kEntitiesPerConcept; ++k) {
      double p = PositionOf(k);
      if (p < extent.lo || p >= extent.hi) continue;
      long long key = extent.concept_index * 1000 + k;
      ASSERT_TRUE(store.Insert(extent.object,
                               {{key_name, data::Value::Int(key)}})
                      .ok());
      expected[{extent.schema, extent.object}].insert(key);
    }
  }

  // Integrate with ground-truth DDA input.
  Result<core::EquivalenceMap> equivalence =
      core::EquivalenceMap::Create(w->catalog, w->schema_names);
  ASSERT_TRUE(equivalence.ok());
  for (const workload::TrueAttributeMatch& match : w->attribute_matches) {
    (void)equivalence->DeclareEquivalent(match.first, match.second);
  }
  core::AssertionStore assertions;
  for (const workload::TrueObjectRelation& relation : w->object_relations) {
    ASSERT_TRUE(assertions
                    .Assert(relation.first, relation.second,
                            relation.assertion)
                    .ok());
  }
  Result<core::IntegrationResult> result = core::Integrate(
      w->catalog, w->schema_names, *equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<std::string, const data::InstanceStore*> store_ptrs;
  for (auto& [name, store] : stores) store_ptrs[name] = &store;

  // Query every integrated object class for its key attribute and compare
  // against the union of its components' expected keys.
  for (const core::IntegratedStructureInfo& info : result->structures) {
    if (info.kind != core::StructureKind::kObjectClass) continue;
    ecr::ObjectId id = result->schema.FindObject(info.name);
    ASSERT_NE(id, ecr::kNoObject);
    std::string key_attribute;
    for (const ecr::Attribute& a :
         result->schema.InheritedAttributes(id)) {
      if (a.is_key) key_attribute = a.name;
    }
    if (key_attribute.empty()) continue;  // unkeyed generalization

    core::Request query{{result->schema.name(), info.name}, {key_attribute}};
    Result<core::FanoutPlan> plan =
        core::TranslateToComponents(*result, query);
    ASSERT_TRUE(plan.ok()) << info.name << ": " << plan.status();
    Result<data::ResultSet> rows = data::ExecuteFanout(*plan, store_ptrs);
    ASSERT_TRUE(rows.ok()) << info.name << ": " << rows.status();

    // Expected rows: one per (component, member) over the class's extent.
    size_t expected_rows = 0;
    std::multiset<data::Value> expected_keys;
    for (const core::ObjectRef& component :
         result->ComponentExtent(info.name)) {
      auto it = expected.find({component.schema, component.object});
      if (it == expected.end()) continue;
      expected_rows += it->second.size();
      for (long long key : it->second) {
        expected_keys.insert(data::Value::Int(key));
      }
    }
    ASSERT_EQ(rows->rows.size(), expected_rows) << info.name;
    std::multiset<data::Value> got;
    for (const std::vector<data::Value>& row : rows->rows) {
      // The key attribute must be retrievable (never null): every component
      // in the extent records its key, and the mapping must find it.
      ASSERT_EQ(row.size(), 1u);
      EXPECT_FALSE(row[0].is_null()) << info.name;
      got.insert(row[0]);
    }
    EXPECT_EQ(got, expected_keys) << info.name;
  }
}

TEST_P(DataRoundTripTest, MaterializationDeduplicatesByKey) {
  // Two schemas (so every class reaches a single root) populated from the
  // extents; materializing the integrated database must merge the shared
  // world entities and keep the per-class member counts equal to the union
  // of the class's component extents.
  workload::GeneratorConfig config;
  config.seed = GetParam() ^ 0xabcdef;
  config.num_concepts = 8;
  config.num_schemas = 2;
  config.partial_extent = 0.7;
  config.relationships_per_schema = 0;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  ASSERT_TRUE(w.ok());

  std::map<std::string, data::InstanceStore> stores;
  for (const std::string& name : w->schema_names) {
    stores.emplace(name, data::InstanceStore(*w->catalog.GetSchema(name)));
  }
  std::map<std::pair<std::string, std::string>, std::set<long long>> keys;
  for (const workload::LocalExtent& extent : w->extents) {
    data::InstanceStore& store = stores.at(extent.schema);
    const ecr::Schema& schema = store.schema();
    const std::string& key_name =
        schema.object(schema.FindObject(extent.object)).attributes[0].name;
    for (int k = 0; k < kEntitiesPerConcept; ++k) {
      double p = PositionOf(k);
      if (p < extent.lo || p >= extent.hi) continue;
      long long key = extent.concept_index * 1000 + k;
      ASSERT_TRUE(store.Insert(extent.object,
                               {{key_name, data::Value::Int(key)}})
                      .ok());
      keys[{extent.schema, extent.object}].insert(key);
    }
  }

  Result<core::EquivalenceMap> equivalence =
      core::EquivalenceMap::Create(w->catalog, w->schema_names);
  ASSERT_TRUE(equivalence.ok());
  for (const workload::TrueAttributeMatch& match : w->attribute_matches) {
    (void)equivalence->DeclareEquivalent(match.first, match.second);
  }
  core::AssertionStore assertions;
  for (const workload::TrueObjectRelation& relation : w->object_relations) {
    ASSERT_TRUE(assertions
                    .Assert(relation.first, relation.second,
                            relation.assertion)
                    .ok());
  }
  Result<core::IntegrationResult> result = core::Integrate(
      w->catalog, w->schema_names, *equivalence, assertions);
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<std::string, const data::InstanceStore*> store_ptrs;
  for (auto& [name, store] : stores) store_ptrs[name] = &store;
  Result<data::MaterializationResult> materialized =
      data::MaterializeIntegrated(*result, store_ptrs);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  // Consistent world data never disagrees on merged attributes.
  EXPECT_TRUE(materialized->conflicts.empty());
  EXPECT_TRUE(materialized->store->CheckIntegrity().empty());

  for (const core::IntegratedStructureInfo& info : result->structures) {
    if (info.kind != core::StructureKind::kObjectClass) continue;
    std::set<long long> expected;
    for (const core::ObjectRef& component :
         result->ComponentExtent(info.name)) {
      auto it = keys.find({component.schema, component.object});
      if (it != keys.end()) {
        expected.insert(it->second.begin(), it->second.end());
      }
    }
    EXPECT_EQ(materialized->store->MembersOf(info.name).size(),
              expected.size())
        << info.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataRoundTripTest,
                         ::testing::Values(5, 23, 77, 456));

}  // namespace
}  // namespace ecrint
