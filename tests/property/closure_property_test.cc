// Model-based property tests for the assertion closure: relations derived
// from ACTUAL sets (random subsets of a small universe) are asserted in
// random order; the closure must accept them all, remain sound (the true
// relation never gets excluded), and reject any assertion that contradicts
// the model once the model is fully pinned.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/assertion_store.h"

namespace ecrint::core {
namespace {

constexpr int kUniverse = 6;

SetRelation Classify(unsigned a, unsigned b) {
  if (a == b) return SetRelation::kEqual;
  if ((a & b) == a) return SetRelation::kSubset;
  if ((a & b) == b) return SetRelation::kSuperset;
  if ((a & b) != 0) return SetRelation::kOverlap;
  return SetRelation::kDisjoint;
}

AssertionType TypeFor(SetRelation relation) {
  switch (relation) {
    case SetRelation::kEqual: return AssertionType::kEquals;
    case SetRelation::kSubset: return AssertionType::kContainedIn;
    case SetRelation::kSuperset: return AssertionType::kContains;
    case SetRelation::kOverlap: return AssertionType::kMayBe;
    case SetRelation::kDisjoint: return AssertionType::kDisjointIntegrable;
  }
  return AssertionType::kDisjointIntegrable;
}

struct World {
  std::vector<unsigned> sets;   // bitmask extents, non-empty
  std::vector<ObjectRef> refs;
  std::vector<std::pair<int, int>> pairs;  // all i<j, shuffled
};

World MakeWorld(uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<unsigned> pick(1, (1u << kUniverse) - 1);
  World world;
  for (int i = 0; i < n; ++i) {
    world.sets.push_back(pick(rng));
    world.refs.push_back({"s" + std::to_string(i % 3),
                          "O" + std::to_string(i)});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) world.pairs.push_back({i, j});
  }
  std::shuffle(world.pairs.begin(), world.pairs.end(), rng);
  return world;
}

class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, TrueRelationsAlwaysConsistent) {
  World world = MakeWorld(GetParam(), 9);
  AssertionStore store;
  for (auto [i, j] : world.pairs) {
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    Result<ConflictReport> r =
        store.Assert(world.refs[i], world.refs[j], TypeFor(truth));
    ASSERT_TRUE(r.ok()) << "seed " << GetParam() << ": asserting true "
                        << SetRelationName(truth) << " between sets "
                        << world.sets[i] << " and " << world.sets[j]
                        << " conflicted: " << r.status();
  }
  // Every pair is pinned to exactly the model relation.
  for (auto [i, j] : world.pairs) {
    Result<SetRelation> established =
        store.EstablishedRelation(world.refs[i], world.refs[j]);
    ASSERT_TRUE(established.ok());
    EXPECT_EQ(*established, Classify(world.sets[i], world.sets[j]));
  }
}

TEST_P(ClosurePropertyTest, SoundnessUnderPartialKnowledge) {
  World world = MakeWorld(GetParam(), 9);
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  AssertionStore store;
  // Assert roughly half of the true facts.
  for (auto [i, j] : world.pairs) {
    if (rng() % 2 == 0) continue;
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    ASSERT_TRUE(
        store.Assert(world.refs[i], world.refs[j], TypeFor(truth)).ok());
  }
  // The truth must remain possible everywhere: the closure never derives
  // something the model falsifies.
  for (auto [i, j] : world.pairs) {
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    RelationSet possible =
        store.PossibleRelations(world.refs[i], world.refs[j]);
    EXPECT_TRUE(Contains(possible, truth))
        << "seed " << GetParam() << ": " << SetRelationName(truth)
        << " wrongly excluded for sets " << world.sets[i] << "/"
        << world.sets[j] << ", possible " << RelationSetToString(possible);
  }
}

TEST_P(ClosurePropertyTest, FullyPinnedModelRejectsEveryLie) {
  World world = MakeWorld(GetParam(), 7);
  AssertionStore store;
  for (auto [i, j] : world.pairs) {
    ASSERT_TRUE(store
                    .Assert(world.refs[i], world.refs[j],
                            TypeFor(Classify(world.sets[i], world.sets[j])))
                    .ok());
  }
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto [i, j] = world.pairs[rng() % world.pairs.size()];
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    SetRelation lie = static_cast<SetRelation>(rng() % kNumSetRelations);
    if (lie == truth) continue;
    size_t assertions_before = store.user_assertions().size();
    Result<ConflictReport> r =
        store.Assert(world.refs[i], world.refs[j], TypeFor(lie));
    EXPECT_FALSE(r.ok()) << "lie " << SetRelationName(lie)
                         << " accepted over truth "
                         << SetRelationName(truth);
    // And the rejection must not disturb the store.
    EXPECT_EQ(store.user_assertions().size(), assertions_before);
    EXPECT_EQ(*store.EstablishedRelation(world.refs[i], world.refs[j]),
              truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace ecrint::core
