// Model-based property tests for the assertion closure: relations derived
// from ACTUAL sets (random subsets of a small universe) are asserted in
// random order; the closure must accept them all, remain sound (the true
// relation never gets excluded), and reject any assertion that contradicts
// the model once the model is fully pinned.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/assertion_store.h"
#include "core/object_ref.h"

namespace ecrint::core {
namespace {

constexpr int kUniverse = 6;

SetRelation Classify(unsigned a, unsigned b) {
  if (a == b) return SetRelation::kEqual;
  if ((a & b) == a) return SetRelation::kSubset;
  if ((a & b) == b) return SetRelation::kSuperset;
  if ((a & b) != 0) return SetRelation::kOverlap;
  return SetRelation::kDisjoint;
}

AssertionType TypeFor(SetRelation relation) {
  switch (relation) {
    case SetRelation::kEqual: return AssertionType::kEquals;
    case SetRelation::kSubset: return AssertionType::kContainedIn;
    case SetRelation::kSuperset: return AssertionType::kContains;
    case SetRelation::kOverlap: return AssertionType::kMayBe;
    case SetRelation::kDisjoint: return AssertionType::kDisjointIntegrable;
  }
  return AssertionType::kDisjointIntegrable;
}

struct World {
  std::vector<unsigned> sets;   // bitmask extents, non-empty
  std::vector<ObjectRef> refs;
  std::vector<std::pair<int, int>> pairs;  // all i<j, shuffled
};

World MakeWorld(uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<unsigned> pick(1, (1u << kUniverse) - 1);
  World world;
  for (int i = 0; i < n; ++i) {
    world.sets.push_back(pick(rng));
    world.refs.push_back({"s" + std::to_string(i % 3),
                          "O" + std::to_string(i)});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) world.pairs.push_back({i, j});
  }
  std::shuffle(world.pairs.begin(), world.pairs.end(), rng);
  return world;
}

class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, TrueRelationsAlwaysConsistent) {
  World world = MakeWorld(GetParam(), 9);
  AssertionStore store;
  for (auto [i, j] : world.pairs) {
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    Result<ConflictReport> r =
        store.Assert(world.refs[i], world.refs[j], TypeFor(truth));
    ASSERT_TRUE(r.ok()) << "seed " << GetParam() << ": asserting true "
                        << SetRelationName(truth) << " between sets "
                        << world.sets[i] << " and " << world.sets[j]
                        << " conflicted: " << r.status();
  }
  // Every pair is pinned to exactly the model relation.
  for (auto [i, j] : world.pairs) {
    Result<SetRelation> established =
        store.EstablishedRelation(world.refs[i], world.refs[j]);
    ASSERT_TRUE(established.ok());
    EXPECT_EQ(*established, Classify(world.sets[i], world.sets[j]));
  }
}

TEST_P(ClosurePropertyTest, SoundnessUnderPartialKnowledge) {
  World world = MakeWorld(GetParam(), 9);
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  AssertionStore store;
  // Assert roughly half of the true facts.
  for (auto [i, j] : world.pairs) {
    if (rng() % 2 == 0) continue;
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    ASSERT_TRUE(
        store.Assert(world.refs[i], world.refs[j], TypeFor(truth)).ok());
  }
  // The truth must remain possible everywhere: the closure never derives
  // something the model falsifies.
  for (auto [i, j] : world.pairs) {
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    RelationSet possible =
        store.PossibleRelations(world.refs[i], world.refs[j]);
    EXPECT_TRUE(Contains(possible, truth))
        << "seed " << GetParam() << ": " << SetRelationName(truth)
        << " wrongly excluded for sets " << world.sets[i] << "/"
        << world.sets[j] << ", possible " << RelationSetToString(possible);
  }
}

TEST_P(ClosurePropertyTest, FullyPinnedModelRejectsEveryLie) {
  World world = MakeWorld(GetParam(), 7);
  AssertionStore store;
  for (auto [i, j] : world.pairs) {
    ASSERT_TRUE(store
                    .Assert(world.refs[i], world.refs[j],
                            TypeFor(Classify(world.sets[i], world.sets[j])))
                    .ok());
  }
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto [i, j] = world.pairs[rng() % world.pairs.size()];
    SetRelation truth = Classify(world.sets[i], world.sets[j]);
    SetRelation lie = static_cast<SetRelation>(rng() % kNumSetRelations);
    if (lie == truth) continue;
    size_t assertions_before = store.user_assertions().size();
    Result<ConflictReport> r =
        store.Assert(world.refs[i], world.refs[j], TypeFor(lie));
    EXPECT_FALSE(r.ok()) << "lie " << SetRelationName(lie)
                         << " accepted over truth "
                         << SetRelationName(truth);
    // And the rejection must not disturb the store.
    EXPECT_EQ(store.user_assertions().size(), assertions_before);
    EXPECT_EQ(*store.EstablishedRelation(world.refs[i], world.refs[j]),
              truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- worklist kernel vs brute-force oracle --------------------------------
//
// A reference implementation with no worklist, no bitmaps, and no SIMD: a
// dense matrix closed by iterating the O(N^3) refinement until fixpoint.
// The production kernel must agree with it on accept/reject AND on every
// cell of the possible-relations matrix, for arbitrary (including
// inconsistent) assertion sequences.
class OracleStore {
 public:
  int Intern(const ObjectRef& ref) {
    auto [it, inserted] = index_.emplace(ref, static_cast<int>(refs_.size()));
    if (inserted) {
      refs_.push_back(ref);
      int n = static_cast<int>(refs_.size());
      std::vector<std::vector<RelationSet>> next(
          n, std::vector<RelationSet>(n, kAnyRelation));
      for (int i = 0; i + 1 < n; ++i) {
        for (int j = 0; j + 1 < n; ++j) next[i][j] = rel_[i][j];
      }
      next[n - 1][n - 1] = MaskOf(SetRelation::kEqual);
      rel_ = std::move(next);
    }
    return it->second;
  }

  // Applies the assertion transactionally: on contradiction the matrix is
  // left unchanged and false is returned.
  bool Assert(const Assertion& assertion) {
    int i = Intern(assertion.first);
    int j = Intern(assertion.second);
    std::vector<std::vector<RelationSet>> saved = rel_;
    rel_[i][j] &= MaskOf(RelationOf(assertion.type));
    rel_[j][i] = Converse(rel_[i][j]);
    if (!Close()) {
      rel_ = std::move(saved);
      return false;
    }
    return true;
  }

  RelationSet Possible(const ObjectRef& a, const ObjectRef& b) const {
    auto ia = index_.find(a);
    auto ib = index_.find(b);
    if (ia == index_.end() || ib == index_.end()) return kAnyRelation;
    return rel_[ia->second][ib->second];
  }

  const std::vector<ObjectRef>& refs() const { return refs_; }

 private:
  bool Close() {
    int n = static_cast<int>(refs_.size());
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = 0; i < n; ++i) {
        for (int k = 0; k < n; ++k) {
          for (int j = 0; j < n; ++j) {
            RelationSet refined =
                rel_[i][j] & Compose(rel_[i][k], rel_[k][j]);
            if (refined == rel_[i][j]) continue;
            if (refined == kNoRelation) return false;
            rel_[i][j] = refined;
            rel_[j][i] = Converse(refined);
            changed = true;
          }
        }
      }
    }
    return true;
  }

  std::unordered_map<ObjectRef, int, ObjectRefHash> index_;
  std::vector<ObjectRef> refs_;
  std::vector<std::vector<RelationSet>> rel_;
};

// A random mix of true facts and lies about one ACTUAL-set world; the lies
// make a good fraction of the sequence genuinely contradictory.
std::vector<Assertion> RandomSequence(const World& world, std::mt19937_64& rng,
                                      int count) {
  std::vector<Assertion> ops;
  for (int n = 0; n < count; ++n) {
    auto [i, j] = world.pairs[rng() % world.pairs.size()];
    SetRelation relation = Classify(world.sets[i], world.sets[j]);
    if (rng() % 3 == 0) {
      relation = static_cast<SetRelation>(rng() % kNumSetRelations);
    }
    ops.push_back(Assertion{world.refs[i], world.refs[j], TypeFor(relation)});
  }
  return ops;
}

TEST_P(ClosurePropertyTest, WorklistAgreesWithBruteForceOracle) {
  World world = MakeWorld(GetParam() ^ 0xabcdef, 8);
  std::mt19937_64 rng(GetParam() * 1000003);
  std::vector<Assertion> ops = RandomSequence(world, rng, 30);

  AssertionStore store;
  OracleStore oracle;
  for (const Assertion& op : ops) {
    bool kernel_ok = store.Assert(op).ok();
    bool oracle_ok = oracle.Assert(op);
    ASSERT_EQ(kernel_ok, oracle_ok)
        << "seed " << GetParam() << ": kernel and oracle disagree on "
        << op.first.ToString() << " vs " << op.second.ToString();
    // After every step the two matrices must be bit-identical.
    for (const ObjectRef& a : oracle.refs()) {
      for (const ObjectRef& b : oracle.refs()) {
        ASSERT_EQ(store.PossibleRelations(a, b), oracle.Possible(a, b))
            << "seed " << GetParam() << ": cell " << a.ToString() << "/"
            << b.ToString() << " diverged";
      }
    }
  }
}

TEST_P(ClosurePropertyTest, ConflictReportReplaysToConflict) {
  World world = MakeWorld(GetParam() ^ 0x5eed, 8);
  std::mt19937_64 rng(GetParam() * 7919);
  std::vector<Assertion> ops = RandomSequence(world, rng, 40);

  AssertionStore store;
  int conflicts_seen = 0;
  for (const Assertion& op : ops) {
    if (store.Assert(op).ok()) continue;
    ++conflicts_seen;
    // Screen 9's derivation chain must be self-contained: the supporting
    // assertions are all user assertions, and replaying ONLY them plus the
    // attempted assertion reproduces the contradiction in a fresh store.
    ASSERT_TRUE(store.last_conflict().has_value());
    const ConflictReport& report = *store.last_conflict();
    const std::vector<Assertion>& log = store.user_assertions();
    for (const Assertion& support : report.supporting) {
      EXPECT_NE(std::find(log.begin(), log.end(), support), log.end())
          << "support is not a user assertion";
    }
    AssertionStore replay;
    for (const Assertion& support : report.supporting) {
      ASSERT_TRUE(replay.Assert(support).ok())
          << "supports alone must be consistent";
    }
    EXPECT_FALSE(replay.Assert(report.attempted).ok())
        << "seed " << GetParam()
        << ": replaying the reported supports does not reproduce the "
        << "conflict: " << report.ToString();
  }
  // The generator's lie rate makes conflict-free runs vanishingly rare;
  // guard so the property is actually exercised.
  EXPECT_GT(conflicts_seen, 0) << "seed " << GetParam();
}

TEST_P(ClosurePropertyTest, DerivedFactSupportsPinTheFact) {
  World world = MakeWorld(GetParam() ^ 0xfacade, 9);
  std::mt19937_64 rng(GetParam() + 17);
  AssertionStore store;
  for (auto [i, j] : world.pairs) {
    if (rng() % 2 == 0) continue;
    ASSERT_TRUE(store
                    .Assert(world.refs[i], world.refs[j],
                            TypeFor(Classify(world.sets[i], world.sets[j])))
                    .ok());
  }
  for (const AssertionStore::DerivedFact& fact : store.DerivedFacts()) {
    AssertionStore replay;
    for (const Assertion& support : fact.supporting) {
      ASSERT_TRUE(replay.Assert(support).ok());
    }
    RelationSet pinned = replay.PossibleRelations(fact.first, fact.second);
    EXPECT_EQ(pinned, MaskOf(fact.relation))
        << "seed " << GetParam() << ": supports leave "
        << RelationSetToString(pinned) << " possible for derived "
        << SetRelationName(fact.relation);
  }
}

// --- delta-incremental vs full rebuild ------------------------------------

TEST_P(ClosurePropertyTest, DeltaEqualsFullRebuildAtEveryPrefix) {
  World world = MakeWorld(GetParam() ^ 0xde17a, 8);
  std::mt19937_64 rng(GetParam() * 31 + 5);
  std::vector<Assertion> ops = RandomSequence(world, rng, 24);
  common::ThreadPool pool(3);

  AssertionStore incremental;  // grows one Assert at a time
  std::vector<Assertion> accepted;
  for (const Assertion& op : ops) {
    if (incremental.Assert(op).ok()) accepted.push_back(op);

    // Full rebuild of the accepted prefix, sequentially and batched
    // (cluster-parallel when the prefix spans components).
    AssertionStore replay;
    for (const Assertion& keep : accepted) {
      ASSERT_TRUE(replay.Assert(keep).ok());
    }
    AssertionStore batched;
    ASSERT_TRUE(batched.AssertBatch(accepted, &pool).ok());

    ASSERT_EQ(incremental.user_assertions(), replay.user_assertions());
    ASSERT_EQ(incremental.user_assertions(), batched.user_assertions());
    for (const ObjectRef& a : incremental.objects()) {
      for (const ObjectRef& b : incremental.objects()) {
        RelationSet want = incremental.PossibleRelations(a, b);
        ASSERT_EQ(replay.PossibleRelations(a, b), want)
            << "sequential rebuild diverged at " << a.ToString() << "/"
            << b.ToString();
        ASSERT_EQ(batched.PossibleRelations(a, b), want)
            << "batched rebuild diverged at " << a.ToString() << "/"
            << b.ToString();
      }
    }
  }
}

TEST_P(ClosurePropertyTest, MultiComponentBatchMatchesSequential) {
  // Three islands of objects with no cross-island assertions: the batch
  // kernel closes them on separate workers; results must be identical to
  // the sequential replay, including derivation provenance.
  std::mt19937_64 rng(GetParam() * 2654435761u);
  std::uniform_int_distribution<unsigned> pick(1, (1u << kUniverse) - 1);
  std::vector<unsigned> sets;
  std::vector<ObjectRef> refs;
  std::vector<Assertion> batch;
  constexpr int kIslands = 3;
  constexpr int kPerIsland = 5;
  for (int g = 0; g < kIslands; ++g) {
    for (int m = 0; m < kPerIsland; ++m) {
      sets.push_back(pick(rng));
      refs.push_back({"isle" + std::to_string(g), "O" + std::to_string(m)});
    }
    int base = g * kPerIsland;
    for (int i = 0; i < kPerIsland; ++i) {
      for (int j = i + 1; j < kPerIsland; ++j) {
        batch.push_back(
            Assertion{refs[base + i], refs[base + j],
                      TypeFor(Classify(sets[base + i], sets[base + j]))});
      }
    }
  }
  std::shuffle(batch.begin(), batch.end(), rng);

  common::ThreadPool pool(3);
  AssertionStore parallel;
  ASSERT_TRUE(parallel.AssertBatch(batch, &pool).ok());
  EXPECT_GT(parallel.closure_stats().batch_parallel_runs, 0)
      << "three islands should have taken the clustered path";
  EXPECT_EQ(parallel.num_clusters(), kIslands);

  AssertionStore sequential;
  for (const Assertion& op : batch) {
    ASSERT_TRUE(sequential.Assert(op).ok());
  }
  ASSERT_EQ(parallel.user_assertions(), sequential.user_assertions());
  for (const ObjectRef& a : refs) {
    for (const ObjectRef& b : refs) {
      ASSERT_EQ(parallel.PossibleRelations(a, b),
                sequential.PossibleRelations(a, b))
          << a.ToString() << "/" << b.ToString();
      EXPECT_EQ(parallel.SupportingAssertions(a, b),
                sequential.SupportingAssertions(a, b))
          << "provenance diverged at " << a.ToString() << "/"
          << b.ToString();
    }
  }
}

}  // namespace
}  // namespace ecrint::core
