// Round-trip and invariant sweeps over generated schemas: DDL printing and
// re-parsing is lossless, validation accepts everything the generator
// emits, and the resemblance ranking obeys its documented bounds.

#include <gtest/gtest.h>

#include "core/resemblance.h"
#include "ecr/ddl_parser.h"
#include "ecr/dot_export.h"
#include "ecr/printer.h"
#include "ecr/validate.h"
#include "workload/generator.h"

namespace ecrint {
namespace {

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

workload::Workload Make(uint64_t seed) {
  workload::GeneratorConfig config;
  config.seed = seed;
  config.num_concepts = 20;
  config.num_schemas = 3;
  config.rename_noise = 0.3;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  EXPECT_TRUE(w.ok());
  return *std::move(w);
}

TEST_P(RoundTripPropertyTest, DdlRoundTripsLosslessly) {
  workload::Workload w = Make(GetParam());
  for (const std::string& name : w.schema_names) {
    const ecr::Schema& original = **w.catalog.GetSchema(name);
    std::string ddl = ecr::ToDdl(original);
    Result<ecr::Schema> reparsed = ecr::ParseSchema(ddl);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << ddl;
    EXPECT_EQ(ecr::ToDdl(*reparsed), ddl);
    // Structure counts survive.
    EXPECT_EQ(reparsed->num_objects(), original.num_objects());
    EXPECT_EQ(reparsed->num_relationships(), original.num_relationships());
    // And deep equality of attributes.
    for (ecr::ObjectId i = 0; i < original.num_objects(); ++i) {
      EXPECT_EQ(reparsed->object(i).attributes,
                original.object(i).attributes);
    }
  }
}

TEST_P(RoundTripPropertyTest, GeneratedSchemasValidateAndExport) {
  workload::Workload w = Make(GetParam());
  for (const std::string& name : w.schema_names) {
    const ecr::Schema& schema = **w.catalog.GetSchema(name);
    EXPECT_TRUE(ecr::CheckSchemaValid(schema).ok()) << name;
    std::string dot = ecr::ToDot(schema);
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
    EXPECT_FALSE(ecr::ToOutline(schema).empty());
  }
}

TEST_P(RoundTripPropertyTest, AttributeRatioBounds) {
  workload::Workload w = Make(GetParam());
  Result<core::EquivalenceMap> equivalence =
      core::EquivalenceMap::Create(w.catalog, w.schema_names);
  ASSERT_TRUE(equivalence.ok());
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    (void)equivalence->DeclareEquivalent(match.first, match.second);
  }
  Result<std::vector<core::ObjectPair>> ranked = core::RankObjectPairs(
      w.catalog, *equivalence, w.schema_names[0], w.schema_names[1],
      core::StructureKind::kObjectClass, /*include_zero=*/true);
  ASSERT_TRUE(ranked.ok());
  double previous = 1.0;
  for (const core::ObjectPair& pair : *ranked) {
    // The paper: 0.5 means every attribute of the smaller class is matched;
    // the ratio can never exceed it.
    EXPECT_GE(pair.attribute_ratio, 0.0);
    EXPECT_LE(pair.attribute_ratio, 0.5);
    EXPECT_LE(pair.attribute_ratio, previous);  // descending order
    previous = pair.attribute_ratio;
    EXPECT_LE(pair.equivalent_attributes, pair.smaller_attribute_count)
        << pair.first.ToString() << "/" << pair.second.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

}  // namespace
}  // namespace ecrint
