// Property tests for phase 4 over generated workloads: for any consistent
// DDA input the integrator must produce a structurally valid ECR schema
// whose lattice honours every assertion, with complete mappings and
// faithful attribute provenance. Also checks the binary ladder agrees with
// the n-ary driver on lattice shape.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/integrator.h"
#include "core/nary.h"
#include "ecr/validate.h"
#include "workload/generator.h"

namespace ecrint::core {
namespace {

struct Prepared {
  workload::Workload workload;
  EquivalenceMap equivalence;
  AssertionStore assertions;
};

Prepared Prepare(uint64_t seed, int schemas, double noise) {
  workload::GeneratorConfig config;
  config.seed = seed;
  config.num_concepts = 14;
  config.num_schemas = schemas;
  config.rename_noise = noise;
  config.partial_extent = 0.5;
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  EXPECT_TRUE(w.ok());
  Result<EquivalenceMap> equivalence =
      EquivalenceMap::Create(w->catalog, w->schema_names);
  EXPECT_TRUE(equivalence.ok());
  for (const workload::TrueAttributeMatch& match : w->attribute_matches) {
    (void)equivalence->DeclareEquivalent(match.first, match.second);
  }
  AssertionStore assertions;
  for (const workload::TrueObjectRelation& relation : w->object_relations) {
    Result<ConflictReport> r =
        assertions.Assert(relation.first, relation.second,
                          relation.assertion);
    EXPECT_TRUE(r.ok()) << r.status();
  }
  return {*std::move(w), *std::move(equivalence), std::move(assertions)};
}

class IntegratorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntegratorPropertyTest, ResultIsValidAndHonoursAssertions) {
  Prepared p = Prepare(GetParam(), 3, 0.25);
  Result<IntegrationResult> result =
      Integrate(p.workload.catalog, p.workload.schema_names, p.equivalence,
                p.assertions);
  ASSERT_TRUE(result.ok()) << result.status();
  const ecr::Schema& s = result->schema;

  // (1) structural validity.
  EXPECT_TRUE(ecr::CheckSchemaValid(s).ok());

  // (2) every component structure maps to an existing integrated structure.
  std::map<ObjectRef, std::string> target_of;
  for (const StructureMapping& mapping : result->mappings) {
    target_of[mapping.source] = mapping.target;
    if (mapping.kind == StructureKind::kObjectClass) {
      EXPECT_NE(s.FindObject(mapping.target), ecr::kNoObject)
          << mapping.target;
    } else {
      EXPECT_GE(s.FindRelationship(mapping.target), 0) << mapping.target;
    }
    // (3) attribute mappings land on real attributes of real structures.
    for (const AttributeMapping& attribute : mapping.attributes) {
      ecr::ObjectId owner = s.FindObject(attribute.target_owner);
      bool found = false;
      if (owner != ecr::kNoObject) {
        for (const ecr::Attribute& a : s.object(owner).attributes) {
          found |= a.name == attribute.target_attribute;
        }
      } else {
        ecr::RelationshipId rel = s.FindRelationship(attribute.target_owner);
        ASSERT_GE(rel, 0) << attribute.target_owner;
        for (const ecr::Attribute& a : s.relationship(rel).attributes) {
          found |= a.name == attribute.target_attribute;
        }
      }
      EXPECT_TRUE(found) << attribute.target_owner << "."
                         << attribute.target_attribute;
    }
  }

  // (4) the lattice honours every ground-truth assertion.
  for (const workload::TrueObjectRelation& relation :
       p.workload.object_relations) {
    ASSERT_TRUE(target_of.count(relation.first));
    ASSERT_TRUE(target_of.count(relation.second));
    ecr::ObjectId a = s.FindObject(target_of[relation.first]);
    ecr::ObjectId b = s.FindObject(target_of[relation.second]);
    ASSERT_NE(a, ecr::kNoObject);
    ASSERT_NE(b, ecr::kNoObject);
    switch (relation.assertion) {
      case AssertionType::kEquals:
        EXPECT_EQ(a, b) << relation.first.ToString() << " = "
                        << relation.second.ToString();
        break;
      case AssertionType::kContains:
        EXPECT_TRUE(b == a || s.HasAncestor(b, a))
            << relation.first.ToString() << " contains "
            << relation.second.ToString();
        break;
      case AssertionType::kContainedIn:
        EXPECT_TRUE(a == b || s.HasAncestor(a, b));
        break;
      case AssertionType::kMayBe:
      case AssertionType::kDisjointIntegrable: {
        // Both must share a common generalization.
        std::set<ecr::ObjectId> ancestors;
        std::vector<ecr::ObjectId> stack = {a};
        while (!stack.empty()) {
          ecr::ObjectId node = stack.back();
          stack.pop_back();
          if (!ancestors.insert(node).second) continue;
          for (ecr::ObjectId parent : s.object(node).parents) {
            stack.push_back(parent);
          }
        }
        bool shared = false;
        stack = {b};
        std::set<ecr::ObjectId> seen;
        while (!stack.empty() && !shared) {
          ecr::ObjectId node = stack.back();
          stack.pop_back();
          if (!seen.insert(node).second) continue;
          shared |= ancestors.count(node) > 0;
          for (ecr::ObjectId parent : s.object(node).parents) {
            stack.push_back(parent);
          }
        }
        EXPECT_TRUE(shared) << relation.first.ToString() << " ~ "
                            << relation.second.ToString();
        break;
      }
      case AssertionType::kDisjointNonintegrable:
        break;  // nothing to honour
    }
  }

  // (5) derived attributes' components really exist in their source
  // schemas.
  for (const DerivedAttributeInfo& info : result->derived_attributes) {
    EXPECT_GE(info.components.size(), 2u);
    for (const ecr::AttributePath& component : info.components) {
      Result<const ecr::Schema*> source =
          p.workload.catalog.GetSchema(component.schema);
      ASSERT_TRUE(source.ok());
      ecr::ObjectId id = (*source)->FindObject(component.object);
      bool found = false;
      if (id != ecr::kNoObject) {
        for (const ecr::Attribute& a : (*source)->object(id).attributes) {
          found |= a.name == component.attribute;
        }
      }
      EXPECT_TRUE(found) << component.ToString();
    }
  }
}

TEST_P(IntegratorPropertyTest, BinaryLadderAgreesOnLatticeShape) {
  // Four schemas: the ladder re-seeds each intermediate result, which is
  // where D_-generalization pairs over one class once tripped the
  // entity-disjointness seed (regression).
  Prepared p = Prepare(GetParam(), 4, 0.0);
  Result<IntegrationResult> nary =
      Integrate(p.workload.catalog, p.workload.schema_names, p.equivalence,
                p.assertions);
  ASSERT_TRUE(nary.ok()) << nary.status();
  Result<IntegrationResult> ladder = IntegrateBinaryLadder(
      p.workload.catalog, p.workload.schema_names, p.equivalence,
      p.assertions);
  ASSERT_TRUE(ladder.ok()) << ladder.status();

  EXPECT_TRUE(ecr::CheckSchemaValid(ladder->schema).ok());
  // Same merge structure: every pair of component structures lands on the
  // same integrated node in one driver iff it does in the other.
  auto targets = [](const IntegrationResult& result) {
    std::map<ObjectRef, std::string> out;
    for (const StructureMapping& mapping : result.mappings) {
      out[mapping.source] = mapping.target;
    }
    return out;
  };
  std::map<ObjectRef, std::string> nt = targets(*nary);
  std::map<ObjectRef, std::string> lt = targets(*ladder);
  ASSERT_EQ(nt.size(), lt.size());
  for (const auto& [a, ta] : nt) {
    for (const auto& [b, tb] : nt) {
      EXPECT_EQ(ta == tb, lt.at(a) == lt.at(b))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegratorPropertyTest,
                         ::testing::Values(3, 17, 42, 99, 1234));

}  // namespace
}  // namespace ecrint::core
