// The Engine's structured diagnostics and dirty tracking: assertion
// conflicts surface through diagnostics() with the Screen-9 derivation
// chain, repeated Integrate calls hit the result cache, schema edits
// invalidate it, and the incremental path reproduces the full pipeline's
// result on the paper's university example.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ecr/builder.h"
#include "ecr/printer.h"

namespace ecrint::engine {
namespace {

using core::AssertionType;
using core::ObjectRef;
using ecr::Domain;
using ecr::SchemaBuilder;

int64_t Counter(const Engine& engine, const std::string& phase,
                const std::string& counter) {
  auto it = engine.trace().phases().find(phase);
  if (it == engine.trace().phases().end()) return 0;
  auto cit = it->second.counters.find(counter);
  return cit == it->second.counters.end() ? 0 : cit->second;
}

// The paper's university session (Figures 3-5, Screens 6-12) loaded into an
// Engine: schemas sc1/sc2, the DDA's attribute equivalences, and the Screen
// 8 answers.
Engine UniversityEngine() {
  Engine engine;
  SchemaBuilder b1("sc1");
  b1.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b1.Entity("Department").Attr("Dname", Domain::Char(), true);
  b1.Relationship("Majors", {{"Student", 1, 1, ""},
                             {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(engine.AddSchema(*b1.Build()).ok());

  SchemaBuilder b2("sc2");
  b2.Entity("Grad_student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real())
      .Attr("Support_type", Domain::Char());
  b2.Entity("Faculty")
      .Attr("Name", Domain::Char(), true)
      .Attr("Rank", Domain::Char());
  b2.Entity("Department").Attr("Dname", Domain::Char(), true);
  b2.Relationship("Study", {{"Grad_student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  b2.Relationship("Works", {{"Faculty", 1, 1, ""},
                            {"Department", 1, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(engine.AddSchema(*b2.Build()).ok());

  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad_student", "GPA"})
                  .ok());
  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Department", "Dname"},
                                     {"sc2", "Department", "Dname"})
                  .ok());

  EXPECT_TRUE(engine
                  .AssertRelation({"sc1", "Department"}, {"sc2", "Department"},
                                  AssertionType::kEquals)
                  .ok());
  EXPECT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Grad_student"},
                                  AssertionType::kContains)
                  .ok());
  EXPECT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Faculty"},
                                  AssertionType::kDisjointIntegrable)
                  .ok());
  return engine;
}

// Screen 9's scenario: Instructor ⊆ Grad_student and Grad_student ⊆ Student
// derive Instructor ⊆ Student; asserting the pair disjoint must be rejected
// with the derivation chain attached to the diagnostic.
TEST(EngineDiagnosticsTest, ConflictCarriesScreen9DerivationChain) {
  Engine engine;
  const ObjectRef instructor{"sc3", "Instructor"};
  const ObjectRef grad{"sc4", "Grad_student"};
  const ObjectRef student{"sc4", "Student"};
  ASSERT_TRUE(
      engine.AssertRelation(instructor, grad, AssertionType::kContainedIn)
          .ok());
  ASSERT_TRUE(
      engine.AssertRelation(grad, student, AssertionType::kContainedIn).ok());

  Result<core::ConflictReport> rejected = engine.AssertRelation(
      instructor, student, AssertionType::kDisjointNonintegrable);
  ASSERT_FALSE(rejected.ok());
  ASSERT_EQ(engine.diagnostics().size(), 1u);
  const Diagnostic& d = engine.diagnostics().back();

  EXPECT_EQ(d.code, "assertion-conflict");
  EXPECT_EQ(d.severity, Severity::kError);
  // The free text stays what the legacy screens printed.
  EXPECT_EQ(d.message, rejected.status().message());
  // The structures in conflict, machine-readable.
  ASSERT_EQ(d.objects.size(), 2u);
  EXPECT_TRUE(d.objects[0] == instructor);
  EXPECT_TRUE(d.objects[1] == student);
  // Line 1 of the screen: the derived constraint; lines 3-4: the user
  // assertions whose composition supports it.
  ASSERT_EQ(d.derivation.size(), 3u);
  EXPECT_NE(d.derivation[0].find("derived constraint"), std::string::npos)
      << d.derivation[0];
  EXPECT_NE(d.derivation[0].find("sc3.Instructor / sc4.Student"),
            std::string::npos)
      << d.derivation[0];
  EXPECT_NE(d.derivation[1].find("sc3.Instructor contained in "
                                 "sc4.Grad_student"),
            std::string::npos)
      << d.derivation[1];
  EXPECT_NE(d.derivation[2].find("sc4.Grad_student contained in "
                                 "sc4.Student"),
            std::string::npos)
      << d.derivation[2];

  // Counters record the rejection, and the failed assert left no trace in
  // the store (Assert is transactional).
  EXPECT_EQ(Counter(engine, "assert", "conflicts"), 1);
  EXPECT_EQ(engine.assertions().user_assertions().size(), 2u);

  engine.ClearDiagnostics();
  EXPECT_TRUE(engine.diagnostics().empty());
}

TEST(EngineDiagnosticsTest, ToStringFormatsSeverityCodeAndDerivation) {
  Diagnostic d;
  d.code = "assertion-conflict";
  d.severity = Severity::kError;
  d.message = "cannot do that";
  d.derivation = {"first step", "second step"};
  EXPECT_EQ(d.ToString(),
            "ERROR assertion-conflict: cannot do that"
            "\n    first step"
            "\n    second step");
  EXPECT_STREQ(SeverityName(Severity::kWarning), "WARNING");
  EXPECT_STREQ(SeverityName(Severity::kInfo), "INFO");
}

TEST(EngineCacheTest, RepeatedIntegrateHitsTheResultCache) {
  Engine engine = UniversityEngine();
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  EXPECT_EQ(Counter(engine, "integrate", "full_rebuilds"), 1);
  EXPECT_EQ(Counter(engine, "integrate", "cache_hits"), 0);

  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  EXPECT_EQ(Counter(engine, "integrate", "full_rebuilds"), 1);
  EXPECT_EQ(Counter(engine, "integrate", "cache_hits"), 1);
}

TEST(EngineCacheTest, SchemaEditInvalidatesTheResultCache) {
  Engine engine = UniversityEngine();
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  // Touching the catalog through the mutable accessor marks the schemas
  // dirty; the next Integrate must rebuild instead of serving the cache.
  (void)engine.MutableCatalog();
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  EXPECT_EQ(Counter(engine, "integrate", "cache_hits"), 0);
  EXPECT_EQ(Counter(engine, "integrate", "full_rebuilds"), 2);
}

TEST(EngineIncrementalTest, IncrementalEditMatchesFullPipeline) {
  Engine engine = UniversityEngine();
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());

  // Retract the last Screen 8 answer, integrate (re-seeds the closure
  // cache), then re-assert it: the final Integrate may only extend the
  // cached closure by the one appended assertion.
  int last =
      static_cast<int>(engine.assertions().user_assertions().size()) - 1;
  core::Assertion edit = engine.assertions().user_assertions()[last];
  ASSERT_TRUE(engine.RetractRelation(last).ok());
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  ASSERT_TRUE(engine.AssertRelation(edit.first, edit.second, edit.type).ok());
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  EXPECT_GE(Counter(engine, "integrate", "incremental_reuses"), 1);

  Engine fresh = UniversityEngine();
  ASSERT_TRUE(fresh.Integrate({"sc1", "sc2"}).ok());

  ASSERT_TRUE(engine.integration().has_value());
  ASSERT_TRUE(fresh.integration().has_value());
  EXPECT_EQ(ecr::ToOutline(engine.integration()->schema),
            ecr::ToOutline(fresh.integration()->schema));
  std::map<ObjectRef, std::string> incremental_targets;
  for (const core::StructureMapping& m : engine.integration()->mappings) {
    incremental_targets[m.source] = m.target;
  }
  std::map<ObjectRef, std::string> fresh_targets;
  for (const core::StructureMapping& m : fresh.integration()->mappings) {
    fresh_targets[m.source] = m.target;
  }
  EXPECT_EQ(incremental_targets, fresh_targets);
}

TEST(EngineIncrementalTest, AssertAfterIntegrateExtendsSeededClosure) {
  Engine engine = UniversityEngine();
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  // The closure cache is seeded; the next compatible assertion must be
  // folded into it eagerly (delta-incremental) rather than invalidating it.
  ASSERT_TRUE(engine
                  .AssertRelation({"sc1", "Department"}, {"sc2", "Faculty"},
                                  AssertionType::kDisjointNonintegrable)
                  .ok());
  EXPECT_EQ(Counter(engine, "assert", "seeded_extended"), 1);
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  EXPECT_GE(Counter(engine, "integrate", "incremental_reuses"), 1);

  // A rejected assertion must neither extend nor poison the seeded cache.
  ASSERT_FALSE(engine
                   .AssertRelation({"sc1", "Department"}, {"sc2", "Faculty"},
                                   AssertionType::kEquals)
                   .ok());
  EXPECT_EQ(Counter(engine, "assert", "seeded_extended"), 1);
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
}

TEST(EngineIncrementalTest, ClosureTotalsExposeKernelCounters) {
  Engine engine = UniversityEngine();
  core::ClosureStats before = engine.ClosureTotals();
  EXPECT_GT(before.worklist_pops, 0);  // Screen-8 answers already asserted
  ASSERT_TRUE(engine.Integrate({"sc1", "sc2"}).ok());
  core::ClosureStats after = engine.ClosureTotals();
  // Integration seeding runs through the same kernel, so the lifetime
  // totals (assertion store + seeded closure cache) only grow.
  EXPECT_GE(after.worklist_pops, before.worklist_pops);
  EXPECT_GE(after.row_compositions, before.row_compositions);
  EXPECT_GT(engine.ClosureClusterCount(), 0);
}

TEST(EngineIncrementalTest, RetractDropsTheAssertionAndItsConsequences) {
  Engine engine = UniversityEngine();
  size_t before = engine.assertions().user_assertions().size();
  ASSERT_TRUE(engine.RetractRelation(0).ok());
  EXPECT_EQ(engine.assertions().user_assertions().size(), before - 1);
  EXPECT_FALSE(engine.RetractRelation(99).ok());
}

// Replaying a mutation the engine has already absorbed must leave the
// stamp untouched: the service's snapshot publication and response cache
// both key on stamp/part identity, so a no-op write that bumped a
// generation would needlessly evict every cached read.
TEST(EngineIdempotencyTest, DuplicateEquivalenceLeavesStampUnchanged) {
  Engine engine = UniversityEngine();
  EngineStamp before = engine.Stamp();
  ASSERT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "Name"},
                                     {"sc2", "Grad_student", "Name"})
                  .ok());
  EXPECT_EQ(engine.Stamp(), before);
}

TEST(EngineIdempotencyTest, DuplicateAssertionLeavesStampUnchanged) {
  Engine engine = UniversityEngine();
  EngineStamp before = engine.Stamp();
  Result<core::ConflictReport> replay =
      engine.AssertRelation({"sc1", "Student"}, {"sc2", "Grad_student"},
                            AssertionType::kContains);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(engine.Stamp(), before);
  EXPECT_EQ(engine.assertions().user_assertions().size(), 3u);
}

TEST(EngineIdempotencyTest, NewAssertionStillAdvancesTheStamp) {
  Engine engine = UniversityEngine();
  EngineStamp before = engine.Stamp();
  ASSERT_TRUE(engine
                  .AssertRelation({"sc2", "Faculty"}, {"sc2", "Grad_student"},
                                  AssertionType::kDisjointIntegrable)
                  .ok());
  EXPECT_NE(engine.Stamp(), before);
}

}  // namespace
}  // namespace ecrint::engine
