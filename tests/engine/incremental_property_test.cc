// Property: over generated workloads and random edit sequences, an Engine
// with incremental recomputation produces the same integration result as
// one that always rebuilds from scratch. This is the confluence claim the
// dirty tracking rests on — extending a cached closure by the appended
// assertions reaches the same fixpoint as replaying the full log.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

#include "ecr/printer.h"
#include "engine/engine.h"
#include "workload/generator.h"

namespace ecrint::engine {
namespace {

workload::Workload Make(uint64_t seed) {
  workload::GeneratorConfig config;
  config.seed = seed;
  config.num_concepts = 12;
  config.num_schemas = 2;
  config.rename_noise = 0.0;  // every ground-truth equivalence declares
  Result<workload::Workload> w = workload::GenerateWorkload(config);
  EXPECT_TRUE(w.ok()) << w.status();
  return *std::move(w);
}

Engine Load(const workload::Workload& w, bool incremental) {
  EngineOptions options;
  options.incremental = incremental;
  Engine engine(options);
  for (const std::string& name : w.schema_names) {
    Result<const ecr::Schema*> schema = w.catalog.GetSchema(name);
    EXPECT_TRUE(schema.ok());
    EXPECT_TRUE(engine.AddSchema(**schema).ok());
  }
  for (const workload::TrueAttributeMatch& match : w.attribute_matches) {
    EXPECT_TRUE(engine.AssertEquivalence(match.first, match.second).ok());
  }
  for (const workload::TrueObjectRelation& relation : w.object_relations) {
    EXPECT_TRUE(engine
                    .AssertRelation(relation.first, relation.second,
                                    relation.assertion)
                    .ok());
  }
  return engine;
}

std::map<core::ObjectRef, std::string> Targets(
    const core::IntegrationResult& result) {
  std::map<core::ObjectRef, std::string> out;
  for (const core::StructureMapping& mapping : result.mappings) {
    out[mapping.source] = mapping.target;
  }
  return out;
}

// Integrates both engines and requires identical results: same integrated
// schema (by outline) and same source -> target structure mapping.
void ExpectSameIntegration(Engine& incremental, Engine& full,
                           const std::string& context) {
  Result<const core::IntegrationResult*> a = incremental.Integrate();
  Result<const core::IntegrationResult*> b = full.Integrate();
  ASSERT_TRUE(a.ok()) << context << ": " << a.status();
  ASSERT_TRUE(b.ok()) << context << ": " << b.status();
  EXPECT_EQ(ecr::ToOutline((*a)->schema), ecr::ToOutline((*b)->schema))
      << context;
  EXPECT_EQ(Targets(**a), Targets(**b)) << context;
}

int64_t IncrementalReuses(const Engine& engine) {
  auto it = engine.trace().phases().find("integrate");
  if (it == engine.trace().phases().end()) return 0;
  auto cit = it->second.counters.find("incremental_reuses");
  return cit == it->second.counters.end() ? 0 : cit->second;
}

class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalPropertyTest, EditSequenceMatchesFullRebuild) {
  workload::Workload w = Make(GetParam());
  Engine incremental = Load(w, /*incremental=*/true);
  Engine full = Load(w, /*incremental=*/false);
  ExpectSameIntegration(incremental, full, "initial");

  std::mt19937_64 rng(GetParam() * 7919 + 1);
  for (int round = 0; round < 6; ++round) {
    std::string context = "round " + std::to_string(round);
    if (round % 3 == 2 && !w.attribute_matches.empty()) {
      // Equivalence edit: retract one declared pair and re-declare it. The
      // equivalence generation bumps, so the incremental engine must fall
      // back to a full rebuild — and still agree.
      const workload::TrueAttributeMatch& match =
          w.attribute_matches[rng() % w.attribute_matches.size()];
      ASSERT_TRUE(incremental.RetractEquivalence(match.first).ok());
      ASSERT_TRUE(full.RetractEquivalence(match.first).ok());
      ExpectSameIntegration(incremental, full, context + " (retracted eq)");
      ASSERT_TRUE(
          incremental.AssertEquivalence(match.first, match.second).ok());
      ASSERT_TRUE(full.AssertEquivalence(match.first, match.second).ok());
    } else {
      // Assertion edit: retract a random Screen 8 answer (non-append
      // change, drops the seeded closure), integrate, then re-assert it
      // (append — the incremental engine extends the cached closure).
      int n =
          static_cast<int>(incremental.assertions().user_assertions().size());
      ASSERT_GT(n, 0);
      int index = static_cast<int>(rng() % static_cast<uint64_t>(n));
      core::Assertion edit =
          incremental.assertions().user_assertions()[index];
      ASSERT_TRUE(incremental.RetractRelation(index).ok());
      ASSERT_TRUE(full.RetractRelation(index).ok());
      ExpectSameIntegration(incremental, full, context + " (retracted)");
      ASSERT_TRUE(
          incremental.AssertRelation(edit.first, edit.second, edit.type)
              .ok());
      ASSERT_TRUE(
          full.AssertRelation(edit.first, edit.second, edit.type).ok());
    }
    ExpectSameIntegration(incremental, full, context + " (restored)");
  }

  // The agreement above must not be vacuous: the incremental engine has to
  // have taken its fast path, and the from-scratch engine never does.
  EXPECT_GE(IncrementalReuses(incremental), 1);
  EXPECT_EQ(IncrementalReuses(full), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Values(3, 17, 42, 99, 1234));

}  // namespace
}  // namespace ecrint::engine
