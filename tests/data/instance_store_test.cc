#include "data/instance_store.h"

#include <gtest/gtest.h>

#include "ecr/builder.h"

namespace ecrint::data {
namespace {

using ecr::Domain;
using ecr::SchemaBuilder;

ecr::Schema University() {
  SchemaBuilder b("uni");
  b.Entity("Student")
      .Attr("Name", Domain::Char(), true)
      .Attr("GPA", Domain::Real());
  b.Entity("Department").Attr("Dname", Domain::Char(), true);
  b.Category("Grad_student", {"Student"})
      .Attr("Support_type", Domain::Char());
  b.Relationship("Majors", {{"Student", 1, 1, ""},
                            {"Department", 0, SchemaBuilder::kN, ""}});
  return *b.Build();
}

class InstanceStoreTest : public ::testing::Test {
 protected:
  InstanceStoreTest() : schema_(University()), store_(&schema_) {}
  ecr::Schema schema_;
  InstanceStore store_;
};

TEST_F(InstanceStoreTest, InsertAndReadBack) {
  Result<EntityId> ann = store_.Insert(
      "Student", {{"Name", Value::Str("Ann")}, {"GPA", Value::Real(3.9)}});
  ASSERT_TRUE(ann.ok()) << ann.status();
  EXPECT_EQ(store_.num_entities(), 1);
  EXPECT_TRUE(store_.IsMemberOf("Student", *ann));
  EXPECT_EQ(*store_.GetValue(*ann, "Student", "Name"), Value::Str("Ann"));
  EXPECT_EQ(*store_.GetValue(*ann, "Student", "GPA"), Value::Real(3.9));
}

TEST_F(InstanceStoreTest, MissingValuesAreNull) {
  EntityId ann = *store_.Insert("Student", {{"Name", Value::Str("Ann")}});
  EXPECT_EQ(*store_.GetValue(ann, "Student", "GPA"), Value::Null());
}

TEST_F(InstanceStoreTest, InsertValidation) {
  // Unknown class / attribute, type mismatch, missing key, duplicate key.
  EXPECT_FALSE(store_.Insert("Ghost", {}).ok());
  EXPECT_FALSE(
      store_.Insert("Student", {{"Ghost", Value::Int(1)}}).ok());
  EXPECT_FALSE(
      store_.Insert("Student", {{"Name", Value::Int(5)}}).ok());
  EXPECT_EQ(store_.Insert("Student", {{"GPA", Value::Real(3.0)}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // no key
  ASSERT_TRUE(store_.Insert("Student", {{"Name", Value::Str("Ann")}}).ok());
  EXPECT_EQ(store_.Insert("Student", {{"Name", Value::Str("Ann")}})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Inserting into a category directly is refused.
  EXPECT_EQ(store_.Insert("Grad_student", {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InstanceStoreTest, CategoryMembershipAndInheritedValues) {
  EntityId ann = *store_.Insert(
      "Student", {{"Name", Value::Str("Ann")}, {"GPA", Value::Real(3.9)}});
  ASSERT_TRUE(store_.AddToCategory("Grad_student", ann,
                                   {{"Support_type", Value::Str("RA")}})
                  .ok());
  EXPECT_TRUE(store_.IsMemberOf("Grad_student", ann));
  // Own attribute of the category.
  EXPECT_EQ(*store_.GetValue(ann, "Grad_student", "Support_type"),
            Value::Str("RA"));
  // Inherited attribute resolves up the IS-A chain.
  EXPECT_EQ(*store_.GetValue(ann, "Grad_student", "Name"),
            Value::Str("Ann"));
  // Non-members cannot join a category they have no parent membership for.
  EntityId dept = *store_.Insert("Department",
                                 {{"Dname", Value::Str("CS")}});
  EXPECT_EQ(store_.AddToCategory("Grad_student", dept, {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InstanceStoreTest, GetValueGuards) {
  EntityId ann = *store_.Insert("Student", {{"Name", Value::Str("Ann")}});
  EXPECT_FALSE(store_.GetValue(ann, "Student", "Ghost").ok());
  EXPECT_FALSE(store_.GetValue(ann, "Department", "Dname").ok());
  EXPECT_FALSE(store_.GetValue(ann, "Grad_student", "Name").ok());
}

TEST_F(InstanceStoreTest, RelationshipsConnectMembers) {
  EntityId ann = *store_.Insert("Student", {{"Name", Value::Str("Ann")}});
  EntityId cs = *store_.Insert("Department", {{"Dname", Value::Str("CS")}});
  ASSERT_TRUE(store_.Connect("Majors", {ann, cs}).ok());
  std::vector<std::vector<EntityId>> instances = store_.InstancesOf("Majors");
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0], (std::vector<EntityId>{ann, cs}));
  // Arity and membership are enforced.
  EXPECT_FALSE(store_.Connect("Majors", {ann}).ok());
  EXPECT_FALSE(store_.Connect("Majors", {cs, ann}).ok());  // wrong classes
  EXPECT_FALSE(store_.Connect("Ghost", {ann, cs}).ok());
}

TEST_F(InstanceStoreTest, IntegrityCleanStore) {
  EntityId ann = *store_.Insert("Student", {{"Name", Value::Str("Ann")}});
  EntityId cs = *store_.Insert("Department", {{"Dname", Value::Str("CS")}});
  ASSERT_TRUE(store_.Connect("Majors", {ann, cs}).ok());
  EXPECT_TRUE(store_.CheckIntegrity().empty());
}

TEST_F(InstanceStoreTest, IntegrityFlagsCardinalityViolations) {
  // Ann majors in nothing: violates Student [1,1].
  ASSERT_TRUE(store_.Insert("Student", {{"Name", Value::Str("Ann")}}).ok());
  std::vector<std::string> issues = store_.CheckIntegrity();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("participates 0x"), std::string::npos);
  EXPECT_NE(issues[0].find("[1,1]"), std::string::npos);
}

TEST_F(InstanceStoreTest, IntegrityFlagsDoubleMajors) {
  EntityId ann = *store_.Insert("Student", {{"Name", Value::Str("Ann")}});
  EntityId cs = *store_.Insert("Department", {{"Dname", Value::Str("CS")}});
  EntityId ee = *store_.Insert("Department", {{"Dname", Value::Str("EE")}});
  ASSERT_TRUE(store_.Connect("Majors", {ann, cs}).ok());
  ASSERT_TRUE(store_.Connect("Majors", {ann, ee}).ok());
  std::vector<std::string> issues = store_.CheckIntegrity();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("participates 2x"), std::string::npos);
}

TEST_F(InstanceStoreTest, MembersOfSortsAndScopes) {
  EntityId a = *store_.Insert("Student", {{"Name", Value::Str("A")}});
  EntityId b = *store_.Insert("Student", {{"Name", Value::Str("B")}});
  ASSERT_TRUE(store_.AddToCategory("Grad_student", b, {}).ok());
  EXPECT_EQ(store_.MembersOf("Student"), (std::vector<EntityId>{a, b}));
  EXPECT_EQ(store_.MembersOf("Grad_student"), std::vector<EntityId>{b});
  EXPECT_TRUE(store_.MembersOf("Ghost").empty());
}

}  // namespace
}  // namespace ecrint::data
