#include "data/value.h"

#include <gtest/gtest.h>

namespace ecrint::data {
namespace {

using ecr::Domain;

TEST(ValueTest, DefaultIsNull) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, ToStringRendersByType) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Real(3.14159).ToString(), "3.14");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Str("abc").ToString(), "'abc'");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_FALSE(Value::Int(7) == Value::Int(8));
  EXPECT_FALSE(Value::Int(7) == Value::Real(7.0));  // different types
  EXPECT_LT(Value::Int(7), Value::Int(8));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, MatchesBaseTypes) {
  EXPECT_TRUE(Value::Int(5).Matches(Domain::Int()));
  EXPECT_FALSE(Value::Int(5).Matches(Domain::Real()));
  EXPECT_TRUE(Value::Real(0.5).Matches(Domain::Real()));
  EXPECT_TRUE(Value::Bool(false).Matches(Domain::Bool()));
  EXPECT_TRUE(Value::Str("x").Matches(Domain::Char()));
  EXPECT_TRUE(Value::Str("2026-07-06").Matches(Domain::Date()));
  EXPECT_FALSE(Value::Str("x").Matches(Domain::Int()));
}

TEST(ValueTest, NullMatchesEverything) {
  for (const Domain& d : {Domain::Int(), Domain::Char(), Domain::Bool()}) {
    EXPECT_TRUE(Value::Null().Matches(d));
  }
}

TEST(ValueTest, MatchesRangeAndLengthBounds) {
  EXPECT_TRUE(Value::Int(50).Matches(Domain::IntRange(0, 100)));
  EXPECT_FALSE(Value::Int(101).Matches(Domain::IntRange(0, 100)));
  EXPECT_FALSE(Value::Int(-1).Matches(Domain::IntRange(0, 100)));
  EXPECT_TRUE(Value::Real(0.5).Matches(Domain::RealRange(0, 1)));
  EXPECT_FALSE(Value::Real(1.5).Matches(Domain::RealRange(0, 1)));
  EXPECT_TRUE(Value::Str("abc").Matches(Domain::CharN(3)));
  EXPECT_FALSE(Value::Str("abcd").Matches(Domain::CharN(3)));
}

}  // namespace
}  // namespace ecrint::data
