#include "data/federation.h"

#include <gtest/gtest.h>

#include "core/integrator.h"
#include "ecr/builder.h"

namespace ecrint::data {
namespace {

using core::AssertionStore;
using core::AssertionType;
using core::EquivalenceMap;
using core::FanoutPlan;
using core::IntegrationResult;
using core::Request;
using ecr::Domain;
using ecr::SchemaBuilder;

// Two component databases: hr knows every employee; payroll knows the
// managers (a subset) with their bonus.
struct Fixture {
  ecr::Catalog catalog;
  IntegrationResult result;
  ecr::Schema hr_schema;
  ecr::Schema payroll_schema;
};

Fixture Make() {
  Fixture f;
  SchemaBuilder b1("hr");
  b1.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char());
  EXPECT_TRUE(f.catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("payroll");
  b2.Entity("Manager")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Bonus", Domain::Real());
  EXPECT_TRUE(f.catalog.AddSchema(*b2.Build()).ok());

  EquivalenceMap equivalence =
      *EquivalenceMap::Create(f.catalog, {"hr", "payroll"});
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"hr", "Employee", "Ssn"},
                                     {"payroll", "Manager", "Ssn"})
                  .ok());
  AssertionStore assertions;
  EXPECT_TRUE(assertions
                  .Assert({"payroll", "Manager"}, {"hr", "Employee"},
                          AssertionType::kContainedIn)
                  .ok());
  f.result = *core::Integrate(f.catalog, {"hr", "payroll"}, equivalence,
                              assertions);
  f.hr_schema = **f.catalog.GetSchema("hr");
  f.payroll_schema = **f.catalog.GetSchema("payroll");
  return f;
}

TEST(FederationTest, FanoutRetrievesAcrossComponents) {
  Fixture f = Make();
  InstanceStore hr(&f.hr_schema);
  InstanceStore payroll(&f.payroll_schema);
  ASSERT_TRUE(hr.Insert("Employee", {{"Ssn", Value::Int(1)},
                                     {"Name", Value::Str("Ann")}})
                  .ok());
  ASSERT_TRUE(hr.Insert("Employee", {{"Ssn", Value::Int(2)},
                                     {"Name", Value::Str("Bob")}})
                  .ok());
  ASSERT_TRUE(payroll.Insert("Manager", {{"Ssn", Value::Int(2)},
                                         {"Bonus", Value::Real(1000)}})
                  .ok());

  Request query{{"integrated", "Employee"}, {"D_Ssn", "Name"}};
  Result<FanoutPlan> plan = core::TranslateToComponents(f.result, query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<ResultSet> rows = ExecuteFanout(
      *plan, {{"hr", &hr}, {"payroll", &payroll}});
  ASSERT_TRUE(rows.ok()) << rows.status();

  // Two hr rows plus one payroll row (outer union, no dedup).
  ASSERT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(rows->columns, (std::vector<std::string>{"D_Ssn", "Name"}));
  // hr rows carry names; the payroll row has Name = null (not recorded
  // there) but a concrete Ssn.
  int nulls = 0;
  int ssn_sum = 0;
  for (size_t i = 0; i < rows->rows.size(); ++i) {
    if (rows->rows[i][1].is_null()) {
      ++nulls;
      EXPECT_EQ(rows->provenance[i], "payroll.Manager");
      EXPECT_EQ(rows->rows[i][0], Value::Int(2));
    }
    if (rows->rows[i][0] == Value::Int(1)) ssn_sum += 1;
    if (rows->rows[i][0] == Value::Int(2)) ssn_sum += 2;
  }
  EXPECT_EQ(nulls, 1);
  EXPECT_EQ(ssn_sum, 1 + 2 + 2);
}

TEST(FederationTest, CategoryQueryVisitsOnlyItsExtent) {
  Fixture f = Make();
  InstanceStore hr(&f.hr_schema);
  InstanceStore payroll(&f.payroll_schema);
  ASSERT_TRUE(payroll.Insert("Manager", {{"Ssn", Value::Int(9)},
                                         {"Bonus", Value::Real(5)}})
                  .ok());
  Request query{{"integrated", "Manager"}, {"Bonus"}};
  Result<FanoutPlan> plan = core::TranslateToComponents(f.result, query);
  ASSERT_TRUE(plan.ok());
  Result<ResultSet> rows = ExecuteFanout(
      *plan, {{"hr", &hr}, {"payroll", &payroll}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value::Real(5));
  EXPECT_EQ(rows->provenance[0], "payroll.Manager");
}

TEST(FederationTest, MissingStoreIsAnError) {
  Fixture f = Make();
  InstanceStore hr(&f.hr_schema);
  Request query{{"integrated", "Employee"}, {"D_Ssn"}};
  Result<FanoutPlan> plan = core::TranslateToComponents(f.result, query);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(ExecuteFanout(*plan, {{"hr", &hr}}).ok());
}

TEST(FederationTest, ResultSetToStringTabulates) {
  ResultSet set;
  set.columns = {"A"};
  set.rows = {{Value::Int(1)}};
  set.provenance = {"x.Y"};
  EXPECT_EQ(set.ToString(), "source | A\nx.Y | 1\n");
}

}  // namespace
}  // namespace ecrint::data
