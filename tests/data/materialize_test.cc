#include "data/materialize.h"

#include <gtest/gtest.h>

#include "core/integrator.h"
#include "ecr/builder.h"

namespace ecrint::data {
namespace {

using core::AssertionStore;
using core::AssertionType;
using core::EquivalenceMap;
using core::IntegrationResult;
using ecr::Domain;
using ecr::SchemaBuilder;

// hr.Employee ⊃ payroll.Manager, hr also relates employees to departments.
struct Fixture {
  ecr::Catalog catalog;
  IntegrationResult result;
  ecr::Schema hr;
  ecr::Schema payroll;
};

Fixture Make() {
  Fixture f;
  SchemaBuilder b1("hr");
  b1.Entity("Employee")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Name", Domain::Char());
  b1.Entity("Department").Attr("Dno", Domain::Int(), true);
  b1.Relationship("Works_in", {{"Employee", 0, 1, ""},
                               {"Department", 0, SchemaBuilder::kN, ""}});
  EXPECT_TRUE(f.catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("payroll");
  b2.Entity("Manager")
      .Attr("Ssn", Domain::Int(), true)
      .Attr("Bonus", Domain::Real());
  EXPECT_TRUE(f.catalog.AddSchema(*b2.Build()).ok());

  EquivalenceMap equivalence =
      *EquivalenceMap::Create(f.catalog, {"hr", "payroll"});
  EXPECT_TRUE(equivalence
                  .DeclareEquivalent({"hr", "Employee", "Ssn"},
                                     {"payroll", "Manager", "Ssn"})
                  .ok());
  AssertionStore assertions;
  EXPECT_TRUE(assertions
                  .Assert({"payroll", "Manager"}, {"hr", "Employee"},
                          AssertionType::kContainedIn)
                  .ok());
  f.result = *core::Integrate(f.catalog, {"hr", "payroll"}, equivalence,
                              assertions);
  f.hr = **f.catalog.GetSchema("hr");
  f.payroll = **f.catalog.GetSchema("payroll");
  return f;
}

TEST(MaterializeTest, MergesEntitiesByKeyAcrossComponents) {
  Fixture f = Make();
  InstanceStore hr(&f.hr);
  InstanceStore payroll(&f.payroll);
  ASSERT_TRUE(hr.Insert("Employee", {{"Ssn", Value::Int(1)},
                                     {"Name", Value::Str("Ann")}})
                  .ok());
  ASSERT_TRUE(hr.Insert("Employee", {{"Ssn", Value::Int(2)},
                                     {"Name", Value::Str("Bob")}})
                  .ok());
  ASSERT_TRUE(payroll.Insert("Manager", {{"Ssn", Value::Int(2)},
                                         {"Bonus", Value::Real(1000)}})
                  .ok());

  Result<MaterializationResult> materialized = MaterializeIntegrated(
      f.result, {{"hr", &hr}, {"payroll", &payroll}});
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  const InstanceStore& store = *materialized->store;

  // Bob from hr and the Ssn=2 manager merged into ONE entity: only Ann and
  // Bob exist (no departments were inserted).
  EXPECT_EQ(store.num_entities(), 2);
  EXPECT_EQ(store.MembersOf("Employee").size(), 2u);
  std::vector<EntityId> managers = store.MembersOf("Manager");
  ASSERT_EQ(managers.size(), 1u);
  EntityId bob = managers[0];
  // Bob is an Employee too, carrying values from BOTH components.
  EXPECT_TRUE(store.IsMemberOf("Employee", bob));
  EXPECT_EQ(*store.GetValue(bob, "Manager", "Name"), Value::Str("Bob"));
  EXPECT_EQ(*store.GetValue(bob, "Manager", "Bonus"), Value::Real(1000));
  EXPECT_EQ(*store.GetValue(bob, "Manager", "D_Ssn"), Value::Int(2));
  EXPECT_TRUE(materialized->conflicts.empty());
  EXPECT_TRUE(store.CheckIntegrity().empty());
}

TEST(MaterializeTest, RelationshipsCarryOver) {
  Fixture f = Make();
  InstanceStore hr(&f.hr);
  InstanceStore payroll(&f.payroll);
  EntityId ann = *hr.Insert("Employee", {{"Ssn", Value::Int(1)},
                                         {"Name", Value::Str("Ann")}});
  EntityId dept = *hr.Insert("Department", {{"Dno", Value::Int(7)}});
  ASSERT_TRUE(hr.Connect("Works_in", {ann, dept}).ok());

  Result<MaterializationResult> materialized = MaterializeIntegrated(
      f.result, {{"hr", &hr}, {"payroll", &payroll}});
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  const InstanceStore& store = *materialized->store;
  std::vector<std::vector<EntityId>> links = store.InstancesOf("Works_in");
  ASSERT_EQ(links.size(), 1u);
  EXPECT_TRUE(store.IsMemberOf("Employee", links[0][0]));
  EXPECT_TRUE(store.IsMemberOf("Department", links[0][1]));
}

TEST(MaterializeTest, ValueDisagreementsReported) {
  Fixture f = Make();
  // Give payroll its own Name so both components feed the merged D_Ssn and
  // a disagreeing attribute... here: same Ssn re-inserted with a different
  // Ssn is impossible (it's the identity); instead disagree on a shared
  // attribute by equating Name with Bonus? Not comparable. Use two hr-like
  // stores via the equals assertion instead.
  ecr::Catalog catalog;
  SchemaBuilder b1("a");
  b1.Entity("P").Attr("K", Domain::Int(), true).Attr("V", Domain::Char());
  ASSERT_TRUE(catalog.AddSchema(*b1.Build()).ok());
  SchemaBuilder b2("b");
  b2.Entity("P").Attr("K", Domain::Int(), true).Attr("V", Domain::Char());
  ASSERT_TRUE(catalog.AddSchema(*b2.Build()).ok());
  EquivalenceMap equivalence = *EquivalenceMap::Create(catalog, {"a", "b"});
  ASSERT_TRUE(
      equivalence.DeclareEquivalent({"a", "P", "K"}, {"b", "P", "K"}).ok());
  ASSERT_TRUE(
      equivalence.DeclareEquivalent({"a", "P", "V"}, {"b", "P", "V"}).ok());
  AssertionStore assertions;
  ASSERT_TRUE(assertions
                  .Assert({"a", "P"}, {"b", "P"}, AssertionType::kEquals)
                  .ok());
  IntegrationResult result =
      *core::Integrate(catalog, {"a", "b"}, equivalence, assertions);

  ecr::Schema sa = **catalog.GetSchema("a");
  ecr::Schema sb = **catalog.GetSchema("b");
  InstanceStore store_a(&sa);
  InstanceStore store_b(&sb);
  ASSERT_TRUE(store_a.Insert("P", {{"K", Value::Int(1)},
                                   {"V", Value::Str("left")}})
                  .ok());
  ASSERT_TRUE(store_b.Insert("P", {{"K", Value::Int(1)},
                                   {"V", Value::Str("right")}})
                  .ok());
  Result<MaterializationResult> materialized = MaterializeIntegrated(
      result, {{"a", &store_a}, {"b", &store_b}});
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  // One merged entity; the V disagreement is reported, first writer wins.
  EXPECT_EQ(materialized->store->num_entities(), 1);
  ASSERT_EQ(materialized->conflicts.size(), 1u);
  EXPECT_NE(materialized->conflicts[0].find("disagrees"), std::string::npos);
}

TEST(MaterializeTest, MissingComponentStoreFails) {
  Fixture f = Make();
  InstanceStore hr(&f.hr);
  EXPECT_FALSE(MaterializeIntegrated(f.result, {{"hr", &hr}}).ok());
}

}  // namespace
}  // namespace ecrint::data
