#include "workload/generator.h"

#include <gtest/gtest.h>

#include "ecr/printer.h"
#include "ecr/validate.h"

namespace ecrint::workload {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  config.seed = 7;
  Result<Workload> a = GenerateWorkload(config);
  Result<Workload> b = GenerateWorkload(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->schema_names, b->schema_names);
  for (const std::string& name : a->schema_names) {
    EXPECT_EQ(ecr::ToDdl(**a->catalog.GetSchema(name)),
              ecr::ToDdl(**b->catalog.GetSchema(name)));
  }
  EXPECT_EQ(a->object_relations.size(), b->object_relations.size());
  EXPECT_EQ(a->attribute_matches.size(), b->attribute_matches.size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig a;
  a.seed = 1;
  GeneratorConfig b;
  b.seed = 2;
  Result<Workload> wa = GenerateWorkload(a);
  Result<Workload> wb = GenerateWorkload(b);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  std::string da;
  std::string db;
  for (const std::string& name : wa->schema_names) {
    da += ecr::ToDdl(**wa->catalog.GetSchema(name));
  }
  for (const std::string& name : wb->schema_names) {
    db += ecr::ToDdl(**wb->catalog.GetSchema(name));
  }
  EXPECT_NE(da, db);
}

TEST(GeneratorTest, SchemasAreValidEcr) {
  GeneratorConfig config;
  config.num_schemas = 4;
  config.num_concepts = 30;
  config.rename_noise = 0.5;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->schema_names.size(), 4u);
  for (const std::string& name : workload->schema_names) {
    Result<const ecr::Schema*> schema = workload->catalog.GetSchema(name);
    ASSERT_TRUE(schema.ok());
    EXPECT_TRUE(ecr::CheckSchemaValid(**schema).ok()) << name;
    EXPECT_GT((*schema)->num_objects(), 0) << name;
  }
}

TEST(GeneratorTest, GroundTruthRefersToRealStructures) {
  GeneratorConfig config;
  config.num_schemas = 3;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const TrueObjectRelation& relation : workload->object_relations) {
    Result<const ecr::Schema*> s1 =
        workload->catalog.GetSchema(relation.first.schema);
    Result<const ecr::Schema*> s2 =
        workload->catalog.GetSchema(relation.second.schema);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    EXPECT_NE((*s1)->FindObject(relation.first.object), ecr::kNoObject);
    EXPECT_NE((*s2)->FindObject(relation.second.object), ecr::kNoObject);
  }
  for (const TrueAttributeMatch& match : workload->attribute_matches) {
    Result<const ecr::Schema*> s1 =
        workload->catalog.GetSchema(match.first.schema);
    ASSERT_TRUE(s1.ok());
    ecr::ObjectId id = (*s1)->FindObject(match.first.object);
    ASSERT_NE(id, ecr::kNoObject);
    bool found = false;
    for (const ecr::Attribute& a : (*s1)->object(id).attributes) {
      found |= a.name == match.first.attribute;
    }
    EXPECT_TRUE(found) << match.first.ToString();
  }
}

TEST(GeneratorTest, FullCoverageMeansEveryConceptShared) {
  GeneratorConfig config;
  config.num_schemas = 2;
  config.num_concepts = 10;
  config.concept_coverage = 1.0;
  config.partial_extent = 0.0;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  // Every concept appears in both schemas with the full extent => 10 object
  // relations, all "equals".
  ASSERT_EQ(workload->object_relations.size(), 10u);
  for (const TrueObjectRelation& relation : workload->object_relations) {
    EXPECT_EQ(relation.assertion, core::AssertionType::kEquals);
  }
}

TEST(GeneratorTest, PartialExtentsYieldVariedAssertions) {
  GeneratorConfig config;
  config.num_schemas = 3;
  config.num_concepts = 40;
  config.partial_extent = 0.9;
  Result<Workload> workload = GenerateWorkload(config);
  ASSERT_TRUE(workload.ok());
  std::set<core::AssertionType> seen;
  for (const TrueObjectRelation& relation : workload->object_relations) {
    seen.insert(relation.assertion);
  }
  // With heavy partial extents at least three distinct relation kinds occur.
  EXPECT_GE(seen.size(), 3u);
}

TEST(GeneratorTest, InvalidConfigRejected) {
  GeneratorConfig config;
  config.num_concepts = 0;
  EXPECT_FALSE(GenerateWorkload(config).ok());
}

}  // namespace
}  // namespace ecrint::workload
