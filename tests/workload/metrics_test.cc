#include "workload/metrics.h"

#include <gtest/gtest.h>

namespace ecrint::workload {
namespace {

Workload TinyWorkload() {
  Workload w;
  w.schema_names = {"v1", "v2"};
  w.object_relations = {
      {{"v1", "A"}, {"v2", "A"}, core::AssertionType::kEquals},
      {{"v1", "B"}, {"v2", "B"}, core::AssertionType::kContains},
  };
  w.attribute_matches = {
      {{"v1", "A", "Id"}, {"v2", "A", "Id"}},
      {{"v1", "B", "Name"}, {"v2", "B", "Label"}},
  };
  return w;
}

TEST(MetricsTest, PerfectRankingScoresOne) {
  Workload w = TinyWorkload();
  std::vector<std::pair<core::ObjectRef, core::ObjectRef>> ranking = {
      {{"v1", "A"}, {"v2", "A"}},
      {{"v1", "B"}, {"v2", "B"}},
      {{"v1", "A"}, {"v2", "B"}},  // false pair after all true ones
  };
  RankingQuality q = EvaluateRanking(w, "v1", "v2", ranking);
  EXPECT_EQ(q.true_pairs, 2);
  EXPECT_DOUBLE_EQ(q.precision_at_k, 1.0);
  EXPECT_DOUBLE_EQ(q.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(q.average_precision, 1.0);
}

TEST(MetricsTest, ReversedRankingScoresLower) {
  Workload w = TinyWorkload();
  std::vector<std::pair<core::ObjectRef, core::ObjectRef>> ranking = {
      {{"v1", "A"}, {"v2", "B"}},  // false first
      {{"v1", "B"}, {"v2", "A"}},  // false
      {{"v1", "A"}, {"v2", "A"}},  // true at rank 3
      {{"v1", "B"}, {"v2", "B"}},  // true at rank 4
  };
  RankingQuality q = EvaluateRanking(w, "v1", "v2", ranking);
  EXPECT_DOUBLE_EQ(q.precision_at_k, 0.0);
  // AP = (1/3 + 2/4) / 2.
  EXPECT_NEAR(q.average_precision, (1.0 / 3 + 0.5) / 2, 1e-9);
}

TEST(MetricsTest, PairOrderWithinRankingIgnored) {
  Workload w = TinyWorkload();
  std::vector<std::pair<core::ObjectRef, core::ObjectRef>> ranking = {
      {{"v2", "A"}, {"v1", "A"}},  // swapped sides still counts
  };
  RankingQuality q = EvaluateRanking(w, "v1", "v2", ranking);
  EXPECT_DOUBLE_EQ(q.precision_at_k, 0.5);
}

TEST(MetricsTest, EmptyInputsAreSafe) {
  Workload w = TinyWorkload();
  RankingQuality q = EvaluateRanking(w, "v1", "v2", {});
  EXPECT_EQ(q.ranked_pairs, 0);
  EXPECT_DOUBLE_EQ(q.average_precision, 0.0);
  RankingQuality none = EvaluateRanking(w, "v1", "v9", {});
  EXPECT_EQ(none.true_pairs, 0);
  EXPECT_FALSE(q.ToString().empty());
}

TEST(MetricsTest, SuggestionPrecisionRecall) {
  Workload w = TinyWorkload();
  std::vector<std::pair<ecr::AttributePath, ecr::AttributePath>> suggestions =
      {
          {{"v1", "A", "Id"}, {"v2", "A", "Id"}},        // correct
          {{"v1", "A", "Id"}, {"v2", "B", "Label"}},     // wrong
      };
  SuggestionQuality q = EvaluateSuggestions(w, "v1", "v2", suggestions);
  EXPECT_EQ(q.suggested, 2);
  EXPECT_EQ(q.correct, 1);
  EXPECT_EQ(q.possible, 2);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_FALSE(q.ToString().empty());
}

TEST(MetricsTest, SuggestionEmptyInputs) {
  Workload w = TinyWorkload();
  SuggestionQuality q = EvaluateSuggestions(w, "v1", "v2", {});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

}  // namespace
}  // namespace ecrint::workload
