#include "common/strings.h"

#include <gtest/gtest.h>

namespace ecrint {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"sc1", "Student", "Name"};
  std::string joined = Join(pieces, ".");
  EXPECT_EQ(joined, "sc1.Student.Name");
  EXPECT_EQ(Split(joined, '.'), pieces);
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("Grad_Student"), "grad_student");
  EXPECT_EQ(ToLower("ABC123"), "abc123");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("D_Stud_Facu", "D_"));
  EXPECT_FALSE(StartsWith("Student", "D_"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringsTest, FormatFixedMatchesPaperScreens) {
  // Screen 8 renders attribute ratios with four decimals.
  EXPECT_EQ(FormatFixed(0.5, 4), "0.5000");
  EXPECT_EQ(FormatFixed(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(FormatFixed(2, 0), "2");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("Grad_student"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("has space"));
  EXPECT_FALSE(IsIdentifier("dot.ted"));
}

}  // namespace
}  // namespace ecrint
