// The injectable time plane: ManualClock moves only when told, Stopwatch
// charges exactly the clock's delta, and the real clock is monotonic.

#include "common/clock.h"

#include <gtest/gtest.h>

namespace ecrint::common {
namespace {

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock;
  EXPECT_EQ(clock.NowNs(), 0);
  clock.AdvanceNs(5);
  clock.AdvanceNs(7);
  EXPECT_EQ(clock.NowNs(), 12);
  clock.Advance(std::chrono::microseconds(1));
  EXPECT_EQ(clock.NowNs(), 1012);
  clock.SetNs(100);
  EXPECT_EQ(clock.NowNs(), 100);
}

TEST(StopwatchTest, MeasuresClockDelta) {
  ManualClock clock(1000);
  Stopwatch watch(&clock);
  EXPECT_EQ(watch.ElapsedNs(), 0);
  clock.AdvanceNs(250);
  EXPECT_EQ(watch.ElapsedNs(), 250);
  watch.Restart();
  EXPECT_EQ(watch.ElapsedNs(), 0);
  clock.AdvanceNs(30);
  EXPECT_EQ(watch.ElapsedNs(), 30);
}

TEST(RealClockTest, SingletonAndMonotonic) {
  const Clock* clock = RealClock();
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock, RealClock());
  int64_t a = clock->NowNs();
  int64_t b = clock->NowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace ecrint::common
