#include "common/fs.h"

#include <cstdio>
#include <string>

#include "common/checksum.h"
#include "gtest/gtest.h"

namespace ecrint::common {
namespace {

// --- CRC-32C ---------------------------------------------------------------

TEST(ChecksumTest, KnownVectors) {
  // RFC 3720 appendix B.4 test vectors for CRC-32C.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(ChecksumTest, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(std::string_view(data).substr(0, split));
    crc = Crc32cExtend(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(ChecksumTest, SensitiveToEveryBitFlip) {
  std::string data = "journal record payload";
  uint32_t reference = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), reference);
    }
  }
}

// --- MemFs ----------------------------------------------------------------

TEST(MemFsTest, AppendReadRoundtrip) {
  MemFs fs;
  auto file = fs.OpenAppend("dir/a.log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto content = fs.ReadFileToString("dir/a.log");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello world");
  EXPECT_TRUE(fs.Exists("dir/a.log"));
  EXPECT_FALSE(fs.Exists("dir/b.log"));
}

TEST(MemFsTest, WriteFileAtomicReplaces) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("x", "old").ok());
  ASSERT_TRUE(fs.WriteFileAtomic("x", "new").ok());
  EXPECT_EQ(*fs.ReadFileToString("x"), "new");
}

TEST(MemFsTest, TruncateDropsTail) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("x", "0123456789").ok());
  ASSERT_TRUE(fs.Truncate("x", 4).ok());
  EXPECT_EQ(*fs.ReadFileToString("x"), "0123");
  // Truncating past the end is a no-op, not an extension.
  ASSERT_TRUE(fs.Truncate("x", 100).ok());
  EXPECT_EQ(*fs.ReadFileToString("x"), "0123");
}

TEST(MemFsTest, RemoveAndMissingFileErrors) {
  MemFs fs;
  EXPECT_FALSE(fs.ReadFileToString("nope").ok());
  // Remove is idempotent across all implementations: a missing target is
  // already the desired state.
  EXPECT_TRUE(fs.Remove("nope").ok());
  ASSERT_TRUE(fs.WriteFileAtomic("x", "v").ok());
  ASSERT_TRUE(fs.Remove("x").ok());
  EXPECT_FALSE(fs.Exists("x"));
}

// --- RealFs ---------------------------------------------------------------

class RealFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "fs_test_tmp_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    ASSERT_TRUE(RealFs()->CreateDirs(dir_).ok());
  }
  void TearDown() override {
    // Best-effort cleanup of the files this suite creates.
    (void)RealFs()->Remove(dir_ + "/a.log");
    (void)RealFs()->Remove(dir_ + "/atomic");
    (void)std::remove(dir_.c_str());
  }
  std::string dir_;
};

TEST_F(RealFsTest, AppendReadTruncateRoundtrip) {
  Fs* fs = RealFs();
  auto file = fs->OpenAppend(dir_ + "/a.log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abcdef").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  // A second open appends, not truncates.
  file = fs->OpenAppend(dir_ + "/a.log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("ghi").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*fs->ReadFileToString(dir_ + "/a.log"), "abcdefghi");

  ASSERT_TRUE(fs->Truncate(dir_ + "/a.log", 6).ok());
  EXPECT_EQ(*fs->ReadFileToString(dir_ + "/a.log"), "abcdef");
}

TEST_F(RealFsTest, WriteFileAtomicLeavesNoTempBehind) {
  Fs* fs = RealFs();
  ASSERT_TRUE(fs->WriteFileAtomic(dir_ + "/atomic", "v1").ok());
  ASSERT_TRUE(fs->WriteFileAtomic(dir_ + "/atomic", "v2").ok());
  EXPECT_EQ(*fs->ReadFileToString(dir_ + "/atomic"), "v2");
  EXPECT_FALSE(fs->Exists(dir_ + "/atomic.tmp"));
}

// --- OpenMmap --------------------------------------------------------------

TEST(MemFsMmapTest, MmapViewsCurrentContent) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("ckpt", "checkpoint-bytes").ok());
  auto mapping = fs.OpenMmap("ckpt");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ((*mapping)->view(), "checkpoint-bytes");
  EXPECT_EQ((*mapping)->size(), 16u);
}

TEST(MemFsMmapTest, EmptyFileMapsToEmptyView) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("empty", "").ok());
  auto mapping = fs.OpenMmap("empty");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ((*mapping)->size(), 0u);
}

TEST(MemFsMmapTest, MissingFileIsAnError) {
  MemFs fs;
  EXPECT_FALSE(fs.OpenMmap("nope").ok());
}

TEST_F(RealFsTest, MmapRoundtripsFileBytes) {
  Fs* fs = RealFs();
  std::string content(8192, '\0');
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(fs->WriteFileAtomic(dir_ + "/atomic", content).ok());
  auto mapping = fs->OpenMmap(dir_ + "/atomic");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ((*mapping)->view(), content);
  // The mapping outlives a later rewrite of the path (rename swaps the
  // inode; the old pages stay valid for the mapping's lifetime).
  ASSERT_TRUE(fs->WriteFileAtomic(dir_ + "/atomic", "replaced").ok());
  EXPECT_EQ((*mapping)->view(), content);
}

TEST_F(RealFsTest, MmapMissingFileIsAnError) {
  EXPECT_FALSE(RealFs()->OpenMmap(dir_ + "/nope").ok());
}

TEST_F(RealFsTest, MmapEmptyFileIsUsable) {
  Fs* fs = RealFs();
  ASSERT_TRUE(fs->WriteFileAtomic(dir_ + "/atomic", "").ok());
  auto mapping = fs->OpenMmap(dir_ + "/atomic");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ((*mapping)->size(), 0u);
}

// --- FaultInjectingFs ------------------------------------------------------

TEST(FaultInjectingFsTest, FailAppendAtIndexIsSticky) {
  MemFs base;
  FaultPlan plan;
  plan.fail_append_at = 1;  // second append fails
  FaultInjectingFs fs(&base, plan);

  auto file = fs.OpenAppend("j");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("first").ok());
  EXPECT_FALSE((*file)->Append("second").ok());
  EXPECT_TRUE(fs.failed());
  // Sticky device death: later operations fail too.
  EXPECT_FALSE((*file)->Append("third").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  // Only the pre-failure bytes reached the base.
  EXPECT_EQ(*base.ReadFileToString("j"), "first");
}

TEST(FaultInjectingFsTest, ShortWritePersistsPrefix) {
  MemFs base;
  FaultPlan plan;
  plan.fail_append_at = 0;
  plan.short_write_bytes = 3;
  FaultInjectingFs fs(&base, plan);

  auto file = fs.OpenAppend("j");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("abcdef").ok());
  // The torn prefix landed: exactly what a crash mid-write leaves.
  EXPECT_EQ(*base.ReadFileToString("j"), "abc");
}

TEST(FaultInjectingFsTest, FailSyncAt) {
  MemFs base;
  FaultPlan plan;
  plan.fail_sync_at = 0;
  FaultInjectingFs fs(&base, plan);

  auto file = fs.OpenAppend("j");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("data").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_TRUE(fs.failed());
  // The append itself landed in the base before the barrier failed.
  EXPECT_EQ(*base.ReadFileToString("j"), "data");
}

TEST(FaultInjectingFsTest, FailAtomicWriteLeavesOldContent) {
  MemFs base;
  ASSERT_TRUE(base.WriteFileAtomic("c", "old").ok());
  FaultPlan plan;
  plan.fail_atomic_write_at = 0;
  FaultInjectingFs fs(&base, plan);

  EXPECT_FALSE(fs.WriteFileAtomic("c", "new").ok());
  EXPECT_EQ(*base.ReadFileToString("c"), "old");
}

TEST(FaultInjectingFsTest, NonStickyFailsOnlyOnce) {
  MemFs base;
  FaultPlan plan;
  plan.fail_append_at = 0;
  plan.sticky = false;
  FaultInjectingFs fs(&base, plan);

  auto file = fs.OpenAppend("j");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("a").ok());
  EXPECT_TRUE((*file)->Append("b").ok());
  EXPECT_EQ(*base.ReadFileToString("j"), "b");
}

TEST(FaultInjectingFsTest, ReadsPassThrough) {
  MemFs base;
  ASSERT_TRUE(base.WriteFileAtomic("x", "content").ok());
  FaultPlan plan;
  plan.fail_append_at = 0;
  FaultInjectingFs fs(&base, plan);
  EXPECT_EQ(*fs.ReadFileToString("x"), "content");
  EXPECT_TRUE(fs.Exists("x"));
}

}  // namespace
}  // namespace ecrint::common
