#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/result.h"

namespace ecrint {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no schema 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no schema 'x'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no schema 'x'");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ConflictError("m").code(), StatusCode::kConflict);
  EXPECT_EQ(ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConflict), "CONFLICT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
}

Status ReturnIfErrorHelper(bool fail, int* reached) {
  ECRINT_RETURN_IF_ERROR(fail ? InternalError("boom") : Status::Ok());
  *reached = 1;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  int reached = 0;
  Status s = ReturnIfErrorHelper(true, &reached);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(reached, 0);
  s = ReturnIfErrorHelper(false, &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(reached, 1);
}

Result<int> MakeResult(bool fail) {
  if (fail) return InvalidArgumentError("nope");
  return 42;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = MakeResult(false);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = MakeResult(true);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> AssignOrReturnHelper(bool fail) {
  ECRINT_ASSIGN_OR_RETURN(int v, MakeResult(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnPropagatesAndUnwraps) {
  Result<int> good = AssignOrReturnHelper(false);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 43);
  Result<int> bad = AssignOrReturnHelper(true);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace ecrint
