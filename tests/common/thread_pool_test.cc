#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ecrint::common {
namespace {

TEST(ThreadPoolTest, SizeIsClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  ThreadPool two(2);
  EXPECT_EQ(two.size(), 2);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int, int) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ChunksCoverRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kBegin = 3;
  constexpr int kEnd = 145;
  std::vector<std::atomic<int>> seen(kEnd);
  pool.ParallelFor(kBegin, kEnd, 7, [&](int begin, int end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 7);
    for (int i = begin; i < end; ++i) seen[i]++;
  });
  for (int i = 0; i < kBegin; ++i) EXPECT_EQ(seen[i].load(), 0);
  for (int i = kBegin; i < kEnd; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.size(), 1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<int> sums;
  std::mutex mu;
  pool.ParallelFor(0, 100, 10, [&](int begin, int end) {
    // With one worker, ParallelFor must stay on the calling thread — that is
    // the determinism guarantee the resemblance fallback path relies on.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    int sum = 0;
    for (int i = begin; i < end; ++i) sum += i;
    std::lock_guard<std::mutex> lock(mu);
    sums.push_back(sum);
  });
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0), 99 * 100 / 2);
}

TEST(ThreadPoolTest, SingleChunkRunsInline) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 5, 100, [&](int begin, int end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 5);
    ++calls;  // safe: inline path, no concurrency
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, FirstExceptionInChunkOrderIsRethrown) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 64, 4, [&](int begin, int) {
      if (begin == 12) throw std::runtime_error("chunk 12");
      if (begin == 40) throw std::out_of_range("chunk 40");
      ++completed;
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    // Chunk order, not completion order: the runtime_error from the chunk
    // starting at 12 must win over the out_of_range from 40.
    EXPECT_STREQ(e.what(), "chunk 12");
  }
  // Every non-throwing chunk still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 64 / 4 - 2);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 8, 1,
                       [](int, int) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 8, 1, [&](int, int) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPoolTest, SharedPoolIsSingletonAndUsable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
  std::atomic<long> sum{0};
  a.ParallelFor(1, 1001, 37, [&](int begin, int end) {
    long local = 0;
    for (int i = begin; i < end; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

}  // namespace
}  // namespace ecrint::common
