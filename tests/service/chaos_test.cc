// ChaosProxy: schedule grammar, byte-transparent relaying, fragmentation,
// deterministic seeded corruption, accept refusal, and partition healing.
// The proxy fronts a local echo server; every test drives real sockets.

#include "service/chaos.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ecrint::service {
namespace {

void SetRecvTimeoutMs(int fd, int ms) {
  struct timeval timeout;
  timeout.tv_sec = ms / 1000;
  timeout.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

// Minimal echo server: accepts any number of connections, echoes bytes
// back until EOF. Runs until destruction.
class EchoServer {
 public:
  EchoServer() {
    listener_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    bind(listener_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    listen(listener_, 16);
    socklen_t len = sizeof(addr);
    getsockname(listener_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    SetRecvTimeoutMs(listener_, 50);
    accept_thread_ = std::thread([this] {
      while (!stop_.load()) {
        int fd = accept(listener_, nullptr, nullptr);
        if (fd < 0) continue;
        SetRecvTimeoutMs(fd, 50);
        workers_.emplace_back([this, fd] {
          char buffer[4096];
          while (!stop_.load()) {
            ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
            if (n == 0) break;
            if (n < 0) {
              if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
              break;
            }
            ssize_t off = 0;
            while (off < n) {
              ssize_t sent = send(fd, buffer + off, static_cast<size_t>(n - off),
                                  MSG_NOSIGNAL);
              if (sent <= 0) return;
              off += sent;
            }
          }
          close(fd);
        });
      }
    });
  }

  ~EchoServer() {
    stop_.store(true);
    accept_thread_.join();
    for (std::thread& worker : workers_) worker.join();
    close(listener_);
  }

  int port() const { return port_; }
  std::string addr() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  int listener_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

int ConnectLoopback(int port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `want` bytes or gives up after ~2s of silence.
std::string RecvN(int fd, size_t want) {
  SetRecvTimeoutMs(fd, 100);
  std::string got;
  int idle = 0;
  char buffer[4096];
  while (got.size() < want && idle < 20) {
    ssize_t n = recv(fd, buffer, std::min(sizeof(buffer), want - got.size()),
                     0);
    if (n > 0) {
      got.append(buffer, static_cast<size_t>(n));
      idle = 0;
    } else if (n == 0) {
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      ++idle;
    } else {
      break;
    }
  }
  return got;
}

TEST(ChaosScheduleTest, ParsesKnobsActionsAndComments) {
  ChaosProxy proxy({.upstream_addr = "127.0.0.1:1", .listen_port = 0});
  ASSERT_TRUE(proxy
                  .LoadSchedule("# comment\n"
                                "seed 42\n"
                                "set delay_ms 7\n"
                                "at 100 set partition 1\n"
                                "at 200 rst\n"
                                "at 300 halfclose\n"
                                "at 400 close\n"
                                "\n")
                  .ok());
  // Immediate set applied now; timed ones only when the clock reaches them
  // (the proxy was never started, so never).
  EXPECT_EQ(*proxy.Get("delay_ms"), 7);
  EXPECT_EQ(*proxy.Get("partition"), 0);
}

TEST(ChaosScheduleTest, RejectsBadLines) {
  ChaosProxy proxy({.upstream_addr = "127.0.0.1:1", .listen_port = 0});
  EXPECT_FALSE(proxy.LoadSchedule("set nonsense 1\n").ok());
  EXPECT_FALSE(proxy.LoadSchedule("at x set delay_ms 1\n").ok());
  EXPECT_FALSE(proxy.LoadSchedule("explode\n").ok());
  EXPECT_FALSE(proxy.LoadSchedule("at 100 rst extra\n").ok());
  EXPECT_FALSE(proxy.LoadSchedule("set delay_ms\n").ok());
}

TEST(ChaosScheduleTest, UnknownKnobErrors) {
  ChaosProxy proxy({.upstream_addr = "127.0.0.1:1", .listen_port = 0});
  EXPECT_FALSE(proxy.Set("warp_speed", 9).ok());
  EXPECT_FALSE(proxy.Get("warp_speed").ok());
  EXPECT_TRUE(proxy.Set("drop_pct", 10).ok());
  EXPECT_EQ(*proxy.Get("drop_pct"), 10);
}

TEST(ChaosProxyTest, RelaysBytesTransparently) {
  EchoServer echo;
  ChaosProxy proxy({.upstream_addr = echo.addr(), .listen_port = 0});
  Result<int> port = proxy.Start();
  ASSERT_TRUE(port.ok());
  int fd = ConnectLoopback(*port);
  ASSERT_GE(fd, 0);
  const std::string payload = "hello through the chaos proxy";
  ASSERT_TRUE(SendAll(fd, payload));
  EXPECT_EQ(RecvN(fd, payload.size()), payload);
  close(fd);
  proxy.Stop();
  EXPECT_EQ(proxy.stats().connections, 1u);
  EXPECT_GE(proxy.stats().bytes_up, payload.size());
}

TEST(ChaosProxyTest, FragmentationPreservesByteStream) {
  EchoServer echo;
  ChaosProxy proxy({.upstream_addr = echo.addr(), .listen_port = 0});
  ASSERT_TRUE(proxy.Set("fragment", 1).ok());
  Result<int> port = proxy.Start();
  ASSERT_TRUE(port.ok());
  int fd = ConnectLoopback(*port);
  ASSERT_GE(fd, 0);
  std::string payload;
  for (int i = 0; i < 2048; ++i) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(SendAll(fd, payload));
  EXPECT_EQ(RecvN(fd, payload.size()), payload);
  close(fd);
}

TEST(ChaosProxyTest, CorruptionIsSeededAndDeterministic) {
  const std::string payload(512, 'x');
  auto corrupted_once = [&](uint64_t seed) {
    EchoServer echo;
    ChaosProxy proxy(
        {.upstream_addr = echo.addr(), .listen_port = 0, .seed = seed});
    // Corrupt only client->upstream traffic... both directions share the
    // knob, so corrupt everything and read what comes back.
    EXPECT_TRUE(proxy.Set("corrupt_pct", 100).ok());
    Result<int> port = proxy.Start();
    EXPECT_TRUE(port.ok());
    int fd = ConnectLoopback(*port);
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(SendAll(fd, payload));
    std::string got = RecvN(fd, payload.size());
    close(fd);
    proxy.Stop();
    EXPECT_GT(proxy.stats().bits_flipped, 0u);
    return got;
  };
  std::string first = corrupted_once(7);
  std::string again = corrupted_once(7);
  ASSERT_EQ(first.size(), payload.size());
  EXPECT_NE(first, payload);  // a bit actually flipped somewhere
  // Same seed, same byte stream: identical mangling. (Block boundaries are
  // deterministic here — one send, loopback, payload far below the block
  // size.)
  EXPECT_EQ(first, again);
}

TEST(ChaosProxyTest, AcceptZeroRefusesNewConnections) {
  EchoServer echo;
  ChaosProxy proxy({.upstream_addr = echo.addr(), .listen_port = 0});
  ASSERT_TRUE(proxy.Set("accept", 0).ok());
  Result<int> port = proxy.Start();
  ASSERT_TRUE(port.ok());
  int fd = ConnectLoopback(*port);
  ASSERT_GE(fd, 0);
  // The proxy closes immediately: EOF, no echo.
  EXPECT_EQ(RecvN(fd, 1), "");
  close(fd);
  proxy.Stop();
  EXPECT_EQ(proxy.stats().connections, 0u);
  EXPECT_EQ(proxy.stats().refused, 1u);
}

TEST(ChaosProxyTest, PartitionBlackholesThenHeals) {
  EchoServer echo;
  ChaosProxy proxy({.upstream_addr = echo.addr(), .listen_port = 0});
  Result<int> port = proxy.Start();
  ASSERT_TRUE(port.ok());
  int fd = ConnectLoopback(*port);
  ASSERT_GE(fd, 0);
  // Prove the path works, then partition it.
  ASSERT_TRUE(SendAll(fd, "pre"));
  ASSERT_EQ(RecvN(fd, 3), "pre");
  ASSERT_TRUE(proxy.Set("partition", 1).ok());
  // Give the relay threads a beat to observe the knob, then send into the
  // blackhole: nothing comes back while partitioned.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(SendAll(fd, "during"));
  SetRecvTimeoutMs(fd, 100);
  char buffer[16];
  ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_LT(n, 0);  // timed out: the proxy is not relaying
  // Heal: the queued bytes flow again.
  ASSERT_TRUE(proxy.Set("partition", 0).ok());
  EXPECT_EQ(RecvN(fd, 6), "during");
  close(fd);
}

}  // namespace
}  // namespace ecrint::service
