// Property-style concurrency stress: K writer threads race through one
// project's ground-truth mutation log (attribute equivalences + domain
// assertions, partitioned round-robin) while M reader threads hammer
// snapshot reads. The final integration must equal a single-threaded
// serial replay of the same log — sound because the mutations commute:
// equivalence-class unions are order-independent and the assertion
// closure's fixpoint is confluent. Readers check snapshot invariants
// (never null, generations monotonic, catalog immutable per snapshot).
// Seeded RNG, no sleeps, no wall-clock dependence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/assertion.h"
#include "ecr/printer.h"
#include "engine/engine.h"
#include "service/service.h"
#include "workload/generator.h"

namespace ecrint::service {
namespace {

// One ground-truth mutation: either an equivalence declare or an
// assertion.
struct Mutation {
  bool is_equivalence = false;
  workload::TrueAttributeMatch match;
  workload::TrueObjectRelation relation;
};

std::vector<Mutation> MutationLog(const workload::Workload& workload) {
  std::vector<Mutation> log;
  for (const workload::TrueAttributeMatch& match :
       workload.attribute_matches) {
    Mutation mutation;
    mutation.is_equivalence = true;
    mutation.match = match;
    log.push_back(mutation);
  }
  for (const workload::TrueObjectRelation& relation :
       workload.object_relations) {
    Mutation mutation;
    mutation.relation = relation;
    log.push_back(mutation);
  }
  return log;
}

void ApplyToEngine(engine::Engine& engine, const Mutation& mutation) {
  if (mutation.is_equivalence) {
    ASSERT_TRUE(
        engine.AssertEquivalence(mutation.match.first, mutation.match.second)
            .ok());
  } else {
    ASSERT_TRUE(engine
                    .AssertRelation(mutation.relation.first,
                                    mutation.relation.second,
                                    mutation.relation.assertion)
                    .ok());
  }
}

void ApplyToService(IntegrationService& service, const std::string& session,
                    const Mutation& mutation) {
  ServiceResponse response;
  if (mutation.is_equivalence) {
    response = service.DeclareEquivalence(session, mutation.match.first,
                                          mutation.match.second);
  } else {
    response = service.AssertRelation(
        session, mutation.relation.first,
        core::AssertionTypeCode(mutation.relation.assertion),
        mutation.relation.second);
  }
  ASSERT_TRUE(response.ok()) << (response.error.has_value()
                                     ? response.error->message
                                     : "");
}

// Fingerprint of an integration result: the full DDL of the integrated
// schema plus every derived-attribute provenance line.
std::string Fingerprint(const core::IntegrationResult& result) {
  std::string print = ecr::ToDdl(result.schema);
  for (const core::DerivedAttributeInfo& info : result.derived_attributes) {
    print += info.owner + "." + info.name + " <-";
    for (const ecr::AttributePath& component : info.components) {
      print += " " + component.ToString();
    }
    print += "\n";
  }
  return print;
}

void RunStress(uint64_t seed, int writers, int readers) {
  workload::GeneratorConfig generator;
  generator.seed = seed;
  generator.num_concepts = 10;
  generator.num_schemas = 3;
  Result<workload::Workload> workload =
      workload::GenerateWorkload(generator);
  ASSERT_TRUE(workload.ok());
  std::vector<Mutation> log = MutationLog(*workload);
  ASSERT_FALSE(log.empty());

  std::string ddl;
  for (const std::string& name : workload->schema_names) {
    ddl += ecr::ToDdl(**workload->catalog.GetSchema(name));
  }

  // --- serial replay: the ground truth to match --------------------------
  engine::Engine serial;
  ASSERT_TRUE(serial.DefineSchema(ddl).ok());
  for (const Mutation& mutation : log) ApplyToEngine(serial, mutation);
  Result<const core::IntegrationResult*> serial_result = serial.Integrate();
  ASSERT_TRUE(serial_result.ok());
  std::string expected = Fingerprint(**serial_result);

  // --- concurrent run ----------------------------------------------------
  ServiceConfig config;
  // Generous deadline: sanitizer builds are an order of magnitude slower
  // and a writer's queueing time counts against its deadline.
  config.default_deadline_ns = 300'000'000'000;
  IntegrationService service(config);
  std::string writer_session = service.OpenSession("stress");
  ASSERT_TRUE(service.Define(writer_session, ddl).ok());

  size_t schema_count = workload->schema_names.size();
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};

  std::vector<std::thread> reader_threads;
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      std::string session = service.OpenSession("stress");
      std::mt19937 rng(100 + static_cast<uint32_t>(r));
      int64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const EngineSnapshot> snapshot =
            service.CurrentSnapshot(session);
        ASSERT_NE(snapshot, nullptr);
        // Generations never go backwards, and every snapshot sees the
        // full up-front catalog.
        ASSERT_GE(snapshot->generation, last_generation);
        last_generation = snapshot->generation;
        ASSERT_EQ(snapshot->catalog->SchemaNames().size(), schema_count);
        size_t a = rng() % schema_count;
        size_t b = (a + 1) % schema_count;
        ServiceResponse response = service.RankedPairs(
            session, workload->schema_names[a], workload->schema_names[b],
            core::StructureKind::kObjectClass, /*include_zero=*/true);
        ASSERT_TRUE(response.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
      (void)service.CloseSession(session);
    });
  }

  std::vector<std::thread> writer_threads;
  for (int w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      std::string session = service.OpenSession("stress");
      // Round-robin partition of the shared log.
      for (size_t i = static_cast<size_t>(w); i < log.size();
           i += static_cast<size_t>(writers)) {
        ApplyToService(service, session, log[i]);
      }
      (void)service.CloseSession(session);
    });
  }
  for (std::thread& writer : writer_threads) writer.join();
  done.store(true, std::memory_order_release);
  for (std::thread& reader : reader_threads) reader.join();

  // --- the property: concurrent == serial --------------------------------
  ASSERT_TRUE(service.Integrate(writer_session, {}).ok());
  std::shared_ptr<const EngineSnapshot> final_snapshot =
      service.CurrentSnapshot(writer_session);
  ASSERT_NE(final_snapshot, nullptr);
  ASSERT_NE(final_snapshot->integration, nullptr);
  EXPECT_EQ(Fingerprint(*final_snapshot->integration), expected)
      << "seed " << seed << ", " << writers << " writers, " << readers
      << " readers, " << reads.load() << " reads";
  EXPECT_GT(reads.load(), 0);
}

TEST(ServiceStressTest, ConcurrentWritersMatchSerialReplay) {
  RunStress(/*seed=*/11, /*writers=*/4, /*readers=*/3);
}

TEST(ServiceStressTest, MoreWritersThanCores) {
  RunStress(/*seed=*/23, /*writers=*/8, /*readers=*/2);
}

TEST(ServiceStressTest, SingleWriterManyReaders) {
  RunStress(/*seed=*/37, /*writers=*/1, /*readers=*/6);
}

}  // namespace
}  // namespace ecrint::service
