// The read-response cache: part-identity validation against copy-on-write
// snapshots (warm across publishes that shared the parts, evicted the
// moment a part was recomputed), per-protocol wire serialization, the
// LRU capacity bound, and the router-level fast path (repeat reads are
// served from cache and counted in cache.hits; any write that touches the
// answer invalidates).

#include "service/response_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/assertion.h"
#include "engine/engine.h"
#include "service/protocol.h"
#include "service/router.h"
#include "service/service.h"
#include "service/snapshot.h"

namespace ecrint::service {
namespace {

constexpr const char* kUniversityDdl = R"(
schema sc1 {
  entity Student { Name: char key; GPA: real; }
}
schema sc2 {
  entity Grad { Name: char key; GPA: real; }
}
)";

engine::Engine MakeEngine() {
  engine::Engine engine;
  EXPECT_TRUE(engine.DefineSchema(kUniversityDdl).ok());
  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "Name"},
                                     {"sc2", "Grad", "Name"})
                  .ok());
  return engine;
}

ServiceResponse MakeResponse(std::vector<std::string> lines) {
  ServiceResponse response;
  response.lines = std::move(lines);
  return response;
}

TEST(ResponseCacheKeyTest, LengthPrefixingPreventsCollisions) {
  // Args containing the separator byte must not alias a different split.
  std::string sep = "\x01";
  EXPECT_NE(ResponseCache::Key("rank", {"a" + sep + "b"}),
            ResponseCache::Key("rank", {"a", "b"}));
  EXPECT_NE(ResponseCache::Key("rank", {"a", "b"}),
            ResponseCache::Key("rank", {"ab"}));
  EXPECT_NE(ResponseCache::Key("rank", {}),
            ResponseCache::Key("rank", {""}));
  EXPECT_EQ(ResponseCache::Key("rank", {"a", "b"}),
            ResponseCache::Key("rank", {"a", "b"}));
}

TEST(ResponseCacheTest, HitWhenPartsIdentical) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> snapshot = manager.Current();

  ResponseCache cache;
  std::string key = ResponseCache::Key("rank", {"sc1", "sc2"});
  cache.Insert(key, *snapshot, MakeResponse({"line-1", "line-2"}));

  auto hit = cache.Lookup(key, *snapshot, kProtocolTextVersion);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response.lines, (std::vector<std::string>{"line-1",
                                                           "line-2"}));
  // The wire bytes are exactly what a fresh serialization would produce.
  EXPECT_EQ(hit->wire, FormatResponse(hit->response));

  auto binary_hit = cache.Lookup(key, *snapshot, kProtocolBinaryVersion);
  ASSERT_TRUE(binary_hit.has_value());
  EXPECT_EQ(binary_hit->wire, EncodeBinaryResponse(binary_hit->response));
  EXPECT_NE(binary_hit->wire, hit->wire);
}

TEST(ResponseCacheTest, StaysWarmAcrossPartSharingPublish) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> before = manager.Current();

  ResponseCache cache;
  std::string key = ResponseCache::Key("rank", {"sc1", "sc2"});
  cache.Insert(key, *before, MakeResponse({"ranked"}));

  // An assertion append republishes but shares catalog + equivalence, so
  // an entry keyed on those parts is still valid.
  ASSERT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Grad"},
                                  core::AssertionType::kContains)
                  .ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> after = manager.Current();
  ASSERT_NE(before.get(), after.get());
  ASSERT_EQ(before->catalog.get(), after->catalog.get());

  EXPECT_TRUE(cache.Lookup(key, *after, kProtocolTextVersion).has_value());
}

TEST(ResponseCacheTest, EvictedWhenPartRecomputed) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> before = manager.Current();

  ResponseCache cache;
  std::string key = ResponseCache::Key("suggest", {"sc1", "sc2"});
  cache.Insert(key, *before, MakeResponse({"suggestion"}));

  // A new equivalence edit allocates a fresh equivalence map: the entry
  // must miss AND be erased.
  ASSERT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad", "GPA"})
                  .ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> after = manager.Current();
  ASSERT_NE(before->equivalence.get(), after->equivalence.get());

  EXPECT_FALSE(cache.Lookup(key, *after, kProtocolTextVersion).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResponseCacheTest, NullnessMismatchIsAMiss) {
  engine::Engine engine = MakeEngine();
  ASSERT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Grad"},
                                  core::AssertionType::kEquals)
                  .ok());
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> before = manager.Current();
  ASSERT_EQ(before->integration, nullptr);

  ResponseCache cache;
  std::string key = ResponseCache::Key("outline", {});
  cache.Insert(key, *before, MakeResponse({"pre-integrate"}));

  // Integration fills a part that used to be null; the entry recorded
  // had_integration=false and must not survive.
  ASSERT_TRUE(engine.Integrate().ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> after = manager.Current();
  ASSERT_NE(after->integration, nullptr);

  EXPECT_FALSE(cache.Lookup(key, *after, kProtocolTextVersion).has_value());
}

TEST(ResponseCacheTest, CapEvictsLeastRecentlyUsed) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> snapshot = manager.Current();

  ResponseCache cache;
  MetricsRegistry metrics;
  Counter* evictions = metrics.GetCounter("cache.evictions");
  cache.SetEvictionCounter(evictions);
  for (size_t i = 0; i < ResponseCache::kMaxEntries; ++i) {
    cache.Insert(ResponseCache::Key("rank", {std::to_string(i)}), *snapshot,
                 MakeResponse({"r"}));
  }
  EXPECT_EQ(cache.size(), ResponseCache::kMaxEntries);
  // One more distinct key evicts exactly one entry — the oldest ("0").
  cache.Insert(ResponseCache::Key("rank", {"overflow"}), *snapshot,
               MakeResponse({"r"}));
  EXPECT_EQ(cache.size(), ResponseCache::kMaxEntries);
  EXPECT_EQ(evictions->value(), 1);
  EXPECT_FALSE(cache.Lookup(ResponseCache::Key("rank", {"0"}), *snapshot,
                            kProtocolTextVersion)
                   .has_value());
  EXPECT_TRUE(cache.Lookup(ResponseCache::Key("rank", {"1"}), *snapshot,
                           kProtocolTextVersion)
                  .has_value());
  // Re-inserting an existing key at the cap neither evicts nor grows.
  cache.Insert(ResponseCache::Key("rank", {"1"}), *snapshot,
               MakeResponse({"r2"}));
  EXPECT_EQ(cache.size(), ResponseCache::kMaxEntries);
  EXPECT_EQ(evictions->value(), 1);
}

TEST(ResponseCacheTest, HotKeysSurviveOverflow) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> snapshot = manager.Current();

  ResponseCache cache;
  std::string hot = ResponseCache::Key("rank", {"hot"});
  cache.Insert(hot, *snapshot, MakeResponse({"hot answer"}));
  // A scan of 4x-capacity one-off keys, with the hot key re-read along the
  // way: under LRU the scan only ever evicts its own cold tail.
  for (size_t i = 0; i < 4 * ResponseCache::kMaxEntries; ++i) {
    cache.Insert(ResponseCache::Key("rank", {"cold" + std::to_string(i)}),
                 *snapshot, MakeResponse({"r"}));
    if (i % 16 == 0) {
      ASSERT_TRUE(cache.Lookup(hot, *snapshot, kProtocolTextVersion)
                      .has_value())
          << "hot key evicted after " << i << " cold inserts";
    }
  }
  std::optional<ResponseCache::Hit> hit =
      cache.Lookup(hot, *snapshot, kProtocolTextVersion);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response.lines, std::vector<std::string>{"hot answer"});
  EXPECT_EQ(cache.size(), ResponseCache::kMaxEntries);
}

// --- router-level behaviour ------------------------------------------------

constexpr const char* kInlineDdl =
    "schema sc1 { entity Student { Name: char key; GPA: real; } } "
    "schema sc2 { entity Grad { Name: char key; GPA: real; } }";

class RouterCacheTest : public ::testing::Test {
 protected:
  RouterCacheTest() : service_(ServiceConfig{}), router_(&service_) {}

  // Opens a session and seeds + integrates the project.
  void SeedThrough(RouterSession* session) {
    EXPECT_EQ(router_.HandleLine("open uni", session).substr(0, 2), "ok");
    EXPECT_EQ(router_.HandleLine(std::string("define ") + kInlineDdl, session)
                  .substr(0, 2),
              "ok");
    EXPECT_EQ(router_.HandleLine("equiv sc1.Student.Name sc2.Grad.Name",
                                 session)
                  .substr(0, 2),
              "ok");
    EXPECT_EQ(
        router_.HandleLine("assert sc1.Student 1 sc2.Grad", session)
            .substr(0, 2),
        "ok");
    EXPECT_EQ(router_.HandleLine("integrate", session).substr(0, 2), "ok");
  }

  int64_t CacheHits() {
    return service_.metrics().GetCounter("cache.hits")->value();
  }

  IntegrationService service_;
  RequestRouter router_;
};

TEST_F(RouterCacheTest, RepeatReadsAreServedFromCache) {
  RouterSession session;
  SeedThrough(&session);

  std::string first = router_.HandleLine("outline", &session);
  int64_t hits_before = CacheHits();
  std::string second = router_.HandleLine("outline", &session);
  EXPECT_EQ(first, second);  // byte-identical, not just equivalent
  EXPECT_EQ(CacheHits(), hits_before + 1);

  // A different read verb populates its own entry.
  std::string rank1 = router_.HandleLine("rank sc1 sc2", &session);
  std::string rank2 = router_.HandleLine("rank sc1 sc2", &session);
  EXPECT_EQ(rank1, rank2);
  EXPECT_EQ(CacheHits(), hits_before + 2);
}

TEST_F(RouterCacheTest, WriteInvalidatesAffectedReads) {
  RouterSession session;
  SeedThrough(&session);

  std::string before = router_.HandleLine("rank sc1 sc2", &session);
  (void)router_.HandleLine("rank sc1 sc2", &session);  // warm the entry
  int64_t hits_after_warm = CacheHits();

  // A new equivalence changes the map the ranking is computed from.
  ASSERT_EQ(router_.HandleLine("equiv sc1.Student.GPA sc2.Grad.GPA",
                               &session)
                .substr(0, 2),
            "ok");
  int64_t hits_before = CacheHits();
  EXPECT_EQ(hits_before, hits_after_warm);
  std::string after = router_.HandleLine("rank sc1 sc2", &session);
  // The read was recomputed, not served stale: no new hit was counted and
  // the answer reflects the write (the shared-attribute score went up).
  EXPECT_EQ(CacheHits(), hits_before);
  EXPECT_NE(before, after);
  // The recomputed entry is warm again for the next identical read.
  EXPECT_EQ(router_.HandleLine("rank sc1 sc2", &session), after);
  EXPECT_EQ(CacheHits(), hits_before + 1);
}

TEST_F(RouterCacheTest, ErrorResponsesAreNotCached) {
  RouterSession session;
  SeedThrough(&session);

  // rank over a schema that does not exist fails — and must be recomputed
  // every time (error responses never enter the cache).
  int64_t hits_before = CacheHits();
  std::string first = router_.HandleLine("rank sc1 nosuch", &session);
  std::string second = router_.HandleLine("rank sc1 nosuch", &session);
  EXPECT_EQ(first.substr(0, 3), "err");
  EXPECT_EQ(first, second);
  EXPECT_EQ(CacheHits(), hits_before);
  EXPECT_EQ(router_.cache().size(), 0u);
}

TEST_F(RouterCacheTest, SecondSessionSameProjectHits) {
  RouterSession writer;
  SeedThrough(&writer);
  (void)router_.HandleLine("outline", &writer);  // populate

  RouterSession reader;
  ASSERT_EQ(router_.HandleLine("open uni", &reader).substr(0, 2), "ok");
  int64_t hits_before = CacheHits();
  std::string cached = router_.HandleLine("outline", &reader);
  EXPECT_EQ(CacheHits(), hits_before + 1);
  EXPECT_EQ(cached, router_.HandleLine("outline", &writer));
}

TEST_F(RouterCacheTest, BinaryAndTextHitsShareOneEntry) {
  RouterSession text_session;
  SeedThrough(&text_session);
  std::string text_reply = router_.HandleLine("outline", &text_session);

  // A binary-mode session issuing the same read hits the same entry and
  // gets the binary serialization of the identical response.
  RouterSession binary_session;
  ASSERT_EQ(router_.HandleLine("open uni", &binary_session).substr(0, 2),
            "ok");
  ASSERT_EQ(router_.HandleLine("proto 2", &binary_session).substr(0, 2),
            "ok");
  ASSERT_EQ(binary_session.protocol_version, kProtocolBinaryVersion);

  BinaryRequest request;
  request.verb = WireVerb::kOutline;
  std::string frame = EncodeBinaryRequest(request);
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ExtractFrame(frame, &body, &consumed, &error),
            FrameStatus::kComplete);

  int64_t hits_before = CacheHits();
  std::string reply_frame = router_.HandleFrame(body, &binary_session);
  EXPECT_EQ(CacheHits(), hits_before + 1);

  std::string_view reply_body;
  ASSERT_EQ(ExtractFrame(reply_frame, &reply_body, &consumed, &error),
            FrameStatus::kComplete);
  Result<DecodedResponse> decoded = DecodeBinaryResponse(reply_body);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->items.size(), 1u);
  // Same payload as the text reply, different framing.
  Result<ServiceResponse> text_parsed = ParseResponse(text_reply);
  ASSERT_TRUE(text_parsed.ok());
  EXPECT_EQ(decoded->items[0].lines, text_parsed->lines);
}

}  // namespace
}  // namespace ecrint::service
