// Golden v1 transcript: the text protocol must stay byte-identical across
// refactors. The expected bytes below were captured from the wire before the
// binary-protocol work landed; this test replays the same request script
// through RequestRouter and compares the concatenated responses byte for
// byte. Do NOT regenerate the golden on a diff -- a diff means the text
// protocol changed, which breaks deployed v1 clients.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "service/protocol.h"
#include "service/router.h"
#include "service/service.h"

namespace ecrint::service {
namespace {

const char* const kGoldenScript[] = {
    R"GOLD(ping)GOLD",
    R"GOLD(outline)GOLD",
    R"GOLD(open golden)GOLD",
    R"GOLD(define schema s1 { entity Student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors (Student [1,1], Department [0,n]); } schema s2 { entity Pupil { Name: char key; Addr: char; } entity Dept { Dname: char key; } })GOLD",
    R"GOLD(equiv s1.Student.Name s2.Pupil.Name)GOLD",
    R"GOLD(equiv s1.Department.Dname s2.Dept.Dname)GOLD",
    R"GOLD(assert s1.Student 1 s2.Pupil)GOLD",
    R"GOLD(assert s1.Student 9 s2.Pupil)GOLD",
    R"GOLD(assert s1.Department 0 s2.Dept)GOLD",
    R"GOLD(integrate)GOLD",
    R"GOLD(outline)GOLD",
    R"GOLD(rank s1 s2 zero)GOLD",
    R"GOLD(rank s1 s2)GOLD",
    R"GOLD(suggest s1 s2)GOLD",
    R"GOLD(suggest s1 s2 0.9)GOLD",
    R"GOLD(translate s1.Student)GOLD",
    R"GOLD(export)GOLD",
    R"GOLD(bogus verb)GOLD",
    R"GOLD(deadline -4)GOLD",
    R"GOLD(deadline default)GOLD",
    R"GOLD(close)GOLD",
    R"GOLD(rank s1 s2)GOLD",
};

constexpr std::string_view kGoldenTranscript = R"GOLD(ok
pong
.
err BAD_REQUEST no session; send: open [project]
.
ok
s1
.
ok
s1
s2
.
ok
declared s1.Student.Name = s2.Pupil.Name
.
ok
declared s1.Department.Dname = s2.Dept.Dname
.
ok
asserted s1.Student 1 s2.Pupil
.
err BAD_REQUEST INVALID_ARGUMENT: assertion code must be 0-5, got 9
.
ok
asserted s1.Department 0 s2.Dept
.
ok
schema integrated
  entity E_Stud_Pupi  (equivalent)
    D_Name: char key
    GPA: real
    Addr: char
  entity Department
    Dname: char key
  entity Dept
    Dname: char key
  relationship Majors (E_Stud_Pupi [1,1], Department [0,n])
derived E_Stud_Pupi.D_Name <- s1.Student.Name s2.Pupil.Name
.
ok
schema integrated
  entity E_Stud_Pupi  (equivalent)
    D_Name: char key
    GPA: real
    Addr: char
  entity Department
    Dname: char key
  entity Dept
    Dname: char key
  relationship Majors (E_Stud_Pupi [1,1], Department [0,n])
.
ok
s1.Department s2.Dept 0.5000
s1.Student s2.Pupil 0.3333
s1.Department s2.Pupil 0.0000
s1.Student s2.Dept 0.0000
.
ok
s1.Department s2.Dept 0.5000
s1.Student s2.Pupil 0.3333
.
ok
s1.Department.Dname = s2.Dept.Dname  # name similarity (1.00)
s1.Student.Name = s2.Pupil.Name  # name similarity (1.00)
s1.Department.Dname = s2.Pupil.Name  # name similarity (0.86)
s1.Student.Name = s2.Dept.Dname  # name similarity (0.86)
.
ok
s1.Department.Dname = s2.Dept.Dname  # name similarity (1.00)
s1.Student.Name = s2.Pupil.Name  # name similarity (1.00)
s1.Department.Dname = s2.Pupil.Name  # name similarity (0.86)
s1.Student.Name = s2.Dept.Dname  # name similarity (0.86)
.
ok
SELECT * FROM integrated.E_Stud_Pupi
.
ok
# ecrint project file
%schemas
schema s1 {
  entity Student {
    Name: char key;
    GPA: real;
  }
  entity Department {
    Dname: char key;
  }
  relationship Majors (Student [1,1], Department [0,n]);
}
schema s2 {
  entity Pupil {
    Name: char key;
    Addr: char;
  }
  entity Dept {
    Dname: char key;
  }
}
%equivalences
s1.Student.Name = s2.Pupil.Name
s1.Department.Dname = s2.Dept.Dname
%assertions
s1.Student 1 s2.Pupil
s1.Department 0 s2.Dept
.
err BAD_REQUEST unknown verb 'bogus'
.
err BAD_REQUEST deadline must be >= 0 ms
.
ok
.
ok
.
err BAD_REQUEST no session; send: open [project]
.
)GOLD";

TEST(GoldenTranscriptTest, TextProtocolV1IsByteIdentical) {
  ServiceConfig config;
  IntegrationService service(config);
  RequestRouter router(&service);
  RouterSession session;
  std::string got;
  for (const char* line : kGoldenScript) {
    got += router.HandleLine(line, &session);
  }
  EXPECT_EQ(got, kGoldenTranscript);
}

TEST(GoldenTranscriptTest, EveryGoldenFrameParsesBack) {
  ServiceConfig config;
  IntegrationService service(config);
  RequestRouter router(&service);
  RouterSession session;
  for (const char* line : kGoldenScript) {
    std::string frame = router.HandleLine(line, &session);
    Result<ServiceResponse> parsed = ParseResponse(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message() << " for: " << line;
    std::string again = FormatResponse(*parsed);
    EXPECT_EQ(again, frame) << "parse-format not identity for: " << line;
  }
}

}  // namespace
}  // namespace ecrint::service
