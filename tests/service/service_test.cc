// The service plane end to end: verb semantics over sessions, admission
// control (queue depth, deadlines) driven by a ManualClock — no test ever
// sleeps — engine-failure mapping onto the four wire codes, idle-session
// reaping, and the router's line protocol.

#include "service/service.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "service/protocol.h"
#include "service/router.h"

namespace ecrint::service {
namespace {

constexpr const char* kUniversityDdl =
    "schema sc1 { entity Student { Name: char key; GPA: real; } }\n"
    "schema sc2 { entity Grad { Name: char key; GPA: real; } }";

// A service on a manual clock plus one open session, the fixture every
// test starts from.
class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    config_.clock = &clock_;
    service_ = std::make_unique<IntegrationService>(config_);
    session_ = service_->OpenSession("uni");
  }

  // Declares the standard equivalences and asserts Student = Grad.
  void SeedProject() {
    ASSERT_TRUE(service_->Define(session_, kUniversityDdl).ok());
    ASSERT_TRUE(service_
                    ->DeclareEquivalence(session_,
                                         {"sc1", "Student", "Name"},
                                         {"sc2", "Grad", "Name"})
                    .ok());
    ASSERT_TRUE(service_
                    ->DeclareEquivalence(session_, {"sc1", "Student", "GPA"},
                                         {"sc2", "Grad", "GPA"})
                    .ok());
    ASSERT_TRUE(service_
                    ->AssertRelation(session_, {"sc1", "Student"},
                                     /*type_code=*/1, {"sc2", "Grad"})
                    .ok());
  }

  common::ManualClock clock_;
  ServiceConfig config_;
  std::unique_ptr<IntegrationService> service_;
  std::string session_;
};

TEST_F(ServiceTest, WriteReadPipeline) {
  SeedProject();
  ServiceResponse integrated = service_->Integrate(session_, {});
  ASSERT_TRUE(integrated.ok());
  EXPECT_FALSE(integrated.lines.empty());

  ServiceResponse ranked = service_->RankedPairs(
      session_, "sc1", "sc2", core::StructureKind::kObjectClass,
      /*include_zero=*/true);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.lines.size(), 1u);
  // Two shared attribute classes across four attribute slots.
  EXPECT_EQ(ranked.lines[0], "sc1.Student sc2.Grad 0.5000");

  ServiceResponse outline = service_->IntegratedOutline(session_);
  ASSERT_TRUE(outline.ok());
  EXPECT_FALSE(outline.lines.empty());

  ServiceResponse exported = service_->ExportProject(session_);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported.lines[0], "# ecrint project file");
}

TEST_F(ServiceTest, UnknownSessionIsBadRequest) {
  ServiceResponse response = service_->IntegratedOutline("s999");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, ServiceErrorCode::kBadRequest);
}

TEST_F(ServiceTest, ConflictingAssertionMapsToConflict) {
  SeedProject();
  // Student = Grad already holds; DISJOINT contradicts it.
  ServiceResponse response = service_->AssertRelation(
      session_, {"sc1", "Student"}, /*type_code=*/0, {"sc2", "Grad"});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, ServiceErrorCode::kConflict);
  EXPECT_FALSE(response.error->message.empty());
}

TEST_F(ServiceTest, ExpiredDeadlineIsTimeout) {
  SeedProject();
  clock_.AdvanceNs(1'000'000);
  // An absolute deadline already in the past: refused before execution.
  ServiceResponse response =
      service_->IntegratedOutline(session_, /*deadline_ns=*/500'000);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, ServiceErrorCode::kTimeout);
}

TEST_F(ServiceTest, QueueDepthZeroShedsEverything) {
  ServiceConfig config;
  config.clock = &clock_;
  config.queue_depth = 0;
  IntegrationService strict(config);
  std::string session = strict.OpenSession("p");
  ServiceResponse response = strict.Define(session, kUniversityDdl);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, ServiceErrorCode::kOverloaded);
}

TEST_F(ServiceTest, IdleSessionsAreReaped) {
  std::string idle = service_->OpenSession("uni");
  EXPECT_EQ(service_->sessions().size(), 2);
  // Activity keeps a session alive across the timeout window...
  clock_.AdvanceNs(config_.session_idle_timeout_ns / 2);
  ASSERT_TRUE(service_->Define(session_, kUniversityDdl).ok());
  clock_.AdvanceNs(config_.session_idle_timeout_ns / 2 + 1);
  // ...while `idle` is now past its lease: the next request from anyone
  // reaps it (opportunistic, no timer thread), and its own requests fail.
  ASSERT_TRUE(service_
                  ->DeclareEquivalence(session_, {"sc1", "Student", "Name"},
                                       {"sc2", "Grad", "Name"})
                  .ok());
  EXPECT_EQ(service_->sessions().size(), 1);
  ServiceResponse stale = service_->IntegratedOutline(idle);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error->code, ServiceErrorCode::kBadRequest);
}

TEST_F(ServiceTest, SnapshotIsolatesReadersFromWrites) {
  SeedProject();
  ASSERT_TRUE(service_->Integrate(session_, {}).ok());
  std::shared_ptr<const EngineSnapshot> held =
      service_->CurrentSnapshot(session_);
  ASSERT_NE(held, nullptr);

  // A write after the grab does not disturb the held snapshot.
  ASSERT_TRUE(
      service_->Define(session_, "schema sc3 { entity E { A: char key; } }")
          .ok());
  EXPECT_EQ(held->catalog->SchemaNames().size(), 2u);
  std::shared_ptr<const EngineSnapshot> fresh =
      service_->CurrentSnapshot(session_);
  EXPECT_EQ(fresh->catalog->SchemaNames().size(), 3u);
  // The untouched integration result is shared, not copied.
  EXPECT_EQ(held->integration.get(), fresh->integration.get());
}

TEST_F(ServiceTest, MetricsCountRequestsAndErrors) {
  SeedProject();
  (void)service_->IntegratedOutline("s999");  // BAD_REQUEST
  std::string json = service_->metrics().MetricsJson();
  EXPECT_NE(json.find("\"requests.define\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"requests.equiv\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"errors.BAD_REQUEST\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"snapshots.published\""), std::string::npos);
  EXPECT_NE(json.find("latency.define"), std::string::npos);
}

TEST_F(ServiceTest, ClosureMetricsSurfaceKernelActivity) {
  SeedProject();
  // Integrate seeds schema structure through the closure kernel, so the
  // closure.* instruments must show pops/narrowings and a kernel sample.
  ASSERT_TRUE(service_->Integrate(session_, {}).ok());
  std::string json = service_->metrics().MetricsJson();
  EXPECT_NE(json.find("closure.worklist_pops"), std::string::npos);
  EXPECT_NE(json.find("closure.row_compositions"), std::string::npos);
  EXPECT_NE(json.find("closure.narrowings"), std::string::npos);
  EXPECT_NE(json.find("closure.kernel"), std::string::npos);
  EXPECT_NE(json.find("closure.clusters"), std::string::npos);
  EXPECT_GT(service_->metrics().GetCounter("closure.worklist_pops")->value(),
            0);
  // A rejected contradiction bumps the conflict counter.
  ASSERT_FALSE(service_
                   ->AssertRelation(session_, {"sc1", "Student"},
                                    /*type_code=*/0, {"sc2", "Grad"})
                   .ok());
  EXPECT_GT(service_->metrics().GetCounter("closure.conflicts")->value(), 0);
}

// --- router / line protocol ----------------------------------------------

class RouterTest : public ServiceTest {
 protected:
  RouterTest() : router_(service_.get()) {}

  // Sends one line, expects success, returns the payload lines.
  std::vector<std::string> Ok(const std::string& line) {
    Result<ServiceResponse> response =
        ParseResponse(router_.HandleLine(line, &wire_session_));
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_TRUE(response->ok()) << line << ": "
                                << response->error->message;
    return response->lines;
  }

  // Sends one line, expects failure, returns the error.
  ServiceError Err(const std::string& line) {
    Result<ServiceResponse> response =
        ParseResponse(router_.HandleLine(line, &wire_session_));
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_FALSE(response->ok()) << line;
    return response->error.value_or(ServiceError{});
  }

  RequestRouter router_;
  RouterSession wire_session_;
};

TEST_F(RouterTest, FullSessionOverTheWire) {
  EXPECT_EQ(Ok("ping"), std::vector<std::string>{"pong"});
  Ok("open uni2");
  Ok("define " + EscapeField(kUniversityDdl));
  Ok("equiv sc1.Student.Name sc2.Grad.Name");
  Ok("equiv sc1.Student.GPA sc2.Grad.GPA");
  Ok("assert sc1.Student 1 sc2.Grad");
  std::vector<std::string> ranked = Ok("rank sc1 sc2 zero");
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], "sc1.Student sc2.Grad 0.5000");
  EXPECT_FALSE(Ok("integrate").empty());
  EXPECT_FALSE(Ok("outline").empty());
  EXPECT_FALSE(Ok("suggest sc1 sc2").empty());
  Ok("close");
}

TEST_F(RouterTest, VerbsRequireASession) {
  ServiceError error = Err("outline");
  EXPECT_EQ(error.code, ServiceErrorCode::kBadRequest);
}

TEST_F(RouterTest, UnknownVerbAndBadArguments) {
  Ok("open uni");
  EXPECT_EQ(Err("frobnicate").code, ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("equiv one two").code, ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("assert sc1.Student nine sc2.Grad").code,
            ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("rank sc1").code, ServiceErrorCode::kBadRequest);
}

TEST_F(RouterTest, DeadlineZeroExpiresEveryRequest) {
  // A nonzero clock, so the computed absolute deadline (now + 0) is
  // distinguishable from the "no deadline set" sentinel 0.
  clock_.AdvanceNs(1);
  Ok("open uni");
  Ok("deadline 0");
  EXPECT_EQ(Err("outline").code, ServiceErrorCode::kTimeout);
  Ok("deadline default");
  SeedProject();  // direct API writes still work
  ASSERT_TRUE(service_->Integrate(session_, {}).ok());
  EXPECT_FALSE(Ok("outline").empty());
}

TEST_F(RouterTest, AsyncMatchesSynchronous) {
  Ok("open uni");
  Ok("define " + EscapeField(kUniversityDdl));
  std::string sync = router_.HandleLine("rank sc1 sc2 zero",
                                        &wire_session_);
  std::string async;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  router_.HandleLineAsync("rank sc1 sc2 zero", &wire_session_,
                          [&](std::string response) {
                            std::lock_guard<std::mutex> lock(mutex);
                            async = std::move(response);
                            done = true;
                            cv.notify_one();
                          });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(sync, async);
}

TEST_F(RouterTest, DemoteRejectsMalformedEpochs) {
  Ok("open uni");
  // strtoull on its own would accept every one of these: "-1" negates to
  // 2^64-1, "+2" parses, overflow saturates silently. Any of them poisons
  // the fence — epoch 2^64-1 can never be superseded because promote's
  // epoch+1 wraps to 0.
  EXPECT_EQ(Err("demote -1 10.0.0.9:7400").code,
            ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("demote +2 10.0.0.9:7400").code,
            ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("demote 2x 10.0.0.9:7400").code,
            ServiceErrorCode::kBadRequest);
  EXPECT_EQ(Err("demote 99999999999999999999 10.0.0.9:7400").code,
            ServiceErrorCode::kBadRequest);  // ERANGE
  EXPECT_EQ(Err("demote 18446744073709551615 10.0.0.9:7400").code,
            ServiceErrorCode::kBadRequest);  // 2^64-1: increment would wrap
  // The largest usable epoch and a plain small one still parse.
  EXPECT_FALSE(Ok("demote 2 10.0.0.9:7400").empty());
  EXPECT_FALSE(Ok("demote 18446744073709551614 10.0.0.9:7400").empty());
}

}  // namespace
}  // namespace ecrint::service
