// Crash recovery, end to end: checkpoint format roundtrips, the
// crash-at-every-byte property (recovered state is Stamp()-identical to a
// serial replay of whatever journal prefix survived), the fault-injection
// matrix (a dying journal device flips the project to degraded read-only
// instead of crashing or corrupting), and checkpoint-failure semantics.

#include "service/recovery.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/fs.h"
#include "engine/engine.h"
#include "engine/replay.h"
#include "service/journal.h"
#include "service/service.h"

namespace ecrint::service {
namespace {

constexpr const char* kUniversityDdl =
    "schema sc1 { entity Student { Name: char key; GPA: real; } }\n"
    "schema sc2 { entity Grad { Name: char key; GPA: real; } }";

// --- checkpoint format -----------------------------------------------------

TEST(CheckpointTest, SerializeParseRoundtrip) {
  Checkpoint checkpoint;
  checkpoint.seq = 42;
  checkpoint.stamp = {3, 7, 1, 2, 5};
  checkpoint.integrated = true;
  checkpoint.integrated_schemas = {"sc1", "sc2"};
  checkpoint.project_text = "%schema sc1\nentity Student\n";

  Result<Checkpoint> parsed = ParseCheckpoint(SerializeCheckpoint(checkpoint));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->stamp, checkpoint.stamp);
  EXPECT_TRUE(parsed->integrated);
  EXPECT_EQ(parsed->integrated_schemas, checkpoint.integrated_schemas);
  EXPECT_EQ(parsed->project_text, checkpoint.project_text);
}

TEST(CheckpointTest, RoundtripWithoutIntegration) {
  Checkpoint checkpoint;
  checkpoint.seq = 1;
  checkpoint.stamp = {1, 1, 0, 0, 0};
  checkpoint.project_text = "x";
  Result<Checkpoint> parsed = ParseCheckpoint(SerializeCheckpoint(checkpoint));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->integrated);
  EXPECT_TRUE(parsed->integrated_schemas.empty());
}

TEST(CheckpointTest, EpochRoundtripsInBothFormatsAndZeroIsOmitted) {
  Checkpoint checkpoint;
  checkpoint.seq = 5;
  checkpoint.stamp = {1, 1, 0, 0, 0};
  checkpoint.project_text = "x";

  // Epoch 0 (failover never happened) is not emitted at all, so every
  // checkpoint written before epochs existed stays byte-identical.
  std::string v1 = SerializeCheckpoint(checkpoint);
  EXPECT_EQ(v1.find("epoch"), std::string::npos);
  std::string v2 = SerializeCheckpointV2(checkpoint);
  EXPECT_EQ(v2.find("epoch"), std::string::npos);
  Result<Checkpoint> parsed_v1 = ParseCheckpoint(v1);
  ASSERT_TRUE(parsed_v1.ok());
  EXPECT_EQ(parsed_v1->epoch, 0u);

  // A promoted leader's fence survives both serializers.
  checkpoint.epoch = 3;
  parsed_v1 = ParseCheckpoint(SerializeCheckpoint(checkpoint));
  ASSERT_TRUE(parsed_v1.ok());
  EXPECT_EQ(parsed_v1->epoch, 3u);
  Result<CheckpointView> parsed_v2 =
      ParseCheckpointAny(SerializeCheckpointV2(checkpoint));
  ASSERT_TRUE(parsed_v2.ok()) << parsed_v2.status().ToString();
  EXPECT_EQ(parsed_v2->epoch, 3u);
  EXPECT_EQ(parsed_v2->seq, 5u);
}

TEST(CheckpointTest, RejectsDamage) {
  Checkpoint checkpoint;
  checkpoint.seq = 9;
  checkpoint.stamp = {1, 1, 0, 0, 0};
  std::string good = SerializeCheckpoint(checkpoint);

  EXPECT_FALSE(ParseCheckpoint("").ok());
  EXPECT_FALSE(ParseCheckpoint("not a checkpoint\n").ok());
  // Wrong magic/version line.
  EXPECT_FALSE(ParseCheckpoint("ecrint-checkpoint v9\nseq 1\n").ok());
  // Truncation that loses the stamp line.
  EXPECT_FALSE(ParseCheckpoint(good.substr(0, good.find("stamp"))).ok());
  // Garbage where the sequence number belongs.
  std::string bad_seq = good;
  bad_seq.replace(bad_seq.find("seq 9"), 5, "seq x");
  EXPECT_FALSE(ParseCheckpoint(bad_seq).ok());
}

// --- checkpoint v2 (sectioned, mmap-parseable) -----------------------------

Checkpoint SampleCheckpoint() {
  Checkpoint checkpoint;
  checkpoint.seq = 42;
  checkpoint.stamp = {3, 7, 1, 2, 5};
  checkpoint.integrated = true;
  checkpoint.integrated_schemas = {"sc1", "sc2"};
  checkpoint.project_text = "%schema sc1\nentity Student\n";
  return checkpoint;
}

TEST(CheckpointV2Test, SerializeParseRoundtrip) {
  Checkpoint checkpoint = SampleCheckpoint();
  std::string bytes = SerializeCheckpointV2(checkpoint);
  ASSERT_EQ(bytes.substr(0, kCheckpointV2Magic.size()), kCheckpointV2Magic);

  Result<CheckpointView> parsed = ParseCheckpointAny(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_TRUE(parsed->stamp == checkpoint.stamp);
  EXPECT_TRUE(parsed->integrated);
  EXPECT_EQ(parsed->integrated_schemas, checkpoint.integrated_schemas);
  EXPECT_EQ(parsed->project_text, checkpoint.project_text);
  // Zero-copy: the view aliases the serialized buffer, no private copy.
  EXPECT_GE(parsed->project_text.data(), bytes.data());
  EXPECT_LE(parsed->project_text.data() + parsed->project_text.size(),
            bytes.data() + bytes.size());
}

TEST(CheckpointV2Test, V1FormatStillParses) {
  Checkpoint checkpoint = SampleCheckpoint();
  std::string v1 = SerializeCheckpoint(checkpoint);
  Result<CheckpointView> parsed = ParseCheckpointAny(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_TRUE(parsed->stamp == checkpoint.stamp);
  EXPECT_EQ(parsed->integrated_schemas, checkpoint.integrated_schemas);
  EXPECT_EQ(parsed->project_text, checkpoint.project_text);
}

// The torn-file property: a v2 checkpoint truncated at ANY byte boundary
// — inside the magic, the header, the section table, or a section body —
// is rejected with a clean error, never a crash or a half-parsed state.
TEST(CheckpointV2Test, TruncationAtEveryByteIsRejected) {
  std::string bytes = SerializeCheckpointV2(SampleCheckpoint());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<CheckpointView> parsed = ParseCheckpointAny(bytes.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut at " << cut << " parsed anyway";
  }
}

// Single-bit corruption anywhere past the magic is caught by the table or
// section checksums.
TEST(CheckpointV2Test, FlippedByteIsRejected) {
  std::string good = SerializeCheckpointV2(SampleCheckpoint());
  for (size_t at : {kCheckpointV2Magic.size() + 1,  // header
                    kCheckpointV2HeaderBytes + 2,   // section table
                    good.size() - 3}) {             // project section body
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    EXPECT_FALSE(ParseCheckpointAny(bad).ok()) << "flip at " << at;
  }
}

// Sections with unknown tags are skipped (forward compatibility): a newer
// writer may add sections an old reader has never heard of.
TEST(CheckpointV2Test, UnknownSectionTagIsSkipped) {
  std::string bytes = SerializeCheckpointV2(SampleCheckpoint());
  // Patch the PROJECT entry's tag to an unknown value; the parser must
  // then complain about the MISSING project section, proving it skipped
  // the unknown tag without tripping over its (now unchecked) payload.
  size_t project_entry = kCheckpointV2HeaderBytes + kCheckpointV2EntryBytes;
  std::string bad = bytes;
  bad[project_entry] = 0x77;  // tag low byte: kSectionProject -> unknown
  // Re-stamp the table checksum for the patched table.
  std::string_view table(bad.data() + kCheckpointV2HeaderBytes,
                         2 * kCheckpointV2EntryBytes);
  uint32_t crc = common::Crc32c(table);
  bad[12] = static_cast<char>(crc & 0xFF);
  bad[13] = static_cast<char>((crc >> 8) & 0xFF);
  bad[14] = static_cast<char>((crc >> 16) & 0xFF);
  bad[15] = static_cast<char>((crc >> 24) & 0xFF);
  Result<CheckpointView> parsed = ParseCheckpointAny(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("missing"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ProjectDirNameTest, EncodesHostileNames) {
  EXPECT_EQ(ProjectDirName("uni"), "uni");
  EXPECT_EQ(ProjectDirName("a_b-C9"), "a_b-C9");
  // Path separators and dots are neutralized: no escape from the data dir.
  std::string evil = ProjectDirName("../evil");
  EXPECT_EQ(evil.find('/'), std::string::npos);
  EXPECT_EQ(evil.find('.'), std::string::npos);
  EXPECT_NE(ProjectDirName("a/b"), ProjectDirName("a%2Fb"));
  EXPECT_NE(ProjectDirName("a b"), ProjectDirName("a_b"));
}

// --- shared machinery for the property tests -------------------------------

// The scripted mutation sequence the property tests journal: all four verb
// kinds, including two the engine REJECTS (the WAL is written before the
// engine runs, so rejected verbs are journaled too and must replay to the
// same rejection).
std::vector<engine::ReplayVerb> ScriptVerbs() {
  std::vector<engine::ReplayVerb> verbs;
  verbs.push_back(engine::DefineVerb(kUniversityDdl));
  verbs.push_back(engine::DefineVerb("schema broken {"));  // rejected: parse
  verbs.push_back(engine::EquivalenceVerb({"sc1", "Student", "Name"},
                                          {"sc2", "Grad", "Name"}));
  verbs.push_back(engine::EquivalenceVerb({"sc1", "Student", "Nope"},
                                          {"sc2", "Grad", "Name"}));  // rejected
  verbs.push_back(engine::EquivalenceVerb({"sc1", "Student", "GPA"},
                                          {"sc2", "Grad", "GPA"}));
  verbs.push_back(engine::RelationVerb({"sc1", "Student"}, /*type_code=*/1,
                                       {"sc2", "Grad"}));
  verbs.push_back(engine::IntegrateVerb({}));
  verbs.push_back(
      engine::DefineVerb("schema sc3 { entity Alum { Name: char key; } }"));
  verbs.push_back(engine::EquivalenceVerb({"sc1", "Student", "Name"},
                                          {"sc3", "Alum", "Name"}));
  verbs.push_back(engine::IntegrateVerb({}));
  return verbs;
}

// Routes a ReplayVerb through the real service entry point for its kind.
ServiceResponse Drive(IntegrationService& service, const std::string& session,
                      const engine::ReplayVerb& verb) {
  switch (verb.kind) {
    case engine::ReplayVerb::Kind::kDefine:
      return service.Define(session, verb.ddl);
    case engine::ReplayVerb::Kind::kEquivalence:
      return service.DeclareEquivalence(session, verb.first_path,
                                        verb.second_path);
    case engine::ReplayVerb::Kind::kRelation:
      return service.AssertRelation(session, verb.first, verb.type_code,
                                    verb.second);
    case engine::ReplayVerb::Kind::kIntegrate:
      return service.Integrate(session, verb.schemas);
  }
  return {};
}

struct ReferenceState {
  engine::EngineStamp stamp;
  std::string exported;
};

// Ground truth: a fresh engine taken through the service plane's exact
// replay sequence for the first `count` verbs.
ReferenceState SerialReplay(const std::vector<engine::ReplayVerb>& verbs,
                            size_t count) {
  engine::Engine engine;
  engine::BeginReplay(engine);
  for (size_t i = 0; i < count; ++i) {
    (void)engine::ApplyReplayVerb(engine, verbs[i]);
  }
  ReferenceState reference;
  reference.stamp = engine.Stamp();
  reference.exported = engine.ExportProject();
  return reference;
}

constexpr const char* kProjectDir = "data/uni";
constexpr const char* kJournalPath = "data/uni/journal.wal";
constexpr const char* kCheckpointPath = "data/uni/checkpoint.ecr";

// Drives the script through a durable service over `fs` and returns the
// per-verb responses.
std::vector<ServiceResponse> RunScript(common::Fs* fs,
                                       int checkpoint_interval) {
  ServiceConfig config;
  config.data_dir = "data";
  config.fs = fs;
  config.durability.checkpoint_interval_records = checkpoint_interval;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");
  std::vector<ServiceResponse> responses;
  for (const engine::ReplayVerb& verb : ScriptVerbs()) {
    responses.push_back(Drive(service, session, verb));
  }
  return responses;
}

// --- the tentpole property test --------------------------------------------

// Journal K verbs through the real service, then simulate a crash at EVERY
// byte boundary of the journal: recovery must reproduce exactly the state
// a serial replay of the surviving whole-record prefix produces —
// identical EngineStamp, identical project export — and must truncate the
// torn tail so the journal is append-ready again.
TEST(RecoveryPropertyTest, CrashAtEveryByteMatchesSerialReplay) {
  common::MemFs fs;
  std::vector<ServiceResponse> responses =
      RunScript(&fs, /*checkpoint_interval=*/0);
  // The script's two poisoned verbs really were rejected (and journaled).
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_FALSE(responses[3].ok());
  EXPECT_TRUE(responses[9].ok());

  Result<std::string> journal = fs.ReadFileToString(kJournalPath);
  ASSERT_TRUE(journal.ok());
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();
  JournalScanResult full = ScanJournal(*journal);
  ASSERT_TRUE(full.clean);
  ASSERT_EQ(full.records.size(), verbs.size());

  // Precompute the serial-replay reference for every prefix length.
  std::vector<ReferenceState> references;
  for (size_t k = 0; k <= verbs.size(); ++k) {
    references.push_back(SerialReplay(verbs, k));
  }

  for (size_t cut = 0; cut <= journal->size(); ++cut) {
    common::MemFs crashed;
    crashed.SetFile(kJournalPath, journal->substr(0, cut));

    engine::Engine engine;
    RecoveryStats stats;
    auto manager =
        RecoveryManager::Open(&crashed, kProjectDir, DurabilityOptions{},
                              engine, &stats, /*metrics=*/nullptr);
    ASSERT_TRUE(manager.ok()) << "cut at " << cut << ": "
                              << manager.status().ToString();

    JournalScanResult prefix = ScanJournal(journal->substr(0, cut));
    size_t k = prefix.records.size();
    EXPECT_EQ(stats.replayed_records, static_cast<int64_t>(k))
        << "cut at " << cut;
    EXPECT_EQ(stats.truncated_bytes,
              static_cast<int64_t>(cut - prefix.valid_bytes))
        << "cut at " << cut;
    EXPECT_TRUE(engine.Stamp() == references[k].stamp) << "cut at " << cut;
    EXPECT_EQ(engine.ExportProject(), references[k].exported)
        << "cut at " << cut;
    // The torn tail is gone and sequencing resumes after the survivors.
    EXPECT_EQ(crashed.ReadFileToString(kJournalPath)->size(),
              prefix.valid_bytes)
        << "cut at " << cut;
    uint64_t last_seq = k == 0 ? 0 : prefix.records.back().seq;
    EXPECT_EQ((*manager)->next_seq(), last_seq + 1) << "cut at " << cut;
  }
}

// Same property with checkpoints in the mix: crashes land on a journal
// that only holds the suffix past the last checkpoint, and recovery =
// checkpoint restore + suffix replay must still match a full serial
// replay from scratch.
TEST(RecoveryPropertyTest, CrashAtEveryByteWithCheckpoint) {
  common::MemFs fs;
  RunScript(&fs, /*checkpoint_interval=*/4);

  Result<std::string> checkpoint_bytes = fs.ReadFileToString(kCheckpointPath);
  ASSERT_TRUE(checkpoint_bytes.ok());
  // The service writes v2 sectioned checkpoints now.
  Result<CheckpointView> checkpoint = ParseCheckpointAny(*checkpoint_bytes);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_GT(checkpoint->seq, 0u);

  Result<std::string> journal = fs.ReadFileToString(kJournalPath);
  ASSERT_TRUE(journal.ok());
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();
  ASSERT_LT(checkpoint->seq, verbs.size());  // suffix is non-empty

  for (size_t cut = 0; cut <= journal->size(); ++cut) {
    common::MemFs crashed;
    crashed.SetFile(kCheckpointPath, *checkpoint_bytes);
    crashed.SetFile(kJournalPath, journal->substr(0, cut));

    engine::Engine engine;
    RecoveryStats stats;
    auto manager =
        RecoveryManager::Open(&crashed, kProjectDir, DurabilityOptions{},
                              engine, &stats, /*metrics=*/nullptr);
    ASSERT_TRUE(manager.ok()) << "cut at " << cut << ": "
                              << manager.status().ToString();
    EXPECT_TRUE(stats.restored_checkpoint) << "cut at " << cut;
    EXPECT_EQ(stats.checkpoint_seq, checkpoint->seq) << "cut at " << cut;

    JournalScanResult prefix = ScanJournal(journal->substr(0, cut));
    size_t applied = checkpoint->seq + prefix.records.size();
    ReferenceState reference = SerialReplay(verbs, applied);
    EXPECT_TRUE(engine.Stamp() == reference.stamp) << "cut at " << cut;
    EXPECT_EQ(engine.ExportProject(), reference.exported)
        << "cut at " << cut;
  }
}

// A recovered service keeps working: restart on the same filesystem, read
// the project back, and append new mutations.
TEST(RecoveryTest, ServiceRestartResumesWriting) {
  common::MemFs fs;
  std::string exported_before;
  {
    ServiceConfig config;
    config.data_dir = "data";
    config.fs = &fs;
    IntegrationService service(config);
    std::string session = service.OpenSession("uni");
    ASSERT_TRUE(service.Define(session, kUniversityDdl).ok());
    ServiceResponse exported = service.ExportProject(session);
    ASSERT_TRUE(exported.ok());
    exported_before = exported.lines.empty() ? "" : exported.lines[0];
  }
  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &fs;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");
  ServiceResponse exported = service.ExportProject(session);
  ASSERT_TRUE(exported.ok());
  ASSERT_FALSE(exported.lines.empty());
  EXPECT_EQ(exported.lines[0], exported_before);
  // The journal position carried over: new writes land after the old.
  EXPECT_TRUE(service
                  .DeclareEquivalence(session, {"sc1", "Student", "Name"},
                                      {"sc2", "Grad", "Name"})
                  .ok());
  JournalScanResult scan = ScanJournal(*fs.ReadFileToString(kJournalPath));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].seq, 2u);
}

// --- fault-injection matrix ------------------------------------------------

// For every append index in the script: the failing write returns
// UNAVAILABLE with a retry-after hint, nothing after it mutates, reads
// still serve, and a restart on the surviving bytes recovers exactly the
// serial replay of the journaled prefix.
TEST(RecoveryFaultTest, AppendFailureAtEveryIndexDegradesThenRecovers) {
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();
  for (size_t fail_at = 0; fail_at < verbs.size(); ++fail_at) {
    common::MemFs base;
    common::FaultPlan plan;
    plan.fail_append_at = static_cast<int64_t>(fail_at);
    common::FaultInjectingFs faulty(&base, plan);

    ServiceConfig config;
    config.data_dir = "data";
    config.fs = &faulty;
    config.durability.checkpoint_interval_records = 0;
    config.durability.degraded_retry_after_ms = 1234;
    IntegrationService service(config);
    std::string session = service.OpenSession("uni");

    for (size_t i = 0; i < verbs.size(); ++i) {
      ServiceResponse response = Drive(service, session, verbs[i]);
      if (i < fail_at) continue;  // pre-fault behaviour covered elsewhere
      // The faulted write and everything after it: UNAVAILABLE + hint.
      ASSERT_FALSE(response.ok()) << "fail_at=" << fail_at << " verb " << i;
      EXPECT_EQ(response.error->code, ServiceErrorCode::kUnavailable)
          << "fail_at=" << fail_at << " verb " << i;
      EXPECT_EQ(response.error->retry_after_ms, 1234);
    }
    EXPECT_EQ(service.metrics().GetCounter("journal.degraded_flips")->value(),
              1);
    // Reads still work against the last published snapshot.
    EXPECT_TRUE(service.ExportProject(session).ok());
    ASSERT_TRUE(service.CurrentSnapshot(session) != nullptr);

    // Restart on the surviving device: state == serial replay of the
    // journaled prefix (the faulted record never made it in whole).
    Result<std::string> journal = base.ReadFileToString(kJournalPath);
    std::string surviving = journal.ok() ? *journal : std::string();
    JournalScanResult scan = ScanJournal(surviving);
    EXPECT_EQ(scan.records.size(), fail_at);

    common::MemFs recovered_fs;
    recovered_fs.SetFile(kJournalPath, surviving);
    engine::Engine engine;
    RecoveryStats stats;
    auto manager =
        RecoveryManager::Open(&recovered_fs, kProjectDir, DurabilityOptions{},
                              engine, &stats, /*metrics=*/nullptr);
    ASSERT_TRUE(manager.ok());
    ReferenceState reference = SerialReplay(verbs, scan.records.size());
    EXPECT_TRUE(engine.Stamp() == reference.stamp) << "fail_at=" << fail_at;
    EXPECT_EQ(engine.ExportProject(), reference.exported);
  }
}

// Same matrix for short writes: the failure tears a record mid-byte, and
// recovery must drop the torn tail, not trip over it.
TEST(RecoveryFaultTest, ShortWriteTornTailIsDroppedOnRecovery) {
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();
  for (size_t torn_bytes : {1u, 7u, 15u, 17u, 40u}) {
    common::MemFs base;
    common::FaultPlan plan;
    plan.fail_append_at = 4;
    plan.short_write_bytes = static_cast<int64_t>(torn_bytes);
    common::FaultInjectingFs faulty(&base, plan);

    ServiceConfig config;
    config.data_dir = "data";
    config.fs = &faulty;
    config.durability.checkpoint_interval_records = 0;
    IntegrationService service(config);
    std::string session = service.OpenSession("uni");
    for (const engine::ReplayVerb& verb : verbs) {
      (void)Drive(service, session, verb);
    }

    std::string surviving = *base.ReadFileToString(kJournalPath);
    JournalScanResult scan = ScanJournal(surviving);
    EXPECT_FALSE(scan.clean) << "torn_bytes=" << torn_bytes;
    EXPECT_EQ(scan.records.size(), 4u);

    common::MemFs recovered_fs;
    recovered_fs.SetFile(kJournalPath, surviving);
    engine::Engine engine;
    RecoveryStats stats;
    auto manager =
        RecoveryManager::Open(&recovered_fs, kProjectDir, DurabilityOptions{},
                              engine, &stats, /*metrics=*/nullptr);
    ASSERT_TRUE(manager.ok());
    EXPECT_EQ(stats.truncated_bytes, static_cast<int64_t>(torn_bytes));
    ReferenceState reference = SerialReplay(verbs, 4);
    EXPECT_TRUE(engine.Stamp() == reference.stamp)
        << "torn_bytes=" << torn_bytes;
    EXPECT_EQ(engine.ExportProject(), reference.exported);
  }
}

// Fsync barrier failure counts as device death too: the project degrades
// even though the bytes of the current record reached the file.
TEST(RecoveryFaultTest, SyncFailureDegrades) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_sync_at = 2;
  common::FaultInjectingFs faulty(&base, plan);

  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &faulty;
  IntegrationService service(config);  // fsync=always: one sync per record
  std::string session = service.OpenSession("uni");
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();

  EXPECT_TRUE(Drive(service, session, verbs[0]).ok());
  EXPECT_FALSE(Drive(service, session, verbs[1]).ok());  // engine-rejected
  ServiceResponse faulted = Drive(service, session, verbs[2]);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.error->code, ServiceErrorCode::kUnavailable);
  EXPECT_EQ(service.metrics().GetCounter("journal.degraded_flips")->value(),
            1);
  EXPECT_TRUE(service.ExportProject(session).ok());
}

// Disk-full is not device death: ENOSPC on append degrades the project
// like any journal failure, but distinctly — the error message names the
// full device (an operator frees space rather than replacing hardware),
// the `journal.enospc` counter fires, and the retry-after hint still
// rides the response.
TEST(RecoveryFaultTest, EnospcDegradesDistinctlyWithRetryHint) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_append_at = 1;
  plan.fail_errno = ENOSPC;
  common::FaultInjectingFs faulty(&base, plan);

  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &faulty;
  config.durability.degraded_retry_after_ms = 4321;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();

  EXPECT_TRUE(Drive(service, session, verbs[0]).ok());
  ServiceResponse faulted = Drive(service, session, verbs[2]);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.error->code, ServiceErrorCode::kUnavailable);
  EXPECT_NE(faulted.error->message.find("journal device full"),
            std::string::npos)
      << faulted.error->message;
  EXPECT_EQ(faulted.error->retry_after_ms, 4321);
  EXPECT_EQ(service.metrics().GetCounter("journal.enospc")->value(), 1);
  EXPECT_EQ(service.metrics().GetCounter("journal.degraded_flips")->value(),
            1);
  // Degraded is read-only, not down: snapshots still serve.
  EXPECT_TRUE(service.ExportProject(session).ok());

  // A generic journal failure does NOT claim the disk is full.
  common::MemFs base2;
  common::FaultPlan generic;
  generic.fail_append_at = 1;
  common::FaultInjectingFs faulty2(&base2, generic);
  ServiceConfig config2;
  config2.data_dir = "data";
  config2.fs = &faulty2;
  IntegrationService generic_service(config2);
  std::string session2 = generic_service.OpenSession("uni");
  EXPECT_TRUE(Drive(generic_service, session2, verbs[0]).ok());
  ServiceResponse generic_fault = Drive(generic_service, session2, verbs[2]);
  ASSERT_FALSE(generic_fault.ok());
  EXPECT_EQ(generic_fault.error->message.find("journal device full"),
            std::string::npos);
  EXPECT_EQ(
      generic_service.metrics().GetCounter("journal.enospc")->value(), 0);
}

// A checkpoint that cannot land atomically is non-fatal: writes keep
// flowing, the failure is counted, and recovery still has the full
// journal to replay from.
TEST(RecoveryFaultTest, CheckpointWriteFailureIsNonFatal) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_atomic_write_at = 0;
  plan.sticky = false;  // the device hiccups once, then heals
  common::FaultInjectingFs faulty(&base, plan);

  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &faulty;
  config.durability.checkpoint_interval_records = 2;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");
  std::vector<engine::ReplayVerb> verbs = ScriptVerbs();
  for (const engine::ReplayVerb& verb : verbs) {
    ServiceResponse response = Drive(service, session, verb);
    // Only the two engine-rejected verbs fail; checkpoint trouble never
    // surfaces to the writer.
    if (response.ok()) continue;
    EXPECT_NE(response.error->code, ServiceErrorCode::kUnavailable);
  }
  EXPECT_GE(
      service.metrics().GetCounter("journal.checkpoint_failures")->value(),
      1);
  EXPECT_GE(service.metrics().GetCounter("journal.checkpoints")->value(), 1);
  EXPECT_EQ(service.metrics().GetCounter("journal.degraded_flips")->value(),
            0);
}

// Recovery itself bumps the metrics the operators watch.
TEST(RecoveryTest, RecoveryMetricsAreCharged) {
  common::MemFs fs;
  RunScript(&fs, /*checkpoint_interval=*/0);

  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &fs;
  IntegrationService service(config);
  (void)service.OpenSession("uni");
  EXPECT_EQ(service.metrics().GetCounter("journal.recoveries")->value(), 1);
  EXPECT_EQ(service.metrics().GetCounter("journal.replay.records")->value(),
            static_cast<int64_t>(ScriptVerbs().size()));
  EXPECT_EQ(service.metrics().GetCounter("journal.degraded_flips")->value(),
            0);
}

}  // namespace
}  // namespace ecrint::service
