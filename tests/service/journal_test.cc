#include "service/journal.h"

#include <string>
#include <vector>

#include "common/fs.h"
#include "gtest/gtest.h"

namespace ecrint::service {
namespace {

std::string JournalOf(common::MemFs& fs, const std::string& path = "j") {
  auto content = fs.ReadFileToString(path);
  return content.ok() ? *content : std::string();
}

TEST(JournalRecordTest, EncodeScanRoundtrip) {
  std::string bytes = EncodeJournalRecord(1, "define x");
  bytes += EncodeJournalRecord(2, "equiv a.b.c d.e.f");
  bytes += EncodeJournalRecord(7, "");  // gaps are fine, regressions are not

  JournalScanResult scan = ScanJournal(bytes);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[0].payload, "define x");
  EXPECT_EQ(scan.records[0].offset, 0u);
  EXPECT_EQ(scan.records[1].seq, 2u);
  EXPECT_EQ(scan.records[1].payload, "equiv a.b.c d.e.f");
  EXPECT_EQ(scan.records[2].seq, 7u);
  EXPECT_EQ(scan.records[2].payload, "");
}

TEST(JournalRecordTest, EmptyJournalIsClean) {
  JournalScanResult scan = ScanJournal("");
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

// The central torn-tail property: for EVERY possible crash point (byte
// length) of a multi-record journal, the scan keeps exactly the records
// that fit entirely within the prefix and flags everything else as damage.
TEST(JournalRecordTest, TruncationAtEveryByteKeepsWholeRecordPrefix) {
  std::vector<std::string> payloads = {"define schema", "equiv a.b.c d.e.f",
                                       "assert s.o 3 t.p", "integrate", ""};
  std::string bytes;
  std::vector<size_t> boundaries = {0};  // valid end offsets
  for (size_t i = 0; i < payloads.size(); ++i) {
    bytes += EncodeJournalRecord(i + 1, payloads[i]);
    boundaries.push_back(bytes.size());
  }

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    JournalScanResult scan = ScanJournal(std::string_view(bytes).substr(0, cut));
    // Records survive iff they fit entirely below the cut.
    size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    EXPECT_EQ(scan.records.size(), expect_records) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, boundaries[expect_records])
        << "cut at " << cut;
    bool at_boundary = boundaries[expect_records] == cut;
    EXPECT_EQ(scan.clean, at_boundary) << "cut at " << cut;
    if (!at_boundary) {
      EXPECT_FALSE(scan.damage.empty());
    }
  }
}

// Flipping any single byte of a record must invalidate it (and cut the
// scan there), while preceding records stay valid.
TEST(JournalRecordTest, CorruptionAnywhereInSecondRecordCutsAfterFirst) {
  std::string first = EncodeJournalRecord(1, "define schema");
  std::string second = EncodeJournalRecord(2, "integrate");
  for (size_t i = 0; i < second.size(); ++i) {
    std::string bytes = first + second;
    bytes[first.size() + i] =
        static_cast<char>(bytes[first.size() + i] ^ 0x40);
    JournalScanResult scan = ScanJournal(bytes);
    EXPECT_FALSE(scan.clean) << "flip at " << i;
    ASSERT_GE(scan.records.size(), 1u) << "flip at " << i;
    EXPECT_EQ(scan.records[0].payload, "define schema");
    // The damaged record never surfaces (the flip may corrupt the length
    // field into implausible territory, torn territory, or a CRC
    // mismatch — all must stop the scan at the first record).
    EXPECT_EQ(scan.records.size(), 1u) << "flip at " << i;
    EXPECT_EQ(scan.valid_bytes, first.size()) << "flip at " << i;
  }
}

TEST(JournalRecordTest, SequenceRegressionIsDamage) {
  std::string bytes = EncodeJournalRecord(5, "a");
  bytes += EncodeJournalRecord(5, "b");  // duplicate seq
  JournalScanResult scan = ScanJournal(bytes);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.records.size(), 1u);

  bytes = EncodeJournalRecord(5, "a") + EncodeJournalRecord(4, "b");
  scan = ScanJournal(bytes);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(JournalRecordTest, ImplausibleLengthIsDamageNotAllocation) {
  // A header claiming a 4 GiB payload must be rejected up front.
  std::string bytes(kJournalHeaderBytes, '\0');
  bytes[0] = '\xff';
  bytes[1] = '\xff';
  bytes[2] = '\xff';
  bytes[3] = '\xff';
  JournalScanResult scan = ScanJournal(bytes);
  EXPECT_FALSE(scan.clean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_NE(scan.damage.find("implausible"), std::string::npos);
}

TEST(FsyncPolicyTest, NamesRoundtrip) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kBatch, FsyncPolicy::kNever}) {
    Result<FsyncPolicy> parsed = ParseFsyncPolicy(FsyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

TEST(JournalTest, AppendAssignsSequenceAndFrames) {
  common::MemFs fs;
  auto journal = Journal::Open(&fs, "j", /*next_seq=*/1,
                               FsyncPolicy::kAlways, /*batch_records=*/1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("one").ok());
  ASSERT_TRUE((*journal)->Append("two").ok());
  EXPECT_EQ((*journal)->next_seq(), 3u);
  EXPECT_EQ((*journal)->appends(), 2);

  JournalScanResult scan = ScanJournal(JournalOf(fs));
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[1].seq, 2u);
}

TEST(JournalTest, FsyncPolicyCounts) {
  common::MemFs fs;
  // always: one fsync per append.
  auto always = Journal::Open(&fs, "a", 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(always.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*always)->Append("x").ok());
  EXPECT_EQ((*always)->fsyncs(), 5);

  // batch of 3: fsync on the 3rd append only; SyncNow flushes the rest.
  auto batch = Journal::Open(&fs, "b", 1, FsyncPolicy::kBatch, 3);
  ASSERT_TRUE(batch.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*batch)->Append("x").ok());
  EXPECT_EQ((*batch)->fsyncs(), 1);
  ASSERT_TRUE((*batch)->SyncNow().ok());
  EXPECT_EQ((*batch)->fsyncs(), 2);
  // Nothing pending: SyncNow is a no-op.
  ASSERT_TRUE((*batch)->SyncNow().ok());
  EXPECT_EQ((*batch)->fsyncs(), 2);

  // never: no fsync from appends.
  auto never = Journal::Open(&fs, "n", 1, FsyncPolicy::kNever, 1);
  ASSERT_TRUE(never.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*never)->Append("x").ok());
  EXPECT_EQ((*never)->fsyncs(), 0);
}

TEST(JournalTest, RotateTruncatesAndKeepsCounting) {
  common::MemFs fs;
  auto journal = Journal::Open(&fs, "j", 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("before").ok());
  ASSERT_TRUE((*journal)->Rotate().ok());
  EXPECT_EQ(JournalOf(fs), "");
  ASSERT_TRUE((*journal)->Append("after").ok());

  JournalScanResult scan = ScanJournal(JournalOf(fs));
  ASSERT_EQ(scan.records.size(), 1u);
  // Sequence numbers never restart: that is how recovery distinguishes
  // pre-checkpoint leftovers from new records.
  EXPECT_EQ(scan.records[0].seq, 2u);
  EXPECT_EQ(scan.records[0].payload, "after");
}

TEST(JournalTest, AppendFailurePropagates) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_append_at = 1;
  common::FaultInjectingFs fs(&base, plan);
  auto journal = Journal::Open(&fs, "j", 1, FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("ok").ok());
  EXPECT_FALSE((*journal)->Append("boom").ok());
  // The surviving journal still scans clean up to the failure.
  JournalScanResult scan = ScanJournal(*base.ReadFileToString("j"));
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(JournalTest, ShortWriteLeavesScannableTornTail) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_append_at = 1;
  plan.short_write_bytes = 5;  // half a header
  common::FaultInjectingFs fs(&base, plan);
  auto journal = Journal::Open(&fs, "j", 1, FsyncPolicy::kNever, 1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("first").ok());
  EXPECT_FALSE((*journal)->Append("second").ok());

  JournalScanResult scan = ScanJournal(*base.ReadFileToString("j"));
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload, "first");
  EXPECT_EQ(scan.total_bytes - scan.valid_bytes, 5u);
}

// --- edge cases ------------------------------------------------------------

TEST(JournalTest, ScanOfEmptyFileOnDiskIsClean) {
  // Not just the empty string: a zero-byte file that exists (a journal
  // created but never appended to, or truncated by Rotate) must scan clean
  // with zero records.
  common::MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("j", "").ok());
  Result<std::string> bytes = fs.ReadFileToString("j");
  ASSERT_TRUE(bytes.ok());
  JournalScanResult scan = ScanJournal(*bytes);
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.total_bytes, 0u);
}

TEST(JournalTest, FileEndingExactlyAtARecordBoundaryIsClean) {
  // The boundary case between "torn tail" and "complete": a file whose
  // last byte is the last byte of a record must report clean with no
  // pending damage, because a crash immediately after a successful append
  // looks exactly like this.
  std::string bytes =
      EncodeJournalRecord(1, "first") + EncodeJournalRecord(2, "second");
  JournalScanResult scan = ScanJournal(bytes);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  EXPECT_EQ(scan.total_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.damage.empty());
  // One more byte makes it a torn tail, one fewer a truncated record.
  EXPECT_FALSE(ScanJournal(bytes + "x").clean);
  EXPECT_FALSE(
      ScanJournal(std::string_view(bytes).substr(0, bytes.size() - 1)).clean);
}

TEST(JournalTest, TailerReadsAcrossCheckpointTriggeredRotation) {
  // A reader following the live journal while the writer checkpoints:
  // Rotate truncates the file mid-tail, and the reader must carry on with
  // the post-rotation records without loss or duplication.
  common::MemFs fs;
  auto journal = Journal::Open(&fs, "j", 1, FsyncPolicy::kNever, 1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("one").ok());
  ASSERT_TRUE((*journal)->Append("two").ok());

  JournalTailer tailer(&fs, "j", 0);
  TailResult tail = tailer.Poll();
  ASSERT_EQ(tail.records.size(), 2u);

  // Checkpoint: rotation empties the file, sequencing continues.
  ASSERT_TRUE((*journal)->Rotate().ok());
  ASSERT_TRUE((*journal)->Append("three").ok());
  tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 3u);
  EXPECT_EQ(tail.records[0].payload, "three");

  // A tailer joining late (already past the rotation) sees only the live
  // suffix and reports no gap, because its from-seq covers the rotation.
  JournalTailer late(&fs, "j", 2);
  tail = late.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 3u);
}

TEST(JournalTest, RotateToMovesTheCounterForwardOnly) {
  common::MemFs fs;
  auto journal = Journal::Open(&fs, "j", 1, FsyncPolicy::kNever, 1);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append("one").ok());

  // A follower installing a leader checkpoint at seq 41 continues at 42.
  ASSERT_TRUE((*journal)->RotateTo(42).ok());
  EXPECT_EQ(JournalOf(fs), "");
  ASSERT_TRUE((*journal)->Append("forty-two").ok());
  JournalScanResult scan = ScanJournal(JournalOf(fs));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 42u);

  // The stream identity is append-only: the counter never moves back.
  EXPECT_FALSE((*journal)->RotateTo(7).ok());
}

}  // namespace
}  // namespace ecrint::service
