// Pipelined batch execution: a batch produces exactly the responses the
// same commands produce one at a time, a write run's journal records are
// covered by ONE group-commit fsync (not one per record), a failed commit
// barrier converts every executed write into UNAVAILABLE, and the binary
// batch frame carries the whole flow end to end through the router.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "service/protocol.h"
#include "service/recovery.h"
#include "service/router.h"
#include "service/service.h"

namespace ecrint::service {
namespace {

constexpr const char* kInlineDdl =
    "schema sc1 { entity Student { Name: char key; GPA: real; } } "
    "schema sc2 { entity Grad { Name: char key; GPA: real; } }";

ServiceCommand DefineCommand() {
  ServiceCommand command;
  command.op = ServiceCommand::Op::kDefine;
  command.text = kInlineDdl;
  return command;
}

ServiceCommand EquivCommand(const std::string& attr) {
  ServiceCommand command;
  command.op = ServiceCommand::Op::kEquiv;
  command.path_a = {"sc1", "Student", attr};
  command.path_b = {"sc2", "Grad", attr};
  return command;
}

ServiceCommand AssertCommand() {
  ServiceCommand command;
  command.op = ServiceCommand::Op::kAssert;
  command.first = {"sc1", "Student"};
  command.type_code = 1;
  command.second = {"sc2", "Grad"};
  return command;
}

ServiceCommand IntegrateCommand() {
  ServiceCommand command;
  command.op = ServiceCommand::Op::kIntegrate;
  return command;
}

ServiceCommand SimpleCommand(ServiceCommand::Op op) {
  ServiceCommand command;
  command.op = op;
  return command;
}

ServiceCommand RankCommand() {
  ServiceCommand command;
  command.op = ServiceCommand::Op::kRank;
  command.schema1 = "sc1";
  command.schema2 = "sc2";
  command.include_zero = true;
  return command;
}

// The canonical mixed script: writes, reads between them, a trailing
// read run. Exercises read-run / write-run segmentation.
std::vector<ServiceCommand> MixedScript() {
  return {SimpleCommand(ServiceCommand::Op::kPing),
          DefineCommand(),
          EquivCommand("Name"),
          RankCommand(),
          EquivCommand("GPA"),
          AssertCommand(),
          IntegrateCommand(),
          SimpleCommand(ServiceCommand::Op::kOutline),
          RankCommand(),
          SimpleCommand(ServiceCommand::Op::kExport)};
}

void ExpectSameResponses(const std::vector<ServiceResponse>& batch,
                         const std::vector<ServiceResponse>& sequential) {
  ASSERT_EQ(batch.size(), sequential.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Compare the full wire serialization: status, message, payload.
    EXPECT_EQ(FormatResponse(batch[i]), FormatResponse(sequential[i]))
        << "command " << i;
  }
}

TEST(BatchTest, MatchesSequentialExecution) {
  std::vector<ServiceCommand> script = MixedScript();

  IntegrationService batch_service{ServiceConfig{}};
  std::string batch_session = batch_service.OpenSession("uni");
  std::vector<ServiceResponse> batched =
      batch_service.ExecuteBatch(batch_session, script);

  IntegrationService seq_service{ServiceConfig{}};
  std::string seq_session = seq_service.OpenSession("uni");
  std::vector<ServiceResponse> sequential;
  for (const ServiceCommand& command : script) {
    sequential.push_back(seq_service.Execute(seq_session, command));
  }

  ExpectSameResponses(batched, sequential);
  for (const ServiceResponse& response : batched) {
    EXPECT_TRUE(response.ok());
  }
}

TEST(BatchTest, EmptyBatchIsANoOp) {
  IntegrationService service{ServiceConfig{}};
  std::string session = service.OpenSession("uni");
  EXPECT_TRUE(service.ExecuteBatch(session, {}).empty());
}

TEST(BatchTest, UnknownSessionFailsEveryCommand) {
  IntegrationService service{ServiceConfig{}};
  std::vector<ServiceResponse> out =
      service.ExecuteBatch("nope", {DefineCommand(), RankCommand()});
  ASSERT_EQ(out.size(), 2u);
  for (const ServiceResponse& response : out) {
    ASSERT_FALSE(response.ok());
  }
}

TEST(BatchTest, RecordsBatchSizeHistogram) {
  IntegrationService service{ServiceConfig{}};
  std::string session = service.OpenSession("uni");
  Histogram* sizes = service.metrics().GetHistogram("batch.size");
  int64_t before = sizes->count();
  (void)service.ExecuteBatch(session, MixedScript());
  EXPECT_EQ(sizes->count(), before + 1);
  EXPECT_GE(sizes->sum_us(),
            static_cast<int64_t>(MixedScript().size()));
}

// --- group commit ----------------------------------------------------------

// Under FsyncPolicy::kAlways a batch write run of W journaled verbs costs
// ONE fsync (the group-commit barrier); the same verbs one at a time cost
// W. The FaultInjectingFs wrapper counts the actual Sync calls.
TEST(BatchGroupCommitTest, OneFsyncCoversTheWholeWriteRun) {
  // The script's write run: define, equiv, equiv, assert, integrate = 5
  // journaled verbs.
  std::vector<ServiceCommand> writes = {DefineCommand(), EquivCommand("Name"),
                                        EquivCommand("GPA"), AssertCommand(),
                                        IntegrateCommand()};

  auto syncs_for = [&](bool as_batch) {
    common::MemFs base;
    common::FaultInjectingFs counting(&base, common::FaultPlan{});
    ServiceConfig config;
    config.data_dir = "data";
    config.fs = &counting;
    config.durability.fsync = FsyncPolicy::kAlways;
    config.durability.checkpoint_interval_records = 0;  // isolate the WAL
    IntegrationService service(config);
    std::string session = service.OpenSession("uni");
    int64_t before = counting.syncs_seen();
    if (as_batch) {
      for (const ServiceResponse& response :
           service.ExecuteBatch(session, writes)) {
        EXPECT_TRUE(response.ok());
      }
    } else {
      for (const ServiceCommand& command : writes) {
        EXPECT_TRUE(service.Execute(session, command).ok());
      }
    }
    return counting.syncs_seen() - before;
  };

  EXPECT_EQ(syncs_for(/*as_batch=*/false),
            static_cast<int64_t>(writes.size()));
  EXPECT_EQ(syncs_for(/*as_batch=*/true), 1);
}

TEST(BatchGroupCommitTest, FsyncMetricCountsBarriersNotRecords) {
  common::MemFs fs;
  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &fs;
  config.durability.fsync = FsyncPolicy::kAlways;
  config.durability.checkpoint_interval_records = 0;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");

  Counter* fsyncs = service.metrics().GetCounter("journal.fsyncs");
  Counter* appends = service.metrics().GetCounter("journal.appends");
  int64_t fsyncs_before = fsyncs->value();
  int64_t appends_before = appends->value();

  std::vector<ServiceCommand> writes = {DefineCommand(), EquivCommand("Name"),
                                        AssertCommand()};
  for (const ServiceResponse& response :
       service.ExecuteBatch(session, writes)) {
    ASSERT_TRUE(response.ok());
  }
  EXPECT_EQ(appends->value(), appends_before + 3);  // every record journaled
  EXPECT_EQ(fsyncs->value(), fsyncs_before + 1);    // one barrier
}

// The barrier fails: every write that executed in the run answers
// UNAVAILABLE (its record never became durable), the project degrades,
// and later writes keep refusing until restart.
TEST(BatchGroupCommitTest, CommitFailureFailsExecutedWrites) {
  common::MemFs base;
  common::FaultPlan plan;
  plan.fail_sync_at = 0;  // the group-commit barrier is the first Sync
  common::FaultInjectingFs faulty(&base, plan);
  ServiceConfig config;
  config.data_dir = "data";
  config.fs = &faulty;
  config.durability.fsync = FsyncPolicy::kAlways;
  config.durability.checkpoint_interval_records = 0;
  config.durability.degraded_retry_after_ms = 777;
  IntegrationService service(config);
  std::string session = service.OpenSession("uni");

  std::vector<ServiceCommand> writes = {DefineCommand(), EquivCommand("Name"),
                                        AssertCommand()};
  std::vector<ServiceResponse> out = service.ExecuteBatch(session, writes);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_FALSE(out[i].ok()) << "write " << i;
    EXPECT_EQ(out[i].error->code, ServiceErrorCode::kUnavailable)
        << "write " << i;
    EXPECT_EQ(out[i].error->retry_after_ms, 777) << "write " << i;
  }
  // Degraded: the next write (batched or not) also refuses.
  ServiceResponse later = service.Execute(session, EquivCommand("GPA"));
  ASSERT_FALSE(later.ok());
  EXPECT_EQ(later.error->code, ServiceErrorCode::kUnavailable);
  // Reads still serve from the published snapshot.
  ServiceResponse ping = service.Execute(
      session, SimpleCommand(ServiceCommand::Op::kPing));
  EXPECT_TRUE(ping.ok());
}

// --- router-level binary batch --------------------------------------------

class BinaryBatchRouterTest : public ::testing::Test {
 protected:
  BinaryBatchRouterTest() : service_(ServiceConfig{}), router_(&service_) {}

  // Opens a session in binary mode.
  void OpenBinary(RouterSession* session) {
    ASSERT_EQ(router_.HandleLine("open uni", session).substr(0, 2), "ok");
    ASSERT_EQ(router_.HandleLine("proto 2", session).substr(0, 2), "ok");
    ASSERT_EQ(session->protocol_version, kProtocolBinaryVersion);
  }

  // Round-trips one frame through the router and decodes the reply.
  DecodedResponse Exchange(const std::string& frame, RouterSession* session) {
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ExtractFrame(frame, &body, &consumed, &error),
              FrameStatus::kComplete);
    std::string reply = router_.HandleFrame(body, session);
    std::string_view reply_body;
    EXPECT_EQ(ExtractFrame(reply, &reply_body, &consumed, &error),
              FrameStatus::kComplete);
    Result<DecodedResponse> decoded = DecodeBinaryResponse(reply_body);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    return *decoded;
  }

  static BinaryRequest Req(WireVerb verb, std::vector<std::string> args = {}) {
    BinaryRequest request;
    request.verb = verb;
    request.args = std::move(args);
    return request;
  }

  int64_t CacheHits() {
    return service_.metrics().GetCounter("cache.hits")->value();
  }

  IntegrationService service_;
  RequestRouter router_;
};

TEST_F(BinaryBatchRouterTest, MixedBatchExecutesEndToEnd) {
  RouterSession session;
  OpenBinary(&session);

  std::vector<BinaryRequest> batch = {
      Req(WireVerb::kPing),
      Req(WireVerb::kDefine, {kInlineDdl}),
      Req(WireVerb::kEquiv, {"sc1.Student.Name", "sc2.Grad.Name"}),
      Req(WireVerb::kAssert, {"sc1.Student", "1", "sc2.Grad"}),
      Req(WireVerb::kIntegrate),
      Req(WireVerb::kOutline),
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),
  };
  DecodedResponse decoded =
      Exchange(EncodeBinaryBatch(batch), &session);
  ASSERT_TRUE(decoded.batch);
  ASSERT_EQ(decoded.items.size(), batch.size());
  for (size_t i = 0; i < decoded.items.size(); ++i) {
    EXPECT_TRUE(decoded.items[i].ok()) << "item " << i;
  }
  EXPECT_EQ(decoded.items[0].lines, std::vector<std::string>{"pong"});
  EXPECT_FALSE(decoded.items[5].lines.empty());  // outline text
}

TEST_F(BinaryBatchRouterTest, SessionVerbsAreRejectedInsideABatch) {
  RouterSession session;
  OpenBinary(&session);

  std::vector<BinaryRequest> batch = {
      Req(WireVerb::kPing),
      Req(WireVerb::kOpen, {"other"}),
      Req(WireVerb::kProto, {"1"}),
      Req(WireVerb::kDefine, {kInlineDdl}),
  };
  DecodedResponse decoded = Exchange(EncodeBinaryBatch(batch), &session);
  ASSERT_EQ(decoded.items.size(), 4u);
  EXPECT_TRUE(decoded.items[0].ok());
  ASSERT_FALSE(decoded.items[1].ok());
  EXPECT_NE(decoded.items[1].error->message.find("not allowed in batch"),
            std::string::npos);
  ASSERT_FALSE(decoded.items[2].ok());
  // The rejected proto did not flip the connection out of binary mode...
  EXPECT_EQ(session.protocol_version, kProtocolBinaryVersion);
  // ...and the non-session command after it still executed.
  EXPECT_TRUE(decoded.items[3].ok());
}

TEST_F(BinaryBatchRouterTest, PerItemParseErrorsDoNotPoisonTheBatch) {
  RouterSession session;
  OpenBinary(&session);
  (void)Exchange(
      EncodeBinaryBatch({Req(WireVerb::kDefine, {kInlineDdl})}), &session);

  std::vector<BinaryRequest> batch = {
      Req(WireVerb::kEquiv, {"not-a-path"}),        // wrong arity
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),  // fine
      Req(WireVerb::kAssert, {"sc1.Student", "nine", "sc2.Grad"}),
  };
  DecodedResponse decoded = Exchange(EncodeBinaryBatch(batch), &session);
  ASSERT_EQ(decoded.items.size(), 3u);
  EXPECT_FALSE(decoded.items[0].ok());
  EXPECT_TRUE(decoded.items[1].ok());
  EXPECT_FALSE(decoded.items[2].ok());
}

TEST_F(BinaryBatchRouterTest, BatchWithoutSessionFailsNonPingItems) {
  RouterSession session;
  session.protocol_version = kProtocolBinaryVersion;  // never opened

  std::vector<BinaryRequest> batch = {
      Req(WireVerb::kPing),
      Req(WireVerb::kOutline),
  };
  DecodedResponse decoded = Exchange(EncodeBinaryBatch(batch), &session);
  ASSERT_EQ(decoded.items.size(), 2u);
  EXPECT_TRUE(decoded.items[0].ok());  // ping needs no session
  EXPECT_FALSE(decoded.items[1].ok());
}

TEST_F(BinaryBatchRouterTest, RepeatedReadBatchHitsTheResponseCache) {
  RouterSession session;
  OpenBinary(&session);
  (void)Exchange(EncodeBinaryBatch({
                     Req(WireVerb::kDefine, {kInlineDdl}),
                     Req(WireVerb::kEquiv,
                         {"sc1.Student.Name", "sc2.Grad.Name"}),
                     Req(WireVerb::kIntegrate),
                 }),
                 &session);

  std::vector<BinaryRequest> reads = {
      Req(WireVerb::kOutline),
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),  // duplicate in-batch
  };
  int64_t hits0 = CacheHits();
  DecodedResponse first = Exchange(EncodeBinaryBatch(reads), &session);
  // The duplicate rank inside the FIRST batch already hits the entry its
  // twin inserted one item earlier (same read run, same snapshot).
  EXPECT_EQ(CacheHits(), hits0 + 1);
  DecodedResponse second = Exchange(EncodeBinaryBatch(reads), &session);
  // The repeat batch is served entirely from the cache...
  EXPECT_EQ(CacheHits(), hits0 + 4);
  // ...and is answer-identical to the computed one.
  ASSERT_EQ(second.items.size(), first.items.size());
  for (size_t i = 0; i < first.items.size(); ++i) {
    EXPECT_EQ(second.items[i].lines, first.items[i].lines) << "item " << i;
  }
}

TEST_F(BinaryBatchRouterTest, WriteInsideABatchIsVisibleToFollowingReads) {
  RouterSession session;
  OpenBinary(&session);
  (void)Exchange(EncodeBinaryBatch({
                     Req(WireVerb::kDefine, {kInlineDdl}),
                     Req(WireVerb::kEquiv,
                         {"sc1.Student.Name", "sc2.Grad.Name"}),
                 }),
                 &session);
  // Warm the rank entry under the pre-write snapshot.
  (void)Exchange(
      EncodeBinaryBatch({Req(WireVerb::kRank, {"sc1", "sc2", "zero"})}),
      &session);

  // One batch: read, write that changes the ranking, same read again. The
  // trailing read runs against the post-write snapshot, so the warm
  // pre-write entry must NOT be served to it.
  std::vector<BinaryRequest> batch = {
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),
      Req(WireVerb::kEquiv, {"sc1.Student.GPA", "sc2.Grad.GPA"}),
      Req(WireVerb::kRank, {"sc1", "sc2", "zero"}),
  };
  DecodedResponse decoded = Exchange(EncodeBinaryBatch(batch), &session);
  ASSERT_EQ(decoded.items.size(), 3u);
  ASSERT_TRUE(decoded.items[0].ok());
  ASSERT_TRUE(decoded.items[1].ok());
  ASSERT_TRUE(decoded.items[2].ok());
  // The new equivalence raises the shared-attribute score, so the answer
  // after the write differs from the answer before it.
  EXPECT_NE(decoded.items[2].lines, decoded.items[0].lines);
  // And the post-write answer is the one that stays warm.
  DecodedResponse repeat = Exchange(
      EncodeBinaryBatch({Req(WireVerb::kRank, {"sc1", "sc2", "zero"})}),
      &session);
  EXPECT_EQ(repeat.items[0].lines, decoded.items[2].lines);
}

}  // namespace
}  // namespace ecrint::service
