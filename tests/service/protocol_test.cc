// Wire framing: field escaping round-trips, responses frame and parse back
// exactly (including dot-stuffing and error codes), and malformed input is
// rejected rather than mis-parsed.

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ecrint::service {
namespace {

TEST(EscapeFieldTest, RoundTripsControlCharacters) {
  const std::string raw = "line1\nline2\tcol\\back";
  std::string escaped = EscapeField(raw);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  Result<std::string> back = UnescapeField(escaped);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(EscapeFieldTest, PlainTextPassesThrough) {
  EXPECT_EQ(EscapeField("hello world"), "hello world");
  Result<std::string> back = UnescapeField("hello world");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello world");
}

TEST(EscapeFieldTest, UnknownEscapeIsAnError) {
  EXPECT_FALSE(UnescapeField("bad\\x").ok());
  EXPECT_FALSE(UnescapeField("trailing\\").ok());
}

TEST(TokenizeTest, SplitsOnRunsOfWhitespace) {
  std::vector<std::string> tokens = Tokenize("  rank  sc1\tsc2  zero ");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "rank");
  EXPECT_EQ(tokens[3], "zero");
  EXPECT_TRUE(Tokenize("   ").empty());
}

TEST(ResponseFramingTest, OkResponseRoundTrips) {
  ServiceResponse response;
  response.lines = {"first", "second line", ". starts with dot",
                    "tab\there"};
  std::string wire = FormatResponse(response);
  EXPECT_EQ(wire.substr(0, 3), "ok\n");
  EXPECT_EQ(wire.substr(wire.size() - 2), ".\n");

  Result<ServiceResponse> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->lines, response.lines);
}

TEST(ResponseFramingTest, ErrorResponseRoundTrips) {
  ServiceResponse response;
  response.error = ServiceError{ServiceErrorCode::kConflict,
                                "contradicts a CONTAINS chain"};
  std::string wire = FormatResponse(response);
  EXPECT_EQ(wire.rfind("err CONFLICT ", 0), 0u);

  Result<ServiceResponse> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->error.has_value());
  EXPECT_EQ(parsed->error->code, ServiceErrorCode::kConflict);
  EXPECT_EQ(parsed->error->message, "contradicts a CONTAINS chain");
}

TEST(ResponseFramingTest, DotStuffingKeepsTerminatorUnambiguous) {
  ServiceResponse response;
  response.lines = {"."};
  std::string wire = FormatResponse(response);
  // The payload dot is doubled; only the final lone dot terminates.
  EXPECT_EQ(wire, "ok\n..\n.\n");
  Result<ServiceResponse> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->lines.size(), 1u);
  EXPECT_EQ(parsed->lines[0], ".");
}

TEST(ResponseFramingTest, MissingTerminatorIsAnError) {
  EXPECT_FALSE(ParseResponse("ok\npayload\n").ok());
  EXPECT_FALSE(ParseResponse("").ok());
}

TEST(ResponseFramingTest, EveryErrorCodeRoundTrips) {
  for (ServiceErrorCode code :
       {ServiceErrorCode::kOverloaded, ServiceErrorCode::kTimeout,
        ServiceErrorCode::kBadRequest, ServiceErrorCode::kConflict,
        ServiceErrorCode::kUnavailable}) {
    ServiceResponse response;
    response.error = ServiceError{code, "msg"};
    Result<ServiceResponse> parsed =
        ParseResponse(FormatResponse(response));
    ASSERT_TRUE(parsed.ok()) << ServiceErrorCodeName(code);
    ASSERT_TRUE(parsed->error.has_value());
    EXPECT_EQ(parsed->error->code, code);
  }
}

TEST(ResponseFramingTest, UnavailableCarriesRetryAfterHint) {
  ServiceResponse response;
  response.error = ServiceError{ServiceErrorCode::kUnavailable,
                                "project is read-only", 1500};
  std::string wire = FormatResponse(response);
  EXPECT_EQ(wire.rfind("err UNAVAILABLE retry-after-ms=1500 ", 0), 0u);

  Result<ServiceResponse> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->error.has_value());
  EXPECT_EQ(parsed->error->code, ServiceErrorCode::kUnavailable);
  EXPECT_EQ(parsed->error->retry_after_ms, 1500);
  EXPECT_EQ(parsed->error->message, "project is read-only");

  // No hint, no token: the pre-durability wire shape is unchanged.
  response.error->retry_after_ms = 0;
  wire = FormatResponse(response);
  EXPECT_EQ(wire.rfind("err UNAVAILABLE project", 0), 0u);
  EXPECT_FALSE(ParseResponse("err UNAVAILABLE retry-after-ms= x\n.\n").ok());
}

TEST(RequestLimitTest, OversizedLineIsRejected) {
  std::string line = "define p ";
  line.append(kMaxRequestLineBytes, 'x');
  Status status = ValidateRequestLine(line);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceeds"), std::string::npos);
  // At the limit exactly is still fine.
  EXPECT_TRUE(
      ValidateRequestLine(std::string(kMaxRequestLineBytes, 'x')).ok());
}

TEST(RequestLimitTest, EmbeddedNulIsRejected) {
  std::string line = "define p schema";
  line.push_back('\0');
  line += " s {}";
  EXPECT_FALSE(ValidateRequestLine(line).ok());
  EXPECT_TRUE(ValidateRequestLine("define p schema s {}").ok());
}

TEST(RequestLimitTest, ParseResponseRefusesOversizedFrames) {
  std::string frame = "ok\n";
  frame.append(kMaxResponseFrameBytes, 'x');
  frame += "\n.\n";
  EXPECT_FALSE(ParseResponse(frame).ok());
}

}  // namespace
}  // namespace ecrint::service
