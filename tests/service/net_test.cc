// The event-driven network plane (src/service/net.{h,cc}) and the router's
// incremental feed API. The load-bearing property is fragmentation
// independence: however the kernel slices the byte stream — one byte at a
// time, random chunks, or whole messages — the response bytes must be
// identical. The rest covers the plumbing the reactor is built from
// (BufferPool, OutputQueue against a real socketpair, TimerWheel) and the
// live server end to end: request/response, idle timeout, backpressure
// accounting, drain.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "service/net.h"
#include "service/protocol.h"
#include "service/replication.h"
#include "service/router.h"
#include "service/service.h"

namespace ecrint::service {
namespace {

constexpr const char* kDdl =
    "schema s1 { entity Student { Name: char key; GPA: real; } "
    "entity Department { Dname: char key; } "
    "relationship Majors (Student [1,1], Department [0,n]); } "
    "schema s2 { entity Pupil { Name: char key; Addr: char; } "
    "entity Dept { Dname: char key; } }";

// A text-protocol script exercising session setup, writes, reads, and
// errors. Escaped-DDL `define` rides in one line like a real client sends
// it (the DDL above has no newlines, so no escaping is needed).
std::vector<std::string> TextScript() {
  return {
      "ping",
      std::string("open feedtest"),
      std::string("define ") + kDdl,
      "equiv s1.Student.Name s2.Pupil.Name",
      "assert s1.Student 1 s2.Pupil",
      "integrate",
      "outline",
      "rank s1 s2",
      "bogus verb",
      "close",
  };
}

// The same work as a binary stream: the text `proto 2` negotiation, then
// length-prefixed frames (including a batch).
std::string BinaryStream() {
  std::string stream = "proto 2\n";
  auto request = [](WireVerb verb, std::vector<std::string> args) {
    BinaryRequest req;
    req.verb = verb;
    req.args = std::move(args);
    return req;
  };
  stream += EncodeBinaryRequest(request(WireVerb::kPing, {}));
  stream += EncodeBinaryRequest(request(WireVerb::kOpen, {"feedbin"}));
  stream += EncodeBinaryRequest(request(WireVerb::kDefine, {kDdl}));
  stream += EncodeBinaryBatch({
      request(WireVerb::kEquiv,
              {"s1.Student.Name", "s2.Pupil.Name"}),
      request(WireVerb::kAssert, {"s1.Student", "1", "s2.Pupil"}),
      request(WireVerb::kIntegrate, {}),
  });
  stream += EncodeBinaryRequest(request(WireVerb::kOutline, {}));
  stream += EncodeBinaryRequest(request(WireVerb::kRank, {"s1", "s2"}));
  stream += EncodeBinaryRequest(request(WireVerb::kClose, {}));
  return stream;
}

// Runs `stream` through Feed with the given fragmentation, against a fresh
// service (session ids are deterministic per service, so every delivery
// mode sees identical state). Returns the concatenated response bytes.
std::string RunFeed(const std::string& stream,
                    const std::vector<size_t>& chunk_sizes) {
  IntegrationService service{ServiceConfig{}};
  RequestRouter router(&service);
  RouterSession session;
  std::string input;
  std::string output;
  std::string handoff;
  size_t at = 0;
  size_t chunk_index = 0;
  while (at < stream.size()) {
    size_t take = chunk_sizes.empty()
                      ? stream.size()
                      : std::min(chunk_sizes[chunk_index % chunk_sizes.size()],
                                 stream.size() - at);
    chunk_index++;
    input.append(stream, at, take);
    at += take;
    RequestRouter::FeedOutcome outcome =
        router.Feed(&input, &session, &output, &handoff);
    EXPECT_EQ(outcome, RequestRouter::FeedOutcome::kNeedMore);
  }
  EXPECT_TRUE(input.empty()) << "unconsumed bytes: " << input.size();
  return output;
}

TEST(RouterFeed, TextFragmentationIndependent) {
  std::string stream;
  for (const std::string& line : TextScript()) stream += line + "\n";

  std::string whole = RunFeed(stream, {});
  ASSERT_FALSE(whole.empty());
  EXPECT_EQ(whole, RunFeed(stream, {1}));  // byte at a time

  std::mt19937 rng(7);
  for (int round = 0; round < 5; ++round) {
    std::vector<size_t> chunks;
    std::uniform_int_distribution<size_t> dist(1, 37);
    for (int i = 0; i < 64; ++i) chunks.push_back(dist(rng));
    EXPECT_EQ(whole, RunFeed(stream, chunks)) << "round " << round;
  }
}

TEST(RouterFeed, BinaryFragmentationIndependent) {
  std::string stream = BinaryStream();

  std::string whole = RunFeed(stream, {});
  ASSERT_FALSE(whole.empty());
  // Byte-at-a-time delivery makes ExtractFrame see every partial LEB128
  // length prefix and every partial body.
  EXPECT_EQ(whole, RunFeed(stream, {1}));

  std::mt19937 rng(11);
  for (int round = 0; round < 5; ++round) {
    std::vector<size_t> chunks;
    std::uniform_int_distribution<size_t> dist(1, 53);
    for (int i = 0; i < 64; ++i) chunks.push_back(dist(rng));
    EXPECT_EQ(whole, RunFeed(stream, chunks)) << "round " << round;
  }
}

TEST(RouterFeed, TextResponsesMatchHandleLine) {
  // Feed is a transport refactor: it must produce exactly what the old
  // read-a-full-line loop produced via HandleLine.
  IntegrationService line_service{ServiceConfig{}};
  RequestRouter line_router(&line_service);
  RouterSession line_session;
  std::string expected;
  std::string stream;
  for (const std::string& line : TextScript()) {
    expected += line_router.HandleLine(line, &line_session);
    stream += line + "\n";
  }
  EXPECT_EQ(expected, RunFeed(stream, {5}));
}

TEST(RouterFeed, OversizedRequestLineCloses) {
  IntegrationService service{ServiceConfig{}};
  RequestRouter router(&service);
  RouterSession session;
  std::string input(kMaxRequestLineBytes + 2, 'a');  // no newline, too big
  std::string output;
  std::string handoff;
  EXPECT_EQ(router.Feed(&input, &session, &output, &handoff),
            RequestRouter::FeedOutcome::kClose);
  EXPECT_NE(output.find("err BAD_REQUEST"), std::string::npos);
}

TEST(RouterFeed, MalformedBinaryFrameCloses) {
  IntegrationService service{ServiceConfig{}};
  RequestRouter router(&service);
  RouterSession session;
  std::string input = "proto 2\n";
  // An 11-byte all-continuation varint is an invalid length prefix.
  input += std::string(11, '\xff');
  std::string output;
  std::string handoff;
  EXPECT_EQ(router.Feed(&input, &session, &output, &handoff),
            RequestRouter::FeedOutcome::kClose);
  // The text `ok` for proto 2 must still be there, then a binary refusal.
  EXPECT_EQ(output.rfind("ok\n", 0), 0u);
}

TEST(RouterFeed, SubscribeFrameHandsOff) {
  IntegrationService service{ServiceConfig{}};
  RequestRouter router(&service);
  RouterSession session;
  ReplSubscribe subscribe;
  subscribe.project = "p";
  subscribe.have_seq = 42;
  std::string input = "proto 2\n" + EncodeReplSubscribe(subscribe);
  std::string output;
  std::string handoff;
  EXPECT_EQ(router.Feed(&input, &session, &output, &handoff),
            RequestRouter::FeedOutcome::kHandoff);
  ASSERT_FALSE(handoff.empty());
  EXPECT_EQ(static_cast<uint8_t>(handoff[0]), kFrameReplSubscribe);
  EXPECT_TRUE(input.empty());
  Result<ReplFrame> frame = DecodeReplFrame(handoff);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->subscribe.project, "p");
  EXPECT_EQ(frame->subscribe.have_seq, 42u);
}

// --- BufferPool ------------------------------------------------------------

TEST(BufferPool, RecyclesAllocations) {
  BufferPool pool(/*max_buffers=*/2, /*buffer_capacity=*/1024);
  std::string a = pool.Acquire();
  EXPECT_GE(a.capacity(), 1024u);
  a.assign(600, 'x');
  const char* data = a.data();
  pool.Release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);
  std::string b = pool.Acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), data);  // same allocation came back
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, DropsOversizedAndOverflow) {
  BufferPool pool(/*max_buffers=*/1, /*buffer_capacity=*/1024);
  std::string huge;
  huge.reserve(64 * 1024);  // > 4x capacity: freed, not pooled
  pool.Release(std::move(huge));
  EXPECT_EQ(pool.pooled(), 0u);
  pool.Release(pool.Acquire());
  EXPECT_EQ(pool.pooled(), 1u);
  pool.Release(pool.Acquire());  // pool full: second one freed
  EXPECT_EQ(pool.pooled(), 1u);
}

// --- OutputQueue -----------------------------------------------------------

TEST(OutputQueue, PacksAndMovesChunks) {
  BufferPool pool(4, 64);
  OutputQueue queue;
  queue.Append(std::string_view("hello "), pool);
  queue.Append(std::string_view("world"), pool);
  EXPECT_EQ(queue.pending(), 11u);
  std::string big(500, 'B');  // >= chunk capacity: moved, not copied
  const char* big_data = big.data();
  queue.Append(std::move(big), pool);
  EXPECT_EQ(queue.pending(), 511u);
  std::string drained;
  queue.DrainTo(&drained, pool);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(drained, "hello world" + std::string(500, 'B'));
  (void)big_data;
}

TEST(OutputQueue, FlushesAcrossFullSocketBuffer) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int small = 4096;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  // Non-blocking writer so a full buffer yields kPartial, not a hang.
  ASSERT_EQ(fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);

  BufferPool pool;
  OutputQueue queue;
  std::string payload;
  for (int i = 0; i < 2000; ++i) {
    payload += "chunk-" + std::to_string(i) + "|";
  }
  queue.Append(std::string_view(payload), pool);

  Counter writev_calls;
  Counter bytes_out;
  std::string received;
  char buf[8192];
  for (int spins = 0; !queue.empty() && spins < 10000; ++spins) {
    OutputQueue::FlushResult result =
        queue.Flush(fds[0], pool, &writev_calls, &bytes_out);
    ASSERT_NE(result, OutputQueue::FlushResult::kError);
    if (result == OutputQueue::FlushResult::kDrained) break;
    // kPartial: drain the reader side and try again.
    ssize_t n = read(fds[1], buf, sizeof(buf));
    ASSERT_GT(n, 0);
    received.append(buf, static_cast<size_t>(n));
  }
  EXPECT_TRUE(queue.empty());
  for (ssize_t n; (n = read(fds[1], buf, sizeof(buf))) > 0;) {
    received.append(buf, static_cast<size_t>(n));
    if (received.size() >= payload.size()) break;
  }
  EXPECT_EQ(received, payload);
  EXPECT_EQ(bytes_out.value(), static_cast<int64_t>(payload.size()));
  EXPECT_GT(writev_calls.value(), 0);
  close(fds[0]);
  close(fds[1]);
}

TEST(OutputQueue, FlushErrorOnClosedPeer) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[1]);
  BufferPool pool;
  OutputQueue queue;
  queue.Append(std::string_view("doomed"), pool);
  // MSG_NOSIGNAL: this must come back as an error, not kill the process.
  EXPECT_EQ(queue.Flush(fds[0], pool, nullptr, nullptr),
            OutputQueue::FlushResult::kError);
  close(fds[0]);
}

// --- TimerWheel ------------------------------------------------------------

TEST(TimerWheel, ExpiresAfterTimeout) {
  TimerWheel wheel(/*timeout_ms=*/640, /*now_ms=*/0);
  ASSERT_TRUE(wheel.enabled());
  TimerWheel::Entry entry;
  int owner = 0;
  wheel.Touch(&entry, &owner, 0);
  EXPECT_EQ(wheel.armed(), 1u);

  std::vector<void*> expired;
  auto collect = [&](void* o) { expired.push_back(o); };
  wheel.Advance(639, collect);
  EXPECT_TRUE(expired.empty()) << "fired before the deadline";
  wheel.Advance(650, collect);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], &owner);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, TouchPostponesExpiry) {
  TimerWheel wheel(640, 0);
  TimerWheel::Entry entry;
  int owner = 0;
  wheel.Touch(&entry, &owner, 0);
  wheel.Touch(&entry, &owner, 500);  // activity at t=500
  std::vector<void*> expired;
  wheel.Advance(700, [&](void* o) { expired.push_back(o); });
  EXPECT_TRUE(expired.empty());
  wheel.Advance(1200, [&](void* o) { expired.push_back(o); });
  EXPECT_EQ(expired.size(), 1u);
}

TEST(TimerWheel, RemoveDisarms) {
  TimerWheel wheel(640, 0);
  TimerWheel::Entry entry;
  int owner = 0;
  wheel.Touch(&entry, &owner, 0);
  wheel.Remove(&entry);
  EXPECT_EQ(wheel.armed(), 0u);
  wheel.Remove(&entry);  // idempotent
  std::vector<void*> expired;
  wheel.Advance(10'000, [&](void* o) { expired.push_back(o); });
  EXPECT_TRUE(expired.empty());
}

TEST(TimerWheel, DisabledWheelIsInert) {
  TimerWheel wheel(/*timeout_ms=*/0, 0);
  EXPECT_FALSE(wheel.enabled());
  TimerWheel::Entry entry;
  int owner = 0;
  wheel.Touch(&entry, &owner, 0);
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.NextTickDelayMs(0), -1);
}

TEST(TimerWheel, LapsDoNotExpireEarly) {
  // An entry a full wheel-lap in the future must survive the intermediate
  // bucket visits.
  TimerWheel wheel(640, 0);  // tick = 10ms, 64 buckets
  TimerWheel::Entry near_entry;
  TimerWheel::Entry far_entry;
  int near_owner = 0;
  int far_owner = 0;
  wheel.Touch(&near_entry, &near_owner, 0);    // deadline 640
  wheel.Touch(&far_entry, &far_owner, 600);    // deadline 1240, same bucket
  std::vector<void*> expired;
  wheel.Advance(700, [&](void* o) { expired.push_back(o); });
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], &near_owner);
  wheel.Advance(1300, [&](void* o) { expired.push_back(o); });
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[1], &far_owner);
}

// --- Live NetServer --------------------------------------------------------

int ConnectTo(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

// Reads until `terminator` is seen or the peer closes.
std::string ReadUntil(int fd, const std::string& terminator) {
  std::string got;
  char buf[4096];
  while (got.find(terminator) == std::string::npos) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  return got;
}

struct ServerFixture {
  ServerFixture(NetOptions options)  // NOLINT
      : service{ServiceConfig{}}, router(&service) {
    server = std::make_unique<NetServer>(&router, nullptr, options);
    Result<int> bound = server->Start();
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    port = bound.ok() ? *bound : -1;
  }
  ~ServerFixture() {
    server->Shutdown();
    server->Run();
  }
  IntegrationService service;
  RequestRouter router;
  std::unique_ptr<NetServer> server;
  int port = -1;
};

TEST(NetServer, ServesPipelinedTextRequests) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 2;
  ServerFixture fixture(options);

  int fd = ConnectTo(fixture.port);
  ASSERT_TRUE(SendAll(fd, "ping\nping\nping\n"));
  std::string got = ReadUntil(fd, "ok\npong\n.\nok\npong\n.\nok\npong\n.\n");
  EXPECT_EQ(got, "ok\npong\n.\nok\npong\n.\nok\npong\n.\n");
  close(fd);
}

TEST(NetServer, ServesBinaryAfterNegotiation) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  ServerFixture fixture(options);

  int fd = ConnectTo(fixture.port);
  BinaryRequest ping;
  ping.verb = WireVerb::kPing;
  ASSERT_TRUE(SendAll(fd, "proto 2\n" + EncodeBinaryRequest(ping)));
  // Text `ok` for the negotiation, then one complete response frame.
  const std::string text_ok = "ok\nproto 2\n.\n";
  std::string got;
  std::string_view body;
  char buf[4096];
  for (;;) {
    if (got.size() > text_ok.size()) {
      std::string_view frames(got);
      frames.remove_prefix(text_ok.size());
      size_t consumed = 0;
      std::string error;
      if (ExtractFrame(frames, &body, &consumed, &error) ==
          FrameStatus::kComplete) {
        break;
      }
    }
    ssize_t n = read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "peer closed before a full response arrived";
    got.append(buf, static_cast<size_t>(n));
  }
  ASSERT_EQ(got.rfind(text_ok, 0), 0u);
  Result<DecodedResponse> decoded = DecodeBinaryResponse(body);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->items.size(), 1u);
  EXPECT_TRUE(decoded->items[0].ok());
  ASSERT_EQ(decoded->items[0].lines.size(), 1u);
  EXPECT_EQ(decoded->items[0].lines[0], "pong");
  close(fd);
}

TEST(NetServer, ClosesIdleConnections) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  options.idle_timeout_ms = 100;
  ServerFixture fixture(options);

  int fd = ConnectTo(fixture.port);
  // No request: the wheel must close us. A blocking read returning 0 is
  // the peer-visible proof.
  char buf[16];
  ssize_t n = read(fd, buf, sizeof(buf));
  EXPECT_EQ(n, 0);
  close(fd);
  EXPECT_GE(fixture.service.metrics()
                .GetCounter("net.idle_timeouts")
                ->value(),
            1);
}

TEST(NetServer, ActiveConnectionSurvivesIdleTimeout) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  options.idle_timeout_ms = 200;
  ServerFixture fixture(options);

  int fd = ConnectTo(fixture.port);
  // Keep touching the connection for ~3 timeouts' worth of wall clock.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(SendAll(fd, "ping\n"));
    ASSERT_EQ(ReadUntil(fd, ".\n"), "ok\npong\n.\n") << "iteration " << i;
    usleep(100 * 1000);
  }
  close(fd);
}

TEST(NetServer, BackpressuredConnectionSurvivesIdleReaper) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  options.idle_timeout_ms = 300;
  // A small watermark so a modest pipelined burst overflows the kernel
  // buffers into the reactor's user-space output queue and turns input
  // reading off (backpressure).
  options.output_high_watermark = 64 * 1024;
  options.output_low_watermark = 8 * 1024;
  ServerFixture fixture(options);

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A tiny receive buffer (set before connect so the window is negotiated
  // small) keeps the responses pinned server-side while we stall.
  int rcvbuf = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(fixture.port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);

  ASSERT_TRUE(SendAll(fd, "open uni\n"));
  ASSERT_EQ(ReadUntil(fd, ".\n").substr(0, 3), "ok\n");

  // Pipeline a burst of metrics dumps, then go silent WITHOUT reading.
  // The connection now has queued output and a closed window: it stalls
  // on EPOLLOUT with input reading paused, generating no events — exactly
  // what the idle wheel mistakes for an abandoned connection. A stalled
  // drain is slow, not idle: the reaper must leave it alone. The burst
  // must outsize the kernel's socket buffers (~hundreds of KB) or the
  // user-space queue never fills and nothing is pinned server-side.
  constexpr int kBurst = 2000;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += "metrics\n";
  ASSERT_TRUE(SendAll(fd, burst));
  usleep(750 * 1000);  // 2.5 idle timeouts

  // Drain: every response must arrive intact. A reaped connection shows
  // up here as a short read (EOF or RST) before all terminators land.
  std::string got;
  size_t responses = 0;
  size_t scanned = 0;
  char buf[65536];
  while (responses < kBurst) {
    ssize_t n = read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "connection reaped mid-drain after " << responses
                    << " of " << kBurst << " responses";
    got.append(buf, static_cast<size_t>(n));
    // Count terminator lines (".\n" at the start of a line). Metrics
    // bodies are single lines, so the pattern cannot appear inside one.
    while (scanned < got.size()) {
      size_t at = got.find("\n.\n", scanned);
      if (at == std::string::npos) {
        scanned = got.size() >= 2 ? got.size() - 2 : 0;
        break;
      }
      ++responses;
      scanned = at + 2;
    }
  }
  EXPECT_EQ(responses, static_cast<size_t>(kBurst));
  EXPECT_EQ(
      fixture.service.metrics().GetCounter("net.idle_timeouts")->value(),
      0);
  close(fd);
}

TEST(NetServer, StuckWriterWithQueuedOutputIsReaped) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  options.idle_timeout_ms = 150;
  options.output_high_watermark = 64 * 1024;
  options.output_low_watermark = 8 * 1024;
  ServerFixture fixture(options);

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(fixture.port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);

  ASSERT_TRUE(SendAll(fd, "open uni\n"));
  ASSERT_EQ(ReadUntil(fd, ".\n").substr(0, 3), "ok\n");

  // Same pinned-output shape as the backpressure test above, but the peer
  // NEVER drains: a dead client behind a closed window. The reaper must
  // distinguish this from the slow-drain case — no drain progress across
  // consecutive idle periods — and close it, or the fd and up to an entire
  // output_high_watermark of queued bytes leak until process exit.
  constexpr int kBurst = 2000;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += "metrics\n";
  ASSERT_TRUE(SendAll(fd, burst));

  Counter* reaped =
      fixture.service.metrics().GetCounter("net.idle_timeouts");
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (reaped->value() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    usleep(20 * 1000);
  }
  EXPECT_GE(reaped->value(), 1);
  close(fd);
}

TEST(NetServer, DrainClosesIdleConnectionsAndStops) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 2;
  auto fixture = std::make_unique<ServerFixture>(options);

  std::vector<int> fds;
  for (int i = 0; i < 20; ++i) fds.push_back(ConnectTo(fixture->port));
  // One of them has a request in flight to prove responses still land.
  ASSERT_TRUE(SendAll(fds[0], "ping\n"));
  ASSERT_EQ(ReadUntil(fds[0], ".\n"), "ok\npong\n.\n");

  fixture->server->Shutdown();
  fixture->server->Run();
  EXPECT_EQ(fixture->server->connections(), 0);

  // Every parked client sees EOF.
  for (int fd : fds) {
    char buf[16];
    EXPECT_EQ(read(fd, buf, sizeof(buf)), 0);
    close(fd);
  }
  fixture.reset();
}

TEST(NetServer, ConnectionGaugeTracksHighWater) {
  NetOptions options;
  options.port = 0;
  options.net_threads = 1;
  ServerFixture fixture(options);

  std::vector<int> fds;
  for (int i = 0; i < 5; ++i) {
    int fd = ConnectTo(fixture.port);
    ASSERT_TRUE(SendAll(fd, "ping\n"));
    ASSERT_EQ(ReadUntil(fd, ".\n"), "ok\npong\n.\n");
    fds.push_back(fd);
  }
  Gauge* gauge = fixture.service.metrics().GetGauge("net.connections");
  EXPECT_EQ(gauge->value(), 5);
  EXPECT_GE(gauge->max(), 5);
  for (int fd : fds) close(fd);
}

}  // namespace
}  // namespace ecrint::service
