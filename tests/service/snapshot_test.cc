// Copy-on-write snapshot publication: a republish after a mutation shares
// every part the mutation did not touch (pointer-identical), unchanged
// engines publish nothing, and a reader's old snapshot stays fully usable
// after any number of newer generations.

#include "service/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/assertion.h"
#include "engine/engine.h"

namespace ecrint::service {
namespace {

constexpr const char* kUniversityDdl = R"(
schema sc1 {
  entity Student { Name: char key; GPA: real; }
}
schema sc2 {
  entity Grad { Name: char key; GPA: real; }
}
)";

engine::Engine MakeEngine() {
  engine::Engine engine;
  EXPECT_TRUE(engine.DefineSchema(kUniversityDdl).ok());
  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "Name"},
                                     {"sc2", "Grad", "Name"})
                  .ok());
  return engine;
}

TEST(SnapshotManagerTest, PublishOnlyOnStampChange) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  EXPECT_TRUE(manager.Publish(engine));
  EXPECT_FALSE(manager.Publish(engine));  // nothing changed
  EXPECT_EQ(manager.generation(), 1);

  EXPECT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad", "GPA"})
                  .ok());
  EXPECT_TRUE(manager.Publish(engine));
  EXPECT_EQ(manager.generation(), 2);
}

TEST(SnapshotManagerTest, AssertionAppendSharesEveryPart) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> before = manager.Current();

  ASSERT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Grad"},
                                  core::AssertionType::kContains)
                  .ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> after = manager.Current();

  ASSERT_NE(before, after);
  // The assertion touched neither the catalog nor the equivalence map:
  // both are shared verbatim, not copied.
  EXPECT_EQ(before->catalog.get(), after->catalog.get());
  EXPECT_EQ(before->equivalence.get(), after->equivalence.get());
  EXPECT_GT(after->generation, before->generation);
}

TEST(SnapshotManagerTest, EquivalenceEditCopiesMapButSharesCatalog) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> before = manager.Current();

  ASSERT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad", "GPA"})
                  .ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> after = manager.Current();

  EXPECT_EQ(before->catalog.get(), after->catalog.get());
  EXPECT_NE(before->equivalence.get(), after->equivalence.get());
}

TEST(SnapshotManagerTest, IntegrationPublishesAndThenShares) {
  engine::Engine engine = MakeEngine();
  ASSERT_TRUE(engine
                  .AssertRelation({"sc1", "Student"}, {"sc2", "Grad"},
                                  core::AssertionType::kEquals)
                  .ok());
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  EXPECT_EQ(manager.Current()->integration, nullptr);

  ASSERT_TRUE(engine.Integrate().ok());
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> integrated = manager.Current();
  ASSERT_NE(integrated->integration, nullptr);

  // A later unrelated append shares the integration result verbatim.
  ASSERT_TRUE(engine
                  .AssertEquivalence({"sc1", "Student", "GPA"},
                                     {"sc2", "Grad", "GPA"})
                  .ok());
  ASSERT_TRUE(manager.Publish(engine));
  EXPECT_EQ(manager.Current()->integration.get(),
            integrated->integration.get());
}

TEST(SnapshotManagerTest, OldSnapshotSurvivesRepublication) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  std::shared_ptr<const EngineSnapshot> held = manager.Current();

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(engine
                    .DefineSchema("schema extra" + std::to_string(round) +
                                  " { entity E { A: char key; } }")
                    .ok());
    ASSERT_TRUE(manager.Publish(engine));
  }
  // The held snapshot still answers reads over its own (old) catalog.
  Result<std::vector<core::ObjectPair>> ranked = SnapshotRankedPairs(
      *held, "sc1", "sc2", core::StructureKind::kObjectClass,
      /*include_zero=*/true);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(held->catalog->SchemaNames().size(), 2u);
  EXPECT_EQ(manager.Current()->catalog->SchemaNames().size(), 5u);
}

TEST(SnapshotReadsTest, OutlineRequiresIntegration) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  Result<std::string> outline =
      SnapshotIntegratedOutline(*manager.Current());
  EXPECT_EQ(outline.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotReadsTest, SuggestFindsSameNameAttributes) {
  engine::Engine engine = MakeEngine();
  SnapshotManager manager;
  ASSERT_TRUE(manager.Publish(engine));
  Result<std::vector<heuristics::EquivalenceSuggestion>> suggestions =
      SnapshotSuggest(*manager.Current(), "sc1", "sc2", /*threshold=*/0.6,
                      /*object_threshold=*/0.0, /*max_results=*/0);
  ASSERT_TRUE(suggestions.ok());
  EXPECT_FALSE(suggestions->empty());
}

}  // namespace
}  // namespace ecrint::service
