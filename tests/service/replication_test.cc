// Log-shipped replication, end to end over an in-memory transport: frame
// codec roundtrips, journal tailing (rotation hand-off, gaps, torn tails),
// follower bootstrap from a leader checkpoint, convergence under a write
// storm, stream cuts mid-record, corrupted checkpoint chunks, follower
// kill -9 restarts, and the NOT_LEADER write gate. The consistency oracle
// throughout is Engine::Stamp() equality at equal seq.

#include "service/replication.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "service/recovery.h"
#include "service/service.h"

namespace ecrint::service {
namespace {

constexpr const char* kUniversityDdl =
    "schema sc1 { entity Student { Name: char key; GPA: real; } }\n"
    "schema sc2 { entity Grad { Name: char key; GPA: real; } }";

// --- frame codecs ----------------------------------------------------------

// Strips the varint length prefix and returns the frame body, asserting
// the frame is complete and self-consistent.
std::string_view Body(const std::string& frame) {
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  FrameStatus status = ExtractFrame(frame, &body, &consumed, &error);
  EXPECT_EQ(status, FrameStatus::kComplete) << error;
  EXPECT_EQ(consumed, frame.size());
  return body;
}

TEST(ReplicationFrameTest, SubscribeRoundtrip) {
  ReplSubscribe subscribe;
  subscribe.project = "uni";
  subscribe.have_seq = 41;
  Result<ReplFrame> frame = DecodeReplFrame(Body(EncodeReplSubscribe(subscribe)));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, kFrameReplSubscribe);
  EXPECT_EQ(frame->subscribe.project, "uni");
  EXPECT_EQ(frame->subscribe.have_seq, 41u);
}

TEST(ReplicationFrameTest, HelloChunkRecordRoundtrip) {
  ReplHello hello;
  hello.has_checkpoint = true;
  hello.seq = 7;
  hello.total_bytes = 1u << 20;
  hello.crc = 0xDEADBEEF;
  Result<ReplFrame> frame = DecodeReplFrame(Body(EncodeReplHello(hello)));
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->hello.has_checkpoint);
  EXPECT_EQ(frame->hello.seq, 7u);
  EXPECT_EQ(frame->hello.total_bytes, 1u << 20);
  EXPECT_EQ(frame->hello.crc, 0xDEADBEEFu);

  ReplChunk chunk;
  chunk.offset = 65536;
  chunk.crc = 123;
  chunk.bytes = std::string("\x00\x01raw bytes", 11);
  frame = DecodeReplFrame(Body(EncodeReplChunk(chunk)));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->chunk.offset, 65536u);
  EXPECT_EQ(frame->chunk.bytes, chunk.bytes);

  ReplRecord record;
  record.seq = 99;
  record.crc = 456;
  record.payload = "assert sc1.Student 1 sc2.Grad";
  frame = DecodeReplFrame(Body(EncodeReplRecord(record)));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->record.seq, 99u);
  EXPECT_EQ(frame->record.payload, record.payload);
}

TEST(ReplicationFrameTest, StampRoundtripsNegativeCounters) {
  // Pre-adoption stamps are all -1; zigzag must carry them unchanged.
  ReplStamp stamp;
  stamp.seq = 12;
  stamp.stamp = {-1, -1, -1, -1, -1};
  Result<ReplFrame> frame = DecodeReplFrame(Body(EncodeReplStamp(stamp)));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->stamp.seq, 12u);
  EXPECT_EQ(frame->stamp.stamp, stamp.stamp);

  stamp.stamp = {5, 0, 3, 1024, -1};
  frame = DecodeReplFrame(Body(EncodeReplStamp(stamp)));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->stamp.stamp, stamp.stamp);
}

TEST(ReplicationFrameTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeReplFrame("").ok());
  EXPECT_FALSE(DecodeReplFrame("\x7F").ok());  // unknown type
  // Trailing garbage after a valid frame body.
  std::string frame = EncodeReplError("boom");
  std::string body(Body(frame));
  body += "x";
  EXPECT_FALSE(DecodeReplFrame(body).ok());
  // Truncated mid-field.
  ReplRecord record;
  record.seq = 1;
  record.payload = "payload";
  std::string record_body(Body(EncodeReplRecord(record)));
  EXPECT_FALSE(
      DecodeReplFrame(record_body.substr(0, record_body.size() - 3)).ok());
}

// --- journal tailer --------------------------------------------------------

TEST(JournalTailerTest, DeliversNewRecordsAcrossPolls) {
  common::MemFs fs;
  std::string bytes = EncodeJournalRecord(1, "a") + EncodeJournalRecord(2, "b");
  ASSERT_TRUE(fs.WriteFileAtomic("j", bytes).ok());
  JournalTailer tailer(&fs, "j", 0);

  TailResult tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 2u);
  EXPECT_EQ(tail.records[1].seq, 2u);
  EXPECT_EQ(tail.pending_bytes, 0u);

  // Nothing new: idle.
  EXPECT_EQ(tailer.Poll().status, TailStatus::kIdle);

  bytes += EncodeJournalRecord(3, "c");
  ASSERT_TRUE(fs.WriteFileAtomic("j", bytes).ok());
  tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 3u);
  EXPECT_EQ(tailer.last_seq(), 3u);
}

TEST(JournalTailerTest, TornTailReadsAsIdle) {
  common::MemFs fs;
  std::string bytes = EncodeJournalRecord(1, "a") + EncodeJournalRecord(2, "b");
  // Cut the second record in half: a writer mid-append looks exactly like
  // this, so the tailer must deliver record 1 and wait, not error.
  ASSERT_TRUE(
      fs.WriteFileAtomic("j", bytes.substr(0, bytes.size() - 5)).ok());
  JournalTailer tailer(&fs, "j", 0);
  TailResult tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_GT(tail.pending_bytes, 0u);
  EXPECT_EQ(tailer.Poll().status, TailStatus::kIdle);

  // The append completes: the tailer picks up record 2.
  ASSERT_TRUE(fs.WriteFileAtomic("j", bytes).ok());
  tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 2u);
}

TEST(JournalTailerTest, RotationHandsOffWhenSeqsContinue) {
  common::MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("j", EncodeJournalRecord(1, "a") +
                                          EncodeJournalRecord(2, "b")).ok());
  JournalTailer tailer(&fs, "j", 0);
  ASSERT_EQ(tailer.Poll().records.size(), 2u);

  // Checkpoint-triggered rotation: the file is replaced and sequencing
  // continues. The tailer notices the shrink and follows seamlessly.
  ASSERT_TRUE(fs.WriteFileAtomic("j", EncodeJournalRecord(3, "c")).ok());
  TailResult tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 3u);
}

TEST(JournalTailerTest, RotationPastTheTailerIsAGap) {
  common::MemFs fs;
  ASSERT_TRUE(fs.WriteFileAtomic("j", EncodeJournalRecord(1, "a")).ok());
  JournalTailer tailer(&fs, "j", 0);
  ASSERT_EQ(tailer.Poll().records.size(), 1u);

  // Records 2..4 were checkpointed away before the tailer saw them.
  ASSERT_TRUE(fs.WriteFileAtomic("j", EncodeJournalRecord(5, "e")).ok());
  TailResult tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kGap);

  // Restart at the gap (as the replication server does after shipping a
  // checkpoint covering it).
  tailer.Restart(4);
  tail = tailer.Poll();
  EXPECT_EQ(tail.status, TailStatus::kRecords);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].seq, 5u);
}

TEST(JournalTailerTest, MissingFileIsIdle) {
  common::MemFs fs;
  JournalTailer tailer(&fs, "nope", 0);
  EXPECT_EQ(tailer.Poll().status, TailStatus::kIdle);
}

// --- leader/follower integration over an in-memory transport ---------------

// Thread-safe frame queue standing in for the follower's socket. Tests can
// make it fail after N sends (a cut stream) or corrupt a frame in flight.
class QueueSink : public ReplicationSink {
 public:
  Status Send(std::string_view frame) override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fail_after_ >= 0 && sent_ >= fail_after_) {
      return InternalError("sink closed");
    }
    std::string bytes(frame);
    if (corrupt_index_ == sent_ && !bytes.empty()) {
      bytes.back() = static_cast<char>(bytes.back() ^ 0x5A);
    }
    ++sent_;
    frames_.push_back(std::move(bytes));
    ready_.notify_all();
    return Status::Ok();
  }

  bool Pop(std::string* frame, int timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!ready_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [this] { return !frames_.empty(); })) {
      return false;
    }
    *frame = std::move(frames_.front());
    frames_.pop_front();
    return true;
  }

  void FailAfter(int sends) {
    std::lock_guard<std::mutex> lock(mutex_);
    fail_after_ = sends;
  }
  void CorruptSend(int index) {
    std::lock_guard<std::mutex> lock(mutex_);
    corrupt_index_ = index;
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::string> frames_;
  int sent_ = 0;
  int fail_after_ = -1;    // -1 = never fail
  int corrupt_index_ = -1;  // -1 = never corrupt
};

// One leader subscription running on its own thread, like a connection
// thread in ecrint_serve.
class Subscription {
 public:
  // `configure` runs against the sink BEFORE the server starts streaming,
  // so fault injection cannot race the first frames.
  Subscription(ReplicationServer* server, const std::string& project,
               uint64_t have_seq,
               const std::function<void(QueueSink&)>& configure = nullptr) {
    if (configure) configure(sink_);
    ReplSubscribe subscribe;
    subscribe.project = project;
    subscribe.have_seq = have_seq;
    thread_ = std::thread([this, server, subscribe] {
      status_ = server->Serve(subscribe, sink_,
                              [this] { return stop_.load(); });
    });
  }
  ~Subscription() {
    stop_.store(true);
    thread_.join();
  }

  QueueSink& sink() { return sink_; }

 private:
  QueueSink sink_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  Status status_;
};

engine::EngineStamp StampOf(IntegrationService& service,
                            const std::string& project) {
  Result<IntegrationService::ReplicationPosition> position =
      service.SampleReplicationPosition(project);
  EXPECT_TRUE(position.ok()) << position.status().ToString();
  return position.ok() ? position->stamp : engine::EngineStamp{};
}

uint64_t SeqOf(IntegrationService& service, const std::string& project) {
  Result<IntegrationService::ReplicationPosition> position =
      service.SampleReplicationPosition(project);
  EXPECT_TRUE(position.ok()) << position.status().ToString();
  return position.ok() ? position->seq : 0;
}

// Pumps frames from the sink into the follower until it holds the same
// seq AND stamp as the leader (true) or the deadline passes (false). An
// error or kResubscribe outcome ends the pump early (false).
bool PumpUntilConverged(QueueSink& sink, FollowerState& follower,
                        IntegrationService& leader,
                        IntegrationService& follower_service,
                        const std::string& project, int timeout_ms = 10000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (SeqOf(leader, project) == follower.applied_seq() &&
        StampOf(leader, project) == StampOf(follower_service, project)) {
      return true;
    }
    std::string frame;
    if (!sink.Pop(&frame, 50)) continue;
    Result<FollowerState::Outcome> outcome = follower.HandleFrame(Body(frame));
    if (!outcome.ok() || *outcome != FollowerState::Outcome::kOk) return false;
  }
  return false;
}

struct Node {
  explicit Node(common::Fs* fs, std::string data_dir = "",
                std::string leader_addr = "") {
    ServiceConfig config;
    config.fs = fs;
    config.data_dir = std::move(data_dir);
    config.durability.fsync = FsyncPolicy::kNever;
    config.leader_addr = std::move(leader_addr);
    service = std::make_unique<IntegrationService>(config);
  }
  std::unique_ptr<IntegrationService> service;
};

TEST(ReplicationTest, FollowerBootstrapsFromCheckpointAndConverges) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());
  ASSERT_TRUE(leader.service->Integrate(session, {}).ok());
  // Checkpoint + rotate: the journal no longer holds records 1..2, so a
  // fresh follower MUST bootstrap via the checkpoint path.
  ASSERT_EQ(leader.service->CheckpointProjects(), 1);
  ASSERT_TRUE(
      leader.service->AssertRelation(session, {"sc1", "Student"}, 1,
                                     {"sc2", "Grad"}).ok());

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  Node follower(&fs, "", "127.0.0.1:1");
  FollowerState state(follower.service.get(), "uni");
  Result<uint64_t> have = state.Prepare();
  ASSERT_TRUE(have.ok());
  EXPECT_EQ(*have, 0u);

  Subscription subscription(&server, "uni", *have);
  EXPECT_TRUE(PumpUntilConverged(subscription.sink(), state, *leader.service,
                                 *follower.service, "uni"));
  EXPECT_EQ(StampOf(*leader.service, "uni"), StampOf(*follower.service, "uni"));

  // The follower actually serves the replicated state.
  std::string follower_session = follower.service->OpenSession("uni");
  ServiceResponse exported = follower.service->ExportProject(follower_session);
  ASSERT_TRUE(exported.ok());
  ServiceResponse leader_export = leader.service->ExportProject(session);
  ASSERT_TRUE(leader_export.ok());
  EXPECT_EQ(exported.lines, leader_export.lines);
}

TEST(ReplicationTest, ThousandWritesConvergeStampIdentical) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());

  ReplicationServer::Options fast;
  fast.poll_interval_ms = 1;
  ReplicationServer server(leader.service.get(), &fs, "/lead", fast);
  Node follower(&fs);
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());
  Subscription subscription(&server, "uni", 0);

  // A write storm racing the stream: every record must replay to the same
  // engine state, including the ones the engine rejects (duplicate
  // assertions).
  for (int i = 0; i < 1000; ++i) {
    leader.service->AssertRelation(session, {"sc1", "Student"}, i % 6,
                                   {"sc2", "Grad"});
  }
  ASSERT_TRUE(leader.service->Integrate(session, {}).ok());

  EXPECT_TRUE(PumpUntilConverged(subscription.sink(), state, *leader.service,
                                 *follower.service, "uni", 30000));
  EXPECT_GE(state.applied_seq(), 1001u);
  EXPECT_EQ(StampOf(*leader.service, "uni"), StampOf(*follower.service, "uni"));
}

TEST(ReplicationTest, StreamCutMidStreamResubscribesFromAppliedSeq) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());
  for (int i = 0; i < 20; ++i) {
    leader.service->AssertRelation(session, {"sc1", "Student"}, i % 6,
                                   {"sc2", "Grad"});
  }

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  Node follower(&fs);
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());

  uint64_t cut_seq = 0;
  {
    // The connection dies mid-stream (after 5 frames).
    Subscription first(&server, "uni", 0,
                       [](QueueSink& sink) { sink.FailAfter(5); });
    std::string frame;
    while (first.sink().Pop(&frame, 500)) {
      Result<FollowerState::Outcome> outcome = state.HandleFrame(Body(frame));
      ASSERT_TRUE(outcome.ok());
      ASSERT_EQ(*outcome, FollowerState::Outcome::kOk);
    }
    cut_seq = state.applied_seq();
    EXPECT_GT(cut_seq, 0u);
    EXPECT_LT(cut_seq, SeqOf(*leader.service, "uni"));
  }

  // Reconnect with have_seq = what stuck; the leader resumes exactly there
  // — no re-send of applied records, no gaps.
  Subscription second(&server, "uni", cut_seq);
  EXPECT_TRUE(PumpUntilConverged(second.sink(), state, *leader.service,
                                 *follower.service, "uni"));
  EXPECT_EQ(StampOf(*leader.service, "uni"), StampOf(*follower.service, "uni"));
}

TEST(ReplicationTest, CorruptedChunkForcesCleanRetry) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());
  ASSERT_TRUE(leader.service->Integrate(session, {}).ok());
  ASSERT_EQ(leader.service->CheckpointProjects(), 1);

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  Node follower(&fs);
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());

  {
    // Bit-flip the first chunk (send #1, after the hello) in flight: the
    // follower must reject the transfer, not install garbage.
    Subscription corrupted(&server, "uni", 0,
                           [](QueueSink& sink) { sink.CorruptSend(1); });
    bool rejected = false;
    std::string frame;
    while (!rejected && corrupted.sink().Pop(&frame, 500)) {
      Result<FollowerState::Outcome> outcome = state.HandleFrame(Body(frame));
      ASSERT_TRUE(outcome.ok());
      rejected = *outcome == FollowerState::Outcome::kResubscribe;
    }
    EXPECT_TRUE(rejected);
    EXPECT_EQ(state.applied_seq(), 0u);
  }

  Subscription clean(&server, "uni", 0);
  EXPECT_TRUE(PumpUntilConverged(clean.sink(), state, *leader.service,
                                 *follower.service, "uni"));
  EXPECT_EQ(StampOf(*leader.service, "uni"), StampOf(*follower.service, "uni"));
}

TEST(ReplicationTest, DurableFollowerSurvivesKillDashNine) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());
  for (int i = 0; i < 10; ++i) {
    leader.service->AssertRelation(session, {"sc1", "Student"}, i % 6,
                                   {"sc2", "Grad"});
  }

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  uint64_t surviving_seq = 0;
  {
    // First life: durable follower converges, then "kill -9" — the whole
    // process state vanishes, only its journal + checkpoint remain in fs.
    Node follower(&fs, "/replica");
    FollowerState state(follower.service.get(), "uni");
    ASSERT_TRUE(state.Prepare().ok());
    Subscription subscription(&server, "uni", 0);
    ASSERT_TRUE(PumpUntilConverged(subscription.sink(), state,
                                   *leader.service, *follower.service, "uni"));
    surviving_seq = state.applied_seq();
  }

  // More leader writes while the follower is down.
  for (int i = 0; i < 10; ++i) {
    leader.service->AssertRelation(session, {"sc2", "Grad"}, i % 6,
                                   {"sc1", "Student"});
  }

  // Second life: recovery picks the stream back up from local durability —
  // no full re-bootstrap.
  Node follower(&fs, "/replica");
  FollowerState state(follower.service.get(), "uni");
  Result<uint64_t> have = state.Prepare();
  ASSERT_TRUE(have.ok());
  EXPECT_EQ(*have, surviving_seq);
  Subscription subscription(&server, "uni", *have);
  EXPECT_TRUE(PumpUntilConverged(subscription.sink(), state, *leader.service,
                                 *follower.service, "uni"));
  EXPECT_EQ(StampOf(*leader.service, "uni"), StampOf(*follower.service, "uni"));
}

TEST(ReplicationTest, FollowerRejectsWritesWithNotLeader) {
  common::MemFs fs;
  Node follower(&fs, "", "10.0.0.7:7400");
  std::string session = follower.service->OpenSession("uni");
  ServiceResponse response = follower.service->Define(session, kUniversityDdl);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_EQ(response.error->leader, "10.0.0.7:7400");
  // Reads still work.
  EXPECT_TRUE(follower.service->ExportProject(session).ok());
}

TEST(ReplicationTest, ApplyReplicatedEnforcesSeqContiguity) {
  common::MemFs fs;
  Node follower(&fs);
  follower.service->EnsureProject("uni");
  std::string payload = "define schema s { entity E { A: char key; } }";
  EXPECT_FALSE(follower.service->ApplyReplicated("uni", 2, payload).ok());
  ASSERT_TRUE(follower.service->ApplyReplicated("uni", 1, payload).ok());
  EXPECT_FALSE(follower.service->ApplyReplicated("uni", 1, payload).ok());
  EXPECT_TRUE(follower.service->ApplyReplicated("uni", 2, payload).ok());
}

// --- epoch-fenced failover -------------------------------------------------

TEST(ReplicationFailoverTest, PromoteClearsNotLeaderAndBumpsEpoch) {
  common::MemFs fs;
  Node node(&fs, "/n1", "10.0.0.7:7400");
  std::string session = node.service->OpenSession("uni");
  ServiceResponse refused = node.service->Define(session, kUniversityDdl);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);

  Result<uint64_t> epoch = node.service->PromoteProject("uni");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  EXPECT_TRUE(node.service->CurrentLeaderAddr().empty());
  EXPECT_EQ(node.service->ProjectEpoch("uni"), 1u);
  // The write gate lifted at the new epoch.
  EXPECT_TRUE(node.service->Define(session, kUniversityDdl).ok());

  Result<IntegrationService::ReplicationPosition> position =
      node.service->SampleReplicationPosition("uni");
  ASSERT_TRUE(position.ok());
  EXPECT_EQ(position->epoch, 1u);
}

TEST(ReplicationFailoverTest, PromotedEpochSurvivesRestart) {
  common::MemFs fs;
  {
    Node node(&fs, "/n1", "10.0.0.7:7400");
    Result<uint64_t> epoch = node.service->PromoteProject("uni");
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(*epoch, 1u);
  }
  // "kill -9": only the checkpoint + journal survive. The fence must come
  // back with them — a restarted promoted leader at epoch 0 could be
  // re-deposed by its own past.
  Node revived(&fs, "/n1");
  revived.service->EnsureProject("uni");
  EXPECT_EQ(revived.service->ProjectEpoch("uni"), 1u);
}

TEST(ReplicationFailoverTest, DemoteRejectsStaleEpochsAndRepoints) {
  common::MemFs fs;
  Node node(&fs, "/n1");  // standalone: leads by default
  node.service->EnsureProject("uni");

  // Same-epoch demotion of a leader is stale (a real takeover always bumps).
  EXPECT_FALSE(
      node.service->DemoteProject("uni", 0, "10.0.0.9:7400").ok());
  EXPECT_EQ(node.service->metrics().GetCounter("repl.stale_epoch_rejects")->value(), 1);

  ASSERT_TRUE(node.service->DemoteProject("uni", 2, "10.0.0.9:7400").ok());
  EXPECT_EQ(node.service->CurrentLeaderAddr(), "10.0.0.9:7400");
  EXPECT_EQ(node.service->ProjectEpoch("uni"), 2u);
  std::string session = node.service->OpenSession("uni");
  ServiceResponse refused = node.service->Define(session, kUniversityDdl);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_EQ(refused.error->leader, "10.0.0.9:7400");

  // Re-pointing a follower at the SAME epoch is legal (address learned out
  // of band); an older epoch never is.
  EXPECT_TRUE(node.service->DemoteProject("uni", 2, "10.0.0.10:7400").ok());
  EXPECT_EQ(node.service->CurrentLeaderAddr(), "10.0.0.10:7400");
  EXPECT_FALSE(node.service->DemoteProject("uni", 1, "10.0.0.9:7400").ok());
}

TEST(ReplicationFailoverTest, FollowerRejectsStreamFromStaleEpoch) {
  common::MemFs fs;
  Node follower(&fs);
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());

  ReplHello hello;
  hello.has_checkpoint = false;
  hello.seq = 0;
  hello.epoch = 2;
  Result<FollowerState::Outcome> outcome =
      state.HandleFrame(Body(EncodeReplHello(hello)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, FollowerState::Outcome::kOk);
  EXPECT_EQ(state.epoch(), 2u);
  // The adoption reached the service (and would persist with the next
  // checkpoint).
  EXPECT_EQ(follower.service->ProjectEpoch("uni"), 2u);

  // A deposed leader reconnecting at epoch 1: refuse the stream.
  hello.epoch = 1;
  outcome = state.HandleFrame(Body(EncodeReplHello(hello)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, FollowerState::Outcome::kResubscribe);
  EXPECT_EQ(follower.service->metrics().GetCounter("repl.stale_epoch_rejects")->value(), 1);

  // Same for a stale mid-stream stamp.
  ReplStamp stamp;
  stamp.seq = 0;
  stamp.epoch = 1;
  outcome = state.HandleFrame(Body(EncodeReplStamp(stamp)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, FollowerState::Outcome::kResubscribe);
}

TEST(ReplicationFailoverTest, HigherEpochSubscribeDeposesLeader) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  ReplSubscribe subscribe;
  subscribe.project = "uni";
  subscribe.have_seq = 0;
  subscribe.epoch = 5;
  subscribe.leader_hint = "10.0.0.9:7400";
  QueueSink sink;
  Status served = server.Serve(subscribe, sink, [] { return false; });
  EXPECT_FALSE(served.ok());

  // The subscriber got a refusal frame, and this node fenced itself toward
  // the hinted leader instead of split-brain-serving a stale stream.
  std::string frame;
  ASSERT_TRUE(sink.Pop(&frame, 1000));
  Result<ReplFrame> decoded = DecodeReplFrame(Body(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, kFrameReplError);
  EXPECT_EQ(leader.service->CurrentLeaderAddr(), "10.0.0.9:7400");
  EXPECT_EQ(leader.service->ProjectEpoch("uni"), 5u);
  ServiceResponse refused =
      leader.service->AssertRelation(session, {"sc1", "Student"}, 1,
                                     {"sc2", "Grad"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_EQ(refused.error->leader, "10.0.0.9:7400");
}

TEST(ReplicationFailoverTest, ServeRefusesWhileNotLeader) {
  common::MemFs fs;
  Node node(&fs, "/n1", "10.0.0.7:7400");
  ReplicationServer server(node.service.get(), &fs, "/n1");
  ReplSubscribe subscribe;
  subscribe.project = "uni";
  QueueSink sink;
  Status served = server.Serve(subscribe, sink, [] { return false; });
  EXPECT_FALSE(served.ok());
  std::string frame;
  ASSERT_TRUE(sink.Pop(&frame, 1000));
  Result<ReplFrame> decoded = DecodeReplFrame(Body(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, kFrameReplError);
}

TEST(ReplicationFailoverTest, PromotedFollowerServesStreamAtBumpedEpoch) {
  common::MemFs fs;
  Node node(&fs, "/n1", "10.0.0.7:7400");
  ASSERT_TRUE(node.service->PromoteProject("uni").ok());
  std::string session = node.service->OpenSession("uni");
  ASSERT_TRUE(node.service->Define(session, kUniversityDdl).ok());
  ASSERT_TRUE(node.service
                  ->AssertRelation(session, {"sc1", "Student"}, 1,
                                   {"sc2", "Grad"})
                  .ok());

  // A fresh replica following the promoted node converges AND adopts the
  // bumped epoch from the stream.
  ReplicationServer server(node.service.get(), &fs, "/n1");
  Node follower(&fs);
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());
  Subscription subscription(&server, "uni", 0);
  EXPECT_TRUE(PumpUntilConverged(subscription.sink(), state, *node.service,
                                 *follower.service, "uni"));
  EXPECT_EQ(StampOf(*node.service, "uni"), StampOf(*follower.service, "uni"));
  EXPECT_EQ(state.epoch(), 1u);
  EXPECT_EQ(follower.service->ProjectEpoch("uni"), 1u);
}

// --- fencing without a usable leader address -------------------------------

TEST(ReplicationFailoverTest, EmptyDemoteHintFencesInsteadOfSelfAdopting) {
  common::MemFs fs;
  Node node(&fs, "/n1");  // standalone: leads by default
  node.service->EnsureProject("uni");
  std::string session = node.service->OpenSession("uni");
  ASSERT_TRUE(node.service->Define(session, kUniversityDdl).ok());

  // Deposed at a higher epoch with no forwarding address. The old
  // representation (leader_addr empty == leads) would leave this node
  // writable at the same epoch as the real new leader — split-brain.
  ASSERT_TRUE(node.service->DemoteProject("uni", 3, "").ok());
  EXPECT_FALSE(node.service->LeadsWrites());
  EXPECT_TRUE(node.service->CurrentLeaderAddr().empty());
  EXPECT_EQ(node.service->ProjectEpoch("uni"), 3u);

  ServiceResponse refused =
      node.service->AssertRelation(session, {"sc1", "Student"}, 1,
                                   {"sc2", "Grad"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_TRUE(refused.error->leader.empty());

  // A later demote with a real address ends the fence as a follower...
  ASSERT_TRUE(node.service->DemoteProject("uni", 3, "10.0.0.9:7400").ok());
  EXPECT_EQ(node.service->CurrentLeaderAddr(), "10.0.0.9:7400");
  EXPECT_FALSE(node.service->LeadsWrites());
  // ...and a promote ends it as the leader.
  Result<uint64_t> epoch = node.service->PromoteProject("uni");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 4u);
  EXPECT_TRUE(node.service->LeadsWrites());
  EXPECT_TRUE(node.service
                  ->AssertRelation(session, {"sc1", "Student"}, 1,
                                   {"sc2", "Grad"})
                  .ok());
}

TEST(ReplicationFailoverTest, SelfPointingDemoteHintFences) {
  common::MemFs fs;
  ServiceConfig config;
  config.fs = &fs;
  config.data_dir = "/n1";
  config.durability.fsync = FsyncPolicy::kNever;
  config.advertised_addr = "10.0.0.7:7400";
  IntegrationService service(config);
  service.EnsureProject("uni");

  // A hint pointing back at this node (a confused client echoing the
  // address it dialed) must not be adopted: following yourself is a
  // redirect loop. Fence instead.
  ASSERT_TRUE(service.DemoteProject("uni", 2, "10.0.0.7:7400").ok());
  EXPECT_FALSE(service.LeadsWrites());
  EXPECT_TRUE(service.CurrentLeaderAddr().empty());
  EXPECT_EQ(service.ProjectEpoch("uni"), 2u);

  std::string session = service.OpenSession("uni");
  ServiceResponse refused = service.Define(session, kUniversityDdl);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_TRUE(refused.error->leader.empty());
}

TEST(ReplicationFailoverTest, HigherEpochSubscribeWithEmptyHintFences) {
  common::MemFs fs;
  Node leader(&fs, "/lead");
  std::string session = leader.service->OpenSession("uni");
  ASSERT_TRUE(leader.service->Define(session, kUniversityDdl).ok());

  ReplicationServer server(leader.service.get(), &fs, "/lead");
  ReplSubscribe subscribe;
  subscribe.project = "uni";
  subscribe.have_seq = 0;
  subscribe.epoch = 5;
  subscribe.leader_hint = "";  // subscriber never learned an address
  QueueSink sink;
  Status served = server.Serve(subscribe, sink, [] { return false; });
  EXPECT_FALSE(served.ok());

  // Deposed without a forwarding address: fenced, not still leading.
  EXPECT_FALSE(leader.service->LeadsWrites());
  EXPECT_TRUE(leader.service->CurrentLeaderAddr().empty());
  EXPECT_EQ(leader.service->ProjectEpoch("uni"), 5u);
  ServiceResponse refused =
      leader.service->AssertRelation(session, {"sc1", "Student"}, 1,
                                     {"sc2", "Grad"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error->code, ServiceErrorCode::kNotLeader);
  EXPECT_TRUE(refused.error->leader.empty());
}

TEST(ReplicationFailoverTest, SubscribeHintNamesEpochSourceNotDialedAddr) {
  common::MemFs fs;
  Node follower(&fs, "", "10.0.0.7:7400");  // still dialing the old leader
  FollowerState state(follower.service.get(), "uni");
  ASSERT_TRUE(state.Prepare().ok());
  // Before any epoch is learned the hint is the configured leader address.
  EXPECT_EQ(state.epoch_source(), "10.0.0.7:7400");

  // A stream from a different peer announces a new epoch: the hint must
  // repoint at the peer that ANNOUNCED it — echoing the dialed address
  // back at a deposed leader would redirect it to itself.
  state.set_peer_addr("10.0.0.8:7400");
  ReplHello hello;
  hello.has_checkpoint = false;
  hello.seq = 0;
  hello.epoch = 3;
  Result<FollowerState::Outcome> outcome =
      state.HandleFrame(Body(EncodeReplHello(hello)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, FollowerState::Outcome::kOk);
  EXPECT_EQ(state.epoch(), 3u);
  EXPECT_EQ(state.epoch_source(), "10.0.0.8:7400");
}

// --- rolling stall deadline (socket level) ---------------------------------

namespace blackhole {

void SetRecvTimeoutMs(int fd, int ms) {
  struct timeval timeout;
  timeout.tv_sec = ms / 1000;
  timeout.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// A fake leader that completes the `proto 2` handshake, answers the
// subscribe with one applicable hello frame, then goes silent with the
// connection held open — the half-open / blackholed-mid-stream shape. A
// stall deadline that only covers the pre-progress window never abandons
// this connection.
class BlackholeLeader {
 public:
  BlackholeLeader() {
    listener_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    bind(listener_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    listen(listener_, 16);
    socklen_t len = sizeof(addr);
    getsockname(listener_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    SetRecvTimeoutMs(listener_, 50);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~BlackholeLeader() {
    stop_.store(true);
    accept_thread_.join();
    for (int fd : held_) close(fd);
    close(listener_);
  }

  std::string addr() const { return "127.0.0.1:" + std::to_string(port_); }
  int accepts() const { return accepts_.load(); }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      int fd = accept(listener_, nullptr, nullptr);
      if (fd < 0) continue;
      accepts_.fetch_add(1);
      SetRecvTimeoutMs(fd, 50);
      // Text negotiation: read the `proto 2` line, acknowledge it.
      if (!ReadSome(fd, "\n")) {
        close(fd);
        continue;
      }
      if (!SendAll(fd, "ok\nproto 2\n.\n")) {
        close(fd);
        continue;
      }
      // The subscribe frame (contents irrelevant here), then one hello the
      // follower applies — progress — and from then on: nothing, forever.
      if (!ReadSome(fd, "")) {
        close(fd);
        continue;
      }
      ReplHello hello;
      hello.has_checkpoint = false;
      hello.seq = 0;  // echoes the fresh follower's have_seq
      if (!SendAll(fd, EncodeReplHello(hello))) {
        close(fd);
        continue;
      }
      held_.push_back(fd);
    }
  }

  // Reads until `marker` appears (or any bytes at all when empty); false
  // on peer close or stop.
  bool ReadSome(int fd, const std::string& marker) {
    std::string got;
    char buf[512];
    while (!stop_.load()) {
      if (!got.empty() &&
          (marker.empty() || got.find(marker) != std::string::npos)) {
        return true;
      }
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        got.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      return false;
    }
    return false;
  }

  int listener_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> accepts_{0};
  std::thread accept_thread_;
  std::vector<int> held_;
};

}  // namespace blackhole

TEST(ReplicationClientTest, BlackholedStreamAfterProgressReconnects) {
  common::MemFs fs;
  blackhole::BlackholeLeader leader;
  Node follower(&fs, "", leader.addr());

  ReplicationClient::Options options;
  options.stall_timeout_ms = 250;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 40;
  ReplicationClient client(follower.service.get(), leader.addr(), "uni",
                           options);
  std::atomic<bool> stop{false};
  std::thread runner([&] { client.Run(stop); });

  // Every connection applies one frame before the blackhole, so only a
  // ROLLING stall deadline — reset by progress, still enforced after it —
  // gets the client off the dead stream and into a reconnect (where a new
  // leader address would be picked up). Pre-fix this spins forever on the
  // first connection and the counter never moves.
  Counter* reconnects =
      follower.service->metrics().GetCounter("repl.reconnects");
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (reconnects->value() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  runner.join();
  EXPECT_GE(reconnects->value(), 2);
  EXPECT_GE(leader.accepts(), 2);
}

}  // namespace
}  // namespace ecrint::service
