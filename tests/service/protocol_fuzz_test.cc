// Property / fuzz coverage for both wire framings: deterministic
// pseudo-random adversarial inputs through EscapeField/UnescapeField,
// FormatResponse/ParseResponse, and the binary encode/decode pair. The
// invariants under test:
//
//   * parse(format(x)) == x for every representable ServiceResponse, in
//     both framings — including dot-leading lines, embedded backslashes,
//     control characters, and empty lines;
//   * decoders never crash, loop, or over-read on arbitrary bytes —
//     truncations, overlong varints, and trailing garbage all come back
//     as clean errors;
//   * the length-prefixed extractor agrees byte-for-byte with the
//     encoders about frame boundaries.
//
// All randomness is a fixed-seed LCG so every run covers the same corpus.

#include "service/protocol.h"

#include <gtest/gtest.h>

#include "service/replication.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace ecrint::service {
namespace {

// Deterministic 64-bit LCG (MMIX constants): the corpus must be identical
// on every run and platform.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }
  uint64_t Next(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

std::string RandomBytes(Lcg& rng, size_t max_len) {
  size_t len = rng.Next(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Bias toward the bytes the framings treat specially.
    switch (rng.Next(6)) {
      case 0:
        out.push_back('\n');
        break;
      case 1:
        out.push_back('\\');
        break;
      case 2:
        out.push_back('.');
        break;
      case 3:
        out.push_back('\t');
        break;
      default:
        out.push_back(static_cast<char>(rng.Next(255) + 1));  // no NUL
        break;
    }
  }
  return out;
}

ServiceResponse RandomResponse(Lcg& rng) {
  ServiceResponse response;
  if (rng.Next(3) == 0) {
    ServiceError error;
    error.code = static_cast<ServiceErrorCode>(rng.Next(5));
    // Wire error messages are single-line (the status line owns them).
    std::string message = RandomBytes(rng, 40);
    for (char& c : message) {
      if (c == '\n' || c == '\t' || c == '\\') c = '_';
    }
    // Leading/trailing spaces are not representable on the v1 status line
    // (the parser tokenizes on spaces); real error messages never have them.
    while (!message.empty() && message.front() == ' ') message.erase(0, 1);
    while (!message.empty() && message.back() == ' ') message.pop_back();
    error.message = message;
    if (error.code == ServiceErrorCode::kUnavailable) {
      error.retry_after_ms = static_cast<int64_t>(rng.Next(100000));
    }
    response.error = error;
    return response;
  }
  size_t lines = rng.Next(8);
  for (size_t i = 0; i < lines; ++i) {
    response.lines.push_back(RandomBytes(rng, 60));
  }
  return response;
}

void ExpectSameResponse(const ServiceResponse& a, const ServiceResponse& b,
                        const std::string& context) {
  ASSERT_EQ(a.error.has_value(), b.error.has_value()) << context;
  if (a.error.has_value()) {
    EXPECT_EQ(static_cast<int>(a.error->code),
              static_cast<int>(b.error->code))
        << context;
    EXPECT_EQ(a.error->message, b.error->message) << context;
    EXPECT_EQ(a.error->retry_after_ms, b.error->retry_after_ms) << context;
  }
  ASSERT_EQ(a.lines, b.lines) << context;
}

// --- escaping --------------------------------------------------------------

TEST(ProtocolFuzzTest, EscapeUnescapeRoundTripsAdversarialStrings) {
  Lcg rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::string original = RandomBytes(rng, 80);
    std::string escaped = EscapeField(original);
    // The escaped form must be wire-safe: single line, no raw tabs.
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    Result<std::string> back = UnescapeField(escaped);
    ASSERT_TRUE(back.ok()) << "iteration " << i;
    EXPECT_EQ(*back, original) << "iteration " << i;
  }
}

TEST(ProtocolFuzzTest, UnescapeNeverCrashesOnArbitraryInput) {
  Lcg rng(2);
  for (int i = 0; i < 2000; ++i) {
    // May error (unknown escapes, trailing backslash) but must not crash.
    (void)UnescapeField(RandomBytes(rng, 80));
  }
}

// --- text framing ----------------------------------------------------------

TEST(ProtocolFuzzTest, TextFramingRoundTripsRandomResponses) {
  Lcg rng(3);
  for (int i = 0; i < 2000; ++i) {
    ServiceResponse original = RandomResponse(rng);
    std::string wire = FormatResponse(original);
    Result<ServiceResponse> parsed = ParseResponse(wire);
    ASSERT_TRUE(parsed.ok())
        << "iteration " << i << ": " << parsed.status().ToString();
    ExpectSameResponse(original, *parsed,
                       "iteration " + std::to_string(i));
  }
}

TEST(ProtocolFuzzTest, ParseResponseNeverCrashesOnArbitraryInput) {
  Lcg rng(4);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseResponse(RandomBytes(rng, 200));
  }
  // Truncations of a VALID frame at every byte: either a clean error or,
  // for the rare prefix that is itself a complete frame, a clean parse.
  ServiceResponse response;
  response.lines = {".dot-leading", "back\\slash", "", "plain"};
  std::string wire = FormatResponse(response);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    (void)ParseResponse(wire.substr(0, cut));
  }
}

// --- binary framing --------------------------------------------------------

TEST(ProtocolFuzzTest, BinaryResponseRoundTripsRandomResponses) {
  Lcg rng(5);
  for (int i = 0; i < 2000; ++i) {
    ServiceResponse original = RandomResponse(rng);
    std::string frame = EncodeBinaryResponse(original);

    std::string_view body;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(frame, &body, &consumed, &error),
              FrameStatus::kComplete)
        << "iteration " << i;
    EXPECT_EQ(consumed, frame.size()) << "iteration " << i;

    Result<DecodedResponse> decoded = DecodeBinaryResponse(body);
    ASSERT_TRUE(decoded.ok())
        << "iteration " << i << ": " << decoded.status().message();
    ASSERT_FALSE(decoded->batch);
    ASSERT_EQ(decoded->items.size(), 1u);
    ExpectSameResponse(original, decoded->items[0],
                       "iteration " + std::to_string(i));
  }
}

TEST(ProtocolFuzzTest, BinaryBatchRoundTripsRandomBatches) {
  Lcg rng(6);
  for (int i = 0; i < 300; ++i) {
    std::vector<ServiceResponse> originals;
    size_t n = rng.Next(10) + 1;
    for (size_t j = 0; j < n; ++j) originals.push_back(RandomResponse(rng));
    std::string frame = EncodeBinaryBatchResponse(originals);

    std::string_view body;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(frame, &body, &consumed, &error),
              FrameStatus::kComplete);
    Result<DecodedResponse> decoded = DecodeBinaryResponse(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    ASSERT_TRUE(decoded->batch);
    ASSERT_EQ(decoded->items.size(), originals.size());
    for (size_t j = 0; j < n; ++j) {
      ExpectSameResponse(originals[j], decoded->items[j],
                         "batch " + std::to_string(i) + " item " +
                             std::to_string(j));
    }
  }
}

TEST(ProtocolFuzzTest, BinaryRequestRoundTripsRawArguments) {
  Lcg rng(7);
  for (int i = 0; i < 1000; ++i) {
    BinaryRequest original;
    original.verb = static_cast<WireVerb>(rng.Next(15) + 1);
    size_t argc = rng.Next(5);
    for (size_t j = 0; j < argc; ++j) {
      // Binary args are raw bytes: newlines, dots, backslashes, anything.
      original.args.push_back(RandomBytes(rng, 50));
    }
    std::string frame = EncodeBinaryRequest(original);

    std::string_view body;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ExtractFrame(frame, &body, &consumed, &error),
              FrameStatus::kComplete);
    Result<DecodedRequest> decoded = DecodeBinaryRequest(body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    ASSERT_FALSE(decoded->batch);
    ASSERT_EQ(decoded->items.size(), 1u);
    EXPECT_EQ(static_cast<int>(decoded->items[0].verb),
              static_cast<int>(original.verb));
    EXPECT_EQ(decoded->items[0].args, original.args);
  }
}

TEST(ProtocolFuzzTest, BinaryDecodersSurviveArbitraryBytes) {
  Lcg rng(8);
  for (int i = 0; i < 4000; ++i) {
    std::string bytes = RandomBytes(rng, 120);
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    FrameStatus status = ExtractFrame(bytes, &body, &consumed, &error);
    if (status == FrameStatus::kComplete) {
      EXPECT_LE(consumed, bytes.size());
      (void)DecodeBinaryRequest(body);
      (void)DecodeBinaryResponse(body);
    }
    // Raw bodies too (skipping the length prefix entirely).
    (void)DecodeBinaryRequest(bytes);
    (void)DecodeBinaryResponse(bytes);
  }
}

TEST(ProtocolFuzzTest, BinaryTruncationAtEveryByteIsClean) {
  BinaryRequest request;
  request.verb = WireVerb::kDefine;
  request.args = {std::string(300, 'x'), "a\nb", std::string("\0z", 2)};
  std::string frame = EncodeBinaryRequest(request);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    FrameStatus status =
        ExtractFrame(frame.substr(0, cut), &body, &consumed, &error);
    // A truncated frame is never "complete": the length prefix promises
    // more bytes than are present.
    EXPECT_EQ(status, FrameStatus::kNeedMore) << "cut at " << cut;
  }
}

TEST(ProtocolFuzzTest, OverlongVarintIsRejected) {
  // 11 continuation bytes exceed the 10-byte LEB128 ceiling.
  std::string overlong(11, '\x80');
  overlong.push_back('\x01');
  std::string_view in = overlong;
  uint64_t value = 0;
  EXPECT_FALSE(GetVarint(in, value));

  std::string_view body;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ExtractFrame(overlong, &body, &consumed, &error),
            FrameStatus::kError);
}

TEST(ProtocolFuzzTest, OversizedFramePrefixIsRejectedEarly) {
  // A length prefix past kMaxBinaryFrameBytes must be refused from the
  // prefix alone, long before that many bytes arrive.
  std::string prefix;
  PutVarint(prefix, static_cast<uint64_t>(kMaxBinaryFrameBytes) + 1);
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ExtractFrame(prefix, &body, &consumed, &error),
            FrameStatus::kError);
  EXPECT_FALSE(error.empty());
}

TEST(ProtocolFuzzTest, TrailingGarbageDoesNotLeakIntoFrame) {
  ServiceResponse response;
  response.lines = {"payload"};
  std::string frame = EncodeBinaryResponse(response);
  std::string stream = frame + "GARBAGE-NEXT-FRAME";
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ExtractFrame(stream, &body, &consumed, &error),
            FrameStatus::kComplete);
  // The extractor consumed exactly one frame; the garbage stays buffered.
  EXPECT_EQ(consumed, frame.size());
  Result<DecodedResponse> decoded = DecodeBinaryResponse(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->items[0].lines, response.lines);
}

// --- replication framing ---------------------------------------------------
// Same adversarial treatment for the replication frames (0x03 subscribe,
// 0x90-0x94 stream): a follower decodes bytes a chaos-mangled network
// delivered, so truncation, overlong varints, and arbitrary garbage must
// all come back as clean errors. Named ReplicationFuzzTest so the CI
// replication suite's gtest filter picks these up.

// Encodes one of each replication frame with every field populated
// (epochs included — the fencing fields must survive the round trip).
std::vector<std::string> AllReplicationFrames() {
  ReplSubscribe subscribe;
  subscribe.project = "alpha";
  subscribe.have_seq = 12345;
  subscribe.epoch = 7;
  subscribe.leader_hint = "10.0.0.9:7400";
  ReplHello hello;
  hello.has_checkpoint = true;
  hello.seq = 99;
  hello.total_bytes = 1 << 20;
  hello.crc = 0xDEADBEEF;
  hello.epoch = 3;
  ReplChunk chunk;
  chunk.offset = 4096;
  chunk.crc = 0xCAFEF00D;
  chunk.bytes = std::string(300, '\x5A');
  ReplRecord record;
  record.seq = 77;
  record.crc = 0x12345678;
  record.payload = std::string("define\0entity", 13);
  ReplStamp stamp;
  stamp.seq = 100;
  stamp.epoch = 9;
  return {EncodeReplSubscribe(subscribe), EncodeReplHello(hello),
          EncodeReplChunk(chunk), EncodeReplRecord(record),
          EncodeReplStamp(stamp), EncodeReplError("leader refused")};
}

std::string_view FrameBody(const std::string& frame) {
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ExtractFrame(frame, &body, &consumed, &error),
            FrameStatus::kComplete);
  EXPECT_EQ(consumed, frame.size());
  return body;
}

TEST(ReplicationFuzzTest, FramesRoundTripWithEpochFields) {
  ReplSubscribe subscribe;
  subscribe.project = "alpha";
  subscribe.have_seq = 12345;
  subscribe.epoch = 7;
  subscribe.leader_hint = "10.0.0.9:7400";
  Result<ReplFrame> sub =
      DecodeReplFrame(FrameBody(EncodeReplSubscribe(subscribe)));
  ASSERT_TRUE(sub.ok()) << sub.status().message();
  EXPECT_EQ(sub->subscribe.project, "alpha");
  EXPECT_EQ(sub->subscribe.have_seq, 12345u);
  EXPECT_EQ(sub->subscribe.epoch, 7u);
  EXPECT_EQ(sub->subscribe.leader_hint, "10.0.0.9:7400");

  ReplHello hello;
  hello.has_checkpoint = true;
  hello.seq = 99;
  hello.total_bytes = 1 << 20;
  hello.crc = 0xDEADBEEF;
  hello.epoch = 3;
  Result<ReplFrame> hi = DecodeReplFrame(FrameBody(EncodeReplHello(hello)));
  ASSERT_TRUE(hi.ok()) << hi.status().message();
  EXPECT_TRUE(hi->hello.has_checkpoint);
  EXPECT_EQ(hi->hello.seq, 99u);
  EXPECT_EQ(hi->hello.epoch, 3u);

  ReplStamp stamp;
  stamp.seq = 100;
  stamp.epoch = 9;
  Result<ReplFrame> st = DecodeReplFrame(FrameBody(EncodeReplStamp(stamp)));
  ASSERT_TRUE(st.ok()) << st.status().message();
  EXPECT_EQ(st->stamp.seq, 100u);
  EXPECT_EQ(st->stamp.epoch, 9u);
}

// The body lengths at which a truncated subscribe/hello/stamp is not
// truncation at all but the complete PRE-EPOCH grammar (the trailing
// epoch/leader-hint fields are optional on decode for rolling-upgrade
// compatibility — absence reads as epoch 0 / no hint). Every other proper
// prefix must still be a clean error.
std::set<size_t> LegacyCompleteLengths(const std::string& body) {
  std::set<size_t> lengths;
  const uint8_t type = static_cast<uint8_t>(body[0]);
  if (type == kFrameReplSubscribe) {
    std::string prefix;
    prefix.push_back(static_cast<char>(kFrameReplSubscribe));
    PutLpString(prefix, "alpha");
    PutVarint(prefix, 12345);  // have_seq, as in AllReplicationFrames
    lengths.insert(prefix.size());  // pre-epoch grammar
    PutVarint(prefix, 7);  // epoch present, hint absent
    lengths.insert(prefix.size());
  } else if (type == kFrameReplHello || type == kFrameReplStamp) {
    // Both end in one optional epoch varint (1 byte for the test values).
    lengths.insert(body.size() - 1);
  }
  return lengths;
}

TEST(ReplicationFuzzTest, TruncationAtEveryByteIsClean) {
  for (const std::string& frame : AllReplicationFrames()) {
    // Wire-level truncation: the extractor must keep asking for more.
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      std::string_view body;
      size_t consumed = 0;
      std::string error;
      EXPECT_EQ(ExtractFrame(frame.substr(0, cut), &body, &consumed, &error),
                FrameStatus::kNeedMore)
          << "frame type " << static_cast<int>(FrameBody(frame)[0])
          << " cut at " << cut;
    }
    // Body-level truncation: every proper prefix is missing a field or
    // ends mid-varint/mid-string — a clean decode error, never a crash or
    // a silently short frame — EXCEPT the exact lengths where the prefix
    // IS the complete pre-epoch frame, which must decode with epoch 0.
    std::string body(FrameBody(frame));
    const std::set<size_t> legacy = LegacyCompleteLengths(body);
    for (size_t cut = 0; cut < body.size(); ++cut) {
      Result<ReplFrame> decoded =
          DecodeReplFrame(std::string_view(body).substr(0, cut));
      if (legacy.count(cut) != 0) {
        ASSERT_TRUE(decoded.ok())
            << "frame type " << static_cast<int>(body[0])
            << " legacy-complete at " << cut << ": "
            << decoded.status().message();
        continue;
      }
      EXPECT_FALSE(decoded.ok())
          << "frame type " << static_cast<int>(body[0]) << " body cut at "
          << cut;
    }
  }
}

TEST(ReplicationFuzzTest, PreEpochFramesDecodeWithEpochZero) {
  // Frames exactly as a PR-8-era peer encodes them: no epoch, no hint.
  std::string subscribe;
  subscribe.push_back(static_cast<char>(kFrameReplSubscribe));
  PutLpString(subscribe, "uni");
  PutVarint(subscribe, 41);
  Result<ReplFrame> sub = DecodeReplFrame(subscribe);
  ASSERT_TRUE(sub.ok()) << sub.status().message();
  EXPECT_EQ(sub->subscribe.project, "uni");
  EXPECT_EQ(sub->subscribe.have_seq, 41u);
  EXPECT_EQ(sub->subscribe.epoch, 0u);
  EXPECT_TRUE(sub->subscribe.leader_hint.empty());

  std::string hello;
  hello.push_back(static_cast<char>(kFrameReplHello));
  PutVarint(hello, 1);        // has_checkpoint
  PutVarint(hello, 99);       // seq
  PutVarint(hello, 4096);     // total_bytes
  PutVarint(hello, 0xABCD);   // crc
  Result<ReplFrame> hi = DecodeReplFrame(hello);
  ASSERT_TRUE(hi.ok()) << hi.status().message();
  EXPECT_TRUE(hi->hello.has_checkpoint);
  EXPECT_EQ(hi->hello.seq, 99u);
  EXPECT_EQ(hi->hello.epoch, 0u);

  std::string stamp;
  stamp.push_back(static_cast<char>(kFrameReplStamp));
  PutVarint(stamp, 12);  // seq
  for (int i = 0; i < 5; ++i) PutVarint(stamp, 1);  // zigzag counters
  Result<ReplFrame> st = DecodeReplFrame(stamp);
  ASSERT_TRUE(st.ok()) << st.status().message();
  EXPECT_EQ(st->stamp.seq, 12u);
  EXPECT_EQ(st->stamp.epoch, 0u);
}

TEST(ReplicationFuzzTest, OverlongVarintInBodyIsRejected) {
  // A subscribe whose have_seq varint has 11 continuation bytes: past the
  // LEB128 ceiling, must be an error rather than an over-read.
  std::string body;
  body.push_back(static_cast<char>(kFrameReplSubscribe));
  PutLpString(body, "alpha");
  body.append(11, '\x80');
  body.push_back('\x01');
  EXPECT_FALSE(DecodeReplFrame(body).ok());

  // Same poison in a stamp's seq field.
  std::string stamp_body;
  stamp_body.push_back(static_cast<char>(kFrameReplStamp));
  stamp_body.append(11, '\x80');
  stamp_body.push_back('\x01');
  EXPECT_FALSE(DecodeReplFrame(stamp_body).ok());
}

TEST(ReplicationFuzzTest, TrailingGarbageAfterFieldsIsRejected) {
  for (const std::string& frame : AllReplicationFrames()) {
    std::string body(FrameBody(frame));
    body += "extra";
    EXPECT_FALSE(DecodeReplFrame(body).ok())
        << "frame type " << static_cast<int>(body[0]);
  }
}

TEST(ReplicationFuzzTest, ArbitraryBytesNeverCrashDecoder) {
  Lcg rng(9);
  const uint8_t kTypes[] = {kFrameReplSubscribe, kFrameReplHello,
                            kFrameReplChunk,     kFrameReplRecord,
                            kFrameReplStamp,     kFrameReplError};
  for (int i = 0; i < 4000; ++i) {
    std::string bytes = RandomBytes(rng, 120);
    // Half the corpus leads with a real frame type so the per-type field
    // parsers see the garbage, not just the type dispatch.
    if (rng.Next(2) == 0) {
      std::string typed;
      typed.push_back(static_cast<char>(kTypes[rng.Next(6)]));
      typed += bytes;
      bytes = typed;
    }
    (void)DecodeReplFrame(bytes);
  }
}

TEST(ReplicationFuzzTest, UnknownFrameTypeIsRejected) {
  std::string body;
  body.push_back('\x42');
  PutVarint(body, 1);
  EXPECT_FALSE(DecodeReplFrame(body).ok());
}

}  // namespace
}  // namespace ecrint::service
